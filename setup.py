"""Setuptools shim so editable installs work in offline environments.

This file carries the minimal metadata needed for ``pip install -e .`` on
machines without network access to fetch build dependencies.  The
``py.typed`` marker ships with the package (PEP 561) so downstream type
checkers see the inline annotations — mypy runs strict over the
deterministic core (``sim/``, ``store/``, ``analysis/``; see ``mypy.ini``)
in the CI lint job.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.11",
)
