"""Setuptools shim so editable installs work in offline environments.

The canonical metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on machines without the ``wheel``
package or network access to fetch build dependencies.
"""

from setuptools import setup

setup()
