"""Developer tooling: static enforcement of the reproducibility contracts.

Nothing in this package runs during a campaign.  It exists so that the
determinism invariants the simulator's golden tests *observe* are also
*enforced* at review time: :mod:`repro.devtools.lint` is an AST-based
static-analysis pass wired into CI as a blocking job.

Because this package is explicitly non-deterministic territory (it may
time its own runs, read the filesystem, etc.), the lint rules allowlist
``devtools`` itself wherever that matters.
"""
