"""Shared traversal and diagnostic machinery of the determinism lint.

One :class:`LintVisitor` walks each module's AST exactly once and fans
every node out to the active rules, so adding a rule never adds a
traversal.  Rules are small classes (see :mod:`repro.devtools.lint.rules`)
instantiated per file around a :class:`FileContext`; they report
:class:`Diagnostic` findings with clickable ``file:line:col`` positions.

Inline suppression
------------------

A finding can be waived on its own line with::

    risky_call()  # repro-lint: disable=R002 virtual clock not available here

or, when the flagged line is long, on its own line directly above it::

    # repro-lint: disable=R003 insertion order is deterministic here
    for link in self._links.values():
        ...

The comment names one or more rule ids (comma-separated) and **must**
carry a free-text reason after the rule list; a reason-less suppression
is itself a finding (rule ``R000``) and suppresses nothing.  Comments are
located with :mod:`tokenize`, so suppression text inside string literals
is never misparsed as a directive.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass

#: Rule id attached to malformed suppression comments.
BAD_SUPPRESSION_ID = "R000"

#: Rule id attached to files the parser rejects outright.
SYNTAX_ERROR_ID = "E999"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"(?P<reason>.*)$"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, positioned so terminals render it as a clickable link."""

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` directive."""

    line: int
    rule_ids: frozenset[str]
    reason: str


@dataclass
class FileContext:
    """Everything a rule may inspect about the file under analysis.

    ``parts`` are the path components used for scope decisions (e.g. "is
    this file under ``sim/``?"), normalized to start below the ``repro``
    package when the file lives inside it, and below the scanned root
    otherwise — so fixture trees mirroring the package layout scope
    identically to the real tree.
    """

    path: str
    parts: tuple[str, ...]
    tree: ast.Module
    source: str
    docstring_ids: frozenset[int] = frozenset()

    def in_directories(self, *names: str) -> bool:
        """Whether any *directory* component of the path is one of ``names``."""
        return any(part in names for part in self.parts[:-1])

    def path_ends_with(self, *suffix: str) -> bool:
        """Whether the scoped path ends with exactly these components."""
        return self.parts[-len(suffix):] == suffix


class Rule:
    """Base class of one lint rule, instantiated per analyzed file.

    Subclasses set ``rule_id``/``name``/``description``, implement
    ``applies`` for path scoping, and define ``visit_<NodeType>`` hooks;
    the shared :class:`LintVisitor` dispatches every AST node to every
    matching hook.  ``finish`` runs after the traversal for whole-module
    rules.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []
        self._seen: set[Diagnostic] = set()

    def applies(self) -> bool:
        """Whether this rule is in scope for the file (path-based)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node``'s position (exact duplicates dropped)."""
        diagnostic = Diagnostic(
            path=self.ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )
        if diagnostic not in self._seen:
            self._seen.add(diagnostic)
            self.diagnostics.append(diagnostic)

    def finish(self) -> None:
        """Hook run once after the whole module has been traversed."""


class ImportAliases:
    """Tracks what local names were imported as, for attribute resolution.

    Only names introduced by an ``import``/``from ... import`` statement
    resolve; a plain local variable that happens to be called ``time``
    never produces the dotted chain ``time.time``, keeping the wall-clock
    and RNG rules free of that false positive.
    """

    def __init__(self) -> None:
        self._bindings: dict[str, str] = {}

    def bind(self, local_name: str, target: str) -> None:
        self._bindings[local_name] = target

    def bind_import(self, alias: ast.alias) -> None:
        """Record one ``import a.b.c [as x]`` binding."""
        if alias.asname:
            self._bindings[alias.asname] = alias.name
        else:
            root = alias.name.split(".", 1)[0]
            self._bindings[root] = root

    def resolve(self, node: ast.expr) -> str | None:
        """The dotted chain of an attribute access rooted at an import.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when ``np`` was bound by ``import numpy as np``; returns ``None``
        when the chain's root is not an imported name.
        """
        reversed_attrs: list[str] = []
        while isinstance(node, ast.Attribute):
            reversed_attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name) or node.id not in self._bindings:
            return None
        reversed_attrs.append(self._bindings[node.id])
        return ".".join(reversed(reversed_attrs))


class LintVisitor(ast.NodeVisitor):
    """Single traversal dispatching each node to every active rule."""

    def __init__(self, rules: list[Rule]) -> None:
        self._rules = rules

    def visit(self, node: ast.AST) -> None:
        hook_name = f"visit_{type(node).__name__}"
        for rule in self._rules:
            hook = getattr(rule, hook_name, None)
            if hook is not None:
                hook(node)
        self.generic_visit(node)


def collect_docstring_ids(tree: ast.Module) -> frozenset[int]:
    """Identity set of every docstring constant in the module.

    Rules that inspect string literals (the fault-token grammar check)
    use this to skip documentation prose.
    """
    ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                ids.add(id(body[0].value))
    return frozenset(ids)


def parse_suppressions(path: str, source: str) -> tuple[list[Suppression], list[Diagnostic]]:
    """Extract suppression directives and flag malformed ones.

    Returns ``(suppressions, malformed)``: a directive without a reason
    lands in ``malformed`` as an ``R000`` diagnostic and does not
    suppress anything.
    """
    suppressions: list[Suppression] = []
    malformed: list[Diagnostic] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse already ok
        return suppressions, malformed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        # A trailing comment waives findings on its own line; a standalone
        # comment line waives findings on the line directly below it.
        standalone = token.line.strip().startswith("#")
        line = token.start[0] + 1 if standalone else token.start[0]
        rule_ids = frozenset(
            rule_id.strip() for rule_id in match.group("rules").split(",")
        )
        reason = match.group("reason").strip()
        if not reason:
            malformed.append(
                Diagnostic(
                    path=path,
                    line=token.start[0],
                    column=token.start[1] + 1,
                    rule_id=BAD_SUPPRESSION_ID,
                    message=(
                        "suppression needs a reason: write "
                        "'# repro-lint: disable="
                        + ",".join(sorted(rule_ids))
                        + " <why this is safe>'"
                    ),
                )
            )
            continue
        suppressions.append(Suppression(line=line, rule_ids=rule_ids, reason=reason))
    return suppressions, malformed


def apply_suppressions(
    diagnostics: list[Diagnostic], suppressions: list[Suppression]
) -> list[Diagnostic]:
    """Drop findings waived by a same-line suppression directive."""
    by_line: dict[int, set[str]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, set()).update(suppression.rule_ids)
    return [
        diagnostic
        for diagnostic in diagnostics
        if diagnostic.rule_id not in by_line.get(diagnostic.line, ())
    ]
