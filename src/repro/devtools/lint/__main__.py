"""Make the lint runnable as ``python -m repro.devtools.lint``."""

import os
import sys

from repro.devtools.lint.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # The reader went away (e.g. ``... | head``).  Point stdout at
        # /dev/null so interpreter shutdown doesn't raise again on flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
