"""Command-line entry point of the determinism lint.

Run over the source tree (the CI lint job's exact invocation)::

    PYTHONPATH=src python -m repro.devtools.lint src

Every finding is printed as a clickable ``file:line:col: R00x message``
line and the process exits nonzero, so the pass can gate a merge.  Rules
are enumerated from the registry; ``--select`` narrows the run and
``--list-rules`` documents what is enforced.
"""

from __future__ import annotations

import argparse
import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lint.rules import REGISTRY, rules_for
from repro.devtools.lint.visitor import (
    SYNTAX_ERROR_ID,
    Diagnostic,
    FileContext,
    LintVisitor,
    apply_suppressions,
    collect_docstring_ids,
    parse_suppressions,
)


def iter_python_files(root: Path) -> Iterable[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def scope_parts(path: Path, root: Path) -> tuple[str, ...]:
    """Path components used for rule scoping.

    Files inside a ``repro`` package scope below the package (so
    ``src/repro/sim/rng.py`` scopes as ``sim/rng.py`` no matter where the
    scan started); anything else scopes relative to the scanned root,
    which lets fixture trees mirror the package layout.
    """
    parts = path.parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        scoped = parts[anchor + 1 :]
        if scoped:
            return scoped
    if root.is_dir():
        try:
            return path.relative_to(root).parts
        except ValueError:  # pragma: no cover - defensive; rglob stays under root
            pass
    return (path.name,)


def lint_file(
    path: Path, root: Path, select: frozenset[str] | None = None
) -> list[Diagnostic]:
    """Lint one file: parse, traverse once, apply inline suppressions."""
    display = str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        return [
            Diagnostic(
                path=display,
                line=error.lineno or 1,
                column=error.offset or 1,
                rule_id=SYNTAX_ERROR_ID,
                message=f"file does not parse: {error.msg}",
            )
        ]
    ctx = FileContext(
        path=display,
        parts=scope_parts(path, root),
        tree=tree,
        source=source,
        docstring_ids=collect_docstring_ids(tree),
    )
    rules = rules_for(ctx, select)
    if not rules:
        return []
    LintVisitor(rules).visit(tree)
    for rule in rules:
        rule.finish()
    diagnostics = [diagnostic for rule in rules for diagnostic in rule.diagnostics]
    suppressions, malformed = parse_suppressions(display, source)
    return apply_suppressions(diagnostics, suppressions) + malformed


def run_lint(
    paths: Sequence[str | Path], select: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Lint files or directory trees; the programmatic API the tests use."""
    selected = frozenset(select) if select is not None else None
    diagnostics: list[Diagnostic] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"lint target does not exist: {root}")
        for path in iter_python_files(root):
            diagnostics.extend(lint_file(path, root, selected))
    return sorted(diagnostics)


def _format_rule_listing() -> str:
    lines = ["Determinism contracts enforced by repro-lint:", ""]
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        lines.append(f"  {rule_id} {rule.name}")
        lines.append(f"       {rule.description}")
    lines.append("")
    lines.append(
        "Suppress one finding inline with: "
        "# repro-lint: disable=R00x <reason why this is safe>"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based lint enforcing the repository's determinism contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    arguments = parser.parse_args(argv)
    if arguments.list_rules:
        print(_format_rule_listing())
        return 0
    select = None
    if arguments.select:
        select = [rule_id.strip() for rule_id in arguments.select.split(",") if rule_id.strip()]
        unknown = sorted(set(select) - set(REGISTRY))
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
    try:
        diagnostics = run_lint(arguments.paths, select)
    except FileNotFoundError as error:
        parser.error(str(error))
    for diagnostic in diagnostics:
        print(diagnostic.render())
    if diagnostics:
        print(f"repro-lint: {len(diagnostics)} finding(s)")
        return 1
    return 0
