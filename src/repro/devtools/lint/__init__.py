"""AST-based determinism lint (``python -m repro.devtools.lint``).

Public surface: :func:`run_lint` returns sorted
:class:`~repro.devtools.lint.visitor.Diagnostic` findings for a set of
paths; :data:`~repro.devtools.lint.rules.REGISTRY` enumerates the
enforced contracts (R001 rng-discipline, R002 no-wall-clock, R003
ordered-iteration, R004 fault-token-grammar, R005 record-format-sync).
"""

from repro.devtools.lint.cli import lint_file, main, run_lint
from repro.devtools.lint.rules import REGISTRY, Rule, register
from repro.devtools.lint.visitor import (
    BAD_SUPPRESSION_ID,
    SYNTAX_ERROR_ID,
    Diagnostic,
    FileContext,
)

__all__ = [
    "BAD_SUPPRESSION_ID",
    "Diagnostic",
    "FileContext",
    "REGISTRY",
    "Rule",
    "SYNTAX_ERROR_ID",
    "lint_file",
    "main",
    "register",
    "run_lint",
]
