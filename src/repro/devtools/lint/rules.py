"""The determinism lint's rule registry and the repo-specific rules.

Every rule encodes one reproducibility contract (see
``docs/architecture.md``, "Determinism contracts"):

========  ====================  ====================================================
Rule id   Name                  Contract
========  ====================  ====================================================
R001      rng-discipline        All randomness flows through the injected
                                :class:`~repro.sim.rng.RandomStreams` streams;
                                ``sim/rng.py`` is the only module that may import
                                :mod:`random`, and ``numpy.random`` is banned.
R002      no-wall-clock         Deterministic modules never read the ambient wall
                                clock (``time.time``/``monotonic``/``perf_counter``,
                                ``datetime.now`` ...); simulated time comes from the
                                kernel and the hosts' hardware-clock models.
R003      ordered-iteration     No iteration over unordered collections (sets,
                                ``dict.values()``/``.keys()`` of non-literal
                                receivers) in ``sim/``, ``apps/``, ``core/`` where
                                the order could feed the RNG or the timeline; wrap
                                the iterable in ``sorted(...)`` or suppress with a
                                reason when insertion order is provably fixed.
R004      fault-token-grammar   Every string literal that looks like a
                                ``network:<kind>[...]`` token, or is passed to
                                ``NetworkFaultSpec.from_token`` /
                                ``parse_fault_specification``, must parse against
                                the real grammar — a typo'd scenario fails lint,
                                not a campaign.
R005      record-format-sync    A module declaring ``RECORD_FORMAT_VERSION`` must
                                keep ``READABLE_FORMAT_VERSIONS`` covering every
                                version ``1..current``: bumping the writer without
                                keeping old records decodable breaks resume.
R006      injectable-clock      :mod:`repro.dist` takes time only through the
                                injected ``SupervisionClock``: no bare
                                ``time.sleep`` / ``asyncio.sleep`` outside
                                ``dist/supervision.py``, so supervision logic
                                stays drivable by ``FakeClock`` in tests.
========  ====================  ====================================================

Rules register themselves in :data:`REGISTRY` via :func:`register`, so a
new contract is one subclass away; the CLI and the tests enumerate the
registry rather than hard-coding ids.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.visitor import FileContext, ImportAliases, Rule

#: rule id -> rule class, in registration order.
REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if rule_class.rule_id in REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule_class.rule_id!r}")
    REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def rules_for(ctx: FileContext, select: frozenset[str] | None = None) -> list[Rule]:
    """Instantiate every registered (and selected) rule that applies to ``ctx``."""
    active: list[Rule] = []
    for rule_id in sorted(REGISTRY):
        if select is not None and rule_id not in select:
            continue
        rule = REGISTRY[rule_id](ctx)
        if rule.applies():
            active.append(rule)
    return active


# ---------------------------------------------------------------------------
# R001 rng-discipline
# ---------------------------------------------------------------------------


@register
class RngDiscipline(Rule):
    """All randomness must flow through the injected ``RandomStreams``."""

    rule_id = "R001"
    name = "rng-discipline"
    description = (
        "no 'import random' / numpy.random outside sim/rng.py: draw from the "
        "injected RandomStreams stream so campaigns stay bit-reproducible"
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._aliases = ImportAliases()

    def applies(self) -> bool:
        if self.ctx.in_directories("devtools"):
            return False
        return not self.ctx.path_ends_with("sim", "rng.py")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root == "random":
                self.report(
                    node,
                    "ambient 'import random' — only sim/rng.py may; draw from "
                    "the experiment's injected RandomStreams stream instead",
                )
            elif alias.name == "numpy.random" or alias.name.startswith("numpy.random."):
                self.report(
                    node,
                    "'import numpy.random' bypasses the seeded RandomStreams "
                    "discipline — derive a stream from the experiment seed instead",
                )
            if root == "numpy":
                self._aliases.bind_import(alias)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:  # relative imports never reach stdlib random/numpy
            return
        if module == "random" or module.startswith("random."):
            self.report(
                node,
                "'from random import ...' — only sim/rng.py may import random; "
                "draw from the injected RandomStreams stream instead",
            )
        elif module == "numpy.random" or module.startswith("numpy.random."):
            self.report(
                node,
                "'from numpy.random import ...' bypasses the seeded "
                "RandomStreams discipline",
            )
        elif module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.report(
                        node,
                        "'from numpy import random' bypasses the seeded "
                        "RandomStreams discipline",
                    )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Only the innermost `<numpy>.random` attribute is checked so one
        # chain such as np.random.default_rng yields one finding.
        chain = self._aliases.resolve(node)
        if chain == "numpy.random":
            self.report(
                node,
                "numpy.random use bypasses the seeded RandomStreams discipline",
            )


# ---------------------------------------------------------------------------
# R002 no-wall-clock
# ---------------------------------------------------------------------------

_BANNED_CLOCK_CHAINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_BANNED_TIME_IMPORTS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)


@register
class NoWallClock(Rule):
    """Deterministic modules must not read the ambient wall clock."""

    rule_id = "R002"
    name = "no-wall-clock"
    description = (
        "no time.time/monotonic/perf_counter or datetime.now in deterministic "
        "modules: read simulated time from the kernel or a host clock "
        "(benchmarks and devtools are allowlisted)"
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._aliases = ImportAliases()

    def applies(self) -> bool:
        return not self.ctx.in_directories("devtools", "benchmarks")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".", 1)[0] in ("time", "datetime"):
                self._aliases.bind_import(alias)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            return
        for alias in node.names:
            if module == "time" and alias.name in _BANNED_TIME_IMPORTS:
                self.report(
                    node,
                    f"wall-clock read 'from time import {alias.name}' — "
                    "deterministic code must use the simulated clocks",
                )
            elif module == "datetime" and alias.name in ("datetime", "date"):
                self._aliases.bind(alias.asname or alias.name, f"datetime.{alias.name}")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = self._aliases.resolve(node)
        if chain in _BANNED_CLOCK_CHAINS:
            self.report(
                node,
                f"wall-clock read '{chain}' — deterministic code must use the "
                "simulated clocks (kernel.now / host.read_clock)",
            )


# ---------------------------------------------------------------------------
# R003 ordered-iteration
# ---------------------------------------------------------------------------

#: Consumers whose result does not depend on iteration order; iterables
#: (including generator expressions) passed straight into one of these are
#: exempt.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)

_SET_BUILDERS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({"union", "intersection", "difference", "symmetric_difference"})
_MAPPING_VIEWS = frozenset({"values", "keys"})


@register
class OrderedIteration(Rule):
    """No order-sensitive iteration over unordered collections.

    Heuristic and deliberately syntactic: it flags ``for``/comprehension
    iteration whose iterable is *textually* a set (a ``set()`` /
    ``frozenset()`` call, a set display with non-constant elements, a set
    comprehension, a set-algebra method call) or a mapping view
    (``.values()`` / ``.keys()`` on a non-literal receiver).  Iteration
    over plain names is not resolved — the golden equivalence tests
    remain the backstop for those.  Wrapping the iterable in an
    order-insensitive consumer (``sorted``, ``any``, ``len``, ...) is
    always accepted; where insertion order is provably deterministic,
    suppress with a reason instead of reshuffling the hot path.
    """

    rule_id = "R003"
    name = "ordered-iteration"
    description = (
        "no iteration over sets or dict views in sim/, apps/, core/ where "
        "order can feed the RNG or the timeline; use sorted(...) or suppress "
        "with a reason"
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._exempt: set[int] = set()

    def applies(self) -> bool:
        if self.ctx.in_directories("devtools"):
            return False
        return self.ctx.in_directories("sim", "apps", "core")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_INSENSITIVE_CONSUMERS:
            for argument in node.args:
                self._exempt.add(id(argument))
                if isinstance(argument, ast.GeneratorExp):
                    for comprehension in argument.generators:
                        self._exempt.add(id(comprehension.iter))

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)

    def _check_iterable(self, iterable: ast.expr) -> None:
        if id(iterable) in self._exempt:
            return
        if isinstance(iterable, ast.SetComp):
            self.report(iterable, self._message("a set comprehension"))
        elif isinstance(iterable, ast.Set):
            if not all(isinstance(element, ast.Constant) for element in iterable.elts):
                self.report(iterable, self._message("a non-literal set display"))
        elif isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and func.id in _SET_BUILDERS:
                self.report(iterable, self._message(f"a {func.id}(...) result"))
            elif isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                self.report(iterable, self._message(f"a set .{func.attr}(...) result"))
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _MAPPING_VIEWS
                and not isinstance(func.value, ast.Dict)
            ):
                self.report(
                    iterable,
                    self._message(f"a .{func.attr}() view of a non-literal mapping"),
                )

    @staticmethod
    def _message(what: str) -> str:
        return (
            f"order-sensitive iteration over {what} — the order can feed the "
            "RNG or the timeline; iterate sorted(...) or suppress with a "
            "reason if insertion order is provably deterministic"
        )


# ---------------------------------------------------------------------------
# R004 fault-token-grammar
# ---------------------------------------------------------------------------


@register
class FaultTokenGrammar(Rule):
    """Fault-spec string literals must parse against the real grammars.

    Rather than re-implementing the ``network:<kind>[...]`` and
    crash-fault grammars (which would drift), the rule feeds every
    relevant string literal to the canonical parsers —
    :meth:`repro.sim.topology.NetworkFaultSpec.from_token` and
    :func:`repro.core.specs.fault_spec.parse_fault_specification` — and
    turns any rejection into a finding at the literal's position.
    """

    rule_id = "R004"
    name = "fault-token-grammar"
    description = (
        "every 'network:<kind>[...]' string literal and every literal passed "
        "to NetworkFaultSpec.from_token / parse_fault_specification must "
        "parse, so a typo'd scenario fails lint instead of a campaign"
    )

    def applies(self) -> bool:
        return not self.ctx.in_directories("devtools")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if callee not in ("from_token", "parse_fault_specification") or not node.args:
            return
        argument = node.args[0]
        if not (isinstance(argument, ast.Constant) and isinstance(argument.value, str)):
            return
        if callee == "from_token":
            self._check_token(argument, argument.value)
        else:
            self._check_specification(argument, argument.value)

    def visit_Constant(self, node: ast.Constant) -> None:
        # Any literal that *looks like* a network fault token must parse,
        # wherever it appears (a scenario table, a test, a config default).
        # The bare "network:" prefix string used by the parsers themselves
        # and documentation docstrings are not tokens.
        if not (isinstance(node.value, str) and node.value.startswith("network:")):
            return
        if node.value == "network:" or id(node) in self.ctx.docstring_ids:
            return
        self._check_token(node, node.value)

    def _check_token(self, node: ast.AST, text: str) -> None:
        try:
            from repro.sim.topology import NetworkFaultSpec
        except ImportError:  # pragma: no cover - repro always importable in-repo
            return
        try:
            NetworkFaultSpec.from_token(text)
        except Exception as error:
            self.report(node, f"invalid network fault token {text!r}: {error}")

    def _check_specification(self, node: ast.AST, text: str) -> None:
        try:
            from repro.core.specs.fault_spec import parse_fault_specification
        except ImportError:  # pragma: no cover - repro always importable in-repo
            return
        try:
            parse_fault_specification(text)
        except Exception as error:
            self.report(node, f"invalid fault specification literal: {error}")


# ---------------------------------------------------------------------------
# R005 record-format-sync
# ---------------------------------------------------------------------------


@register
class RecordFormatSync(Rule):
    """Readers must keep decoding every record format version ever written.

    The contract holds per *pair* of constants: a module declaring a
    format-version constant from :data:`VERSION_PAIRS` must also declare
    its readable-set partner covering every version ``1..current``.
    Version constants outside the pairs (``MANIFEST_FORMAT_VERSION``,
    whose reader is deliberately single-version) are not the rule's
    business.
    """

    rule_id = "R005"
    name = "record-format-sync"
    description = (
        "a module declaring a record/columnar format-version constant must "
        "keep its READABLE_*_VERSIONS partner covering every version "
        "1..current, so stores written by older code stay resumable"
    )

    #: (version constant, readable-set constant) pairs the rule enforces.
    VERSION_PAIRS = (
        ("RECORD_FORMAT_VERSION", "READABLE_FORMAT_VERSIONS"),
        ("COLUMNAR_FORMAT_VERSION", "READABLE_COLUMNAR_VERSIONS"),
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._assignments: dict[str, tuple[ast.AST, ast.expr]] = {}

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._assignments[target.id] = (node, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._assignments[node.target.id] = (node, node.value)

    def finish(self) -> None:
        for version_name, readable_name in self.VERSION_PAIRS:
            self._check_pair(version_name, readable_name)

    def _check_pair(self, version_name: str, readable_name: str) -> None:
        version_entry = self._assignments.get(version_name)
        if version_entry is None:
            return  # this pair's format is not declared here
        version_node, version_value = version_entry
        if not (isinstance(version_value, ast.Constant) and isinstance(version_value.value, int)):
            self.report(
                version_node,
                f"{version_name} must be an integer literal so readers "
                "and the lint can reason about it statically",
            )
            return
        current = version_value.value
        readable_entry = self._assignments.get(readable_name)
        if readable_entry is None:
            self.report(
                version_node,
                f"module declares {version_name} but no {readable_name} — "
                "readers cannot prove which versions stay decodable",
            )
            return
        readable_node, readable_value = readable_entry
        readable = self._evaluate_version_set(readable_value, version_name, current)
        if readable is None:
            self.report(
                readable_node,
                f"{readable_name} must be a literal set/frozenset of "
                f"integer versions ({version_name} may appear by name)",
            )
            return
        missing = [version for version in range(1, current + 1) if version not in readable]
        if missing:
            self.report(
                readable_node,
                f"reader drops format version(s) {missing}: every declared "
                f"version <= {version_name} ({current}) must remain "
                "decodable or old stores silently stop resuming",
            )

    @staticmethod
    def _evaluate_version_set(
        expr: ast.expr, version_name: str, current: int
    ) -> frozenset[int] | None:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
            and len(expr.args) == 1
        ):
            expr = expr.args[0]
        if not isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
            return None
        versions: set[int] = set()
        for element in expr.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, int):
                versions.add(element.value)
            elif isinstance(element, ast.Name) and element.id == version_name:
                versions.add(current)
            else:
                return None
        return frozenset(versions)


# ---------------------------------------------------------------------------
# R006 injectable-clock
# ---------------------------------------------------------------------------

_BANNED_SLEEP_CHAINS = frozenset({"time.sleep", "asyncio.sleep"})


@register
class InjectableClock(Rule):
    """``repro.dist`` takes time only through the injected clock.

    Supervision behavior — heartbeat expiry, retry backoff, connect
    windows — must be drivable by :class:`repro.dist.supervision.FakeClock`
    in unit tests, so every sleep and wait in :mod:`repro.dist` goes
    through the :class:`~repro.dist.supervision.SupervisionClock` seam.
    Only ``dist/supervision.py`` (where the real clock lives behind that
    seam) may touch ``time``/``asyncio`` sleeping primitives directly;
    wall-clock *reads* are already R002's business, which applies in
    ``dist/`` too.
    """

    rule_id = "R006"
    name = "injectable-clock"
    description = (
        "repro.dist takes time only through the injected SupervisionClock: "
        "no bare time.sleep/asyncio.sleep outside dist/supervision.py, so "
        "supervision logic stays testable with FakeClock instead of real waits"
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._aliases = ImportAliases()

    def applies(self) -> bool:
        if not self.ctx.in_directories("dist"):
            return False
        return not self.ctx.path_ends_with("dist", "supervision.py")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".", 1)[0] in ("time", "asyncio"):
                self._aliases.bind_import(alias)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            return
        if module in ("time", "asyncio"):
            for alias in node.names:
                if alias.name == "sleep":
                    self.report(
                        node,
                        f"bare 'from {module} import sleep' in repro.dist — "
                        "take time through the injected SupervisionClock so "
                        "supervision stays testable with FakeClock",
                    )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = self._aliases.resolve(node)
        if chain in _BANNED_SLEEP_CHAINS:
            self.report(
                node,
                f"bare '{chain}' in repro.dist — take time through the "
                "injected SupervisionClock (see dist/supervision.py) so "
                "supervision stays testable with FakeClock",
            )
