"""The default scenario catalog: every example application as a scenario.

Registers the three applications that existed before the registry (toggle,
leader election, primary-backup replication), the two-phase-commit and
token-ring workloads (each in a correlated and an uncorrelated crash-fault
variant), and the partition/degradation scenarios enabled by the
topology-aware network model: an in-doubt coordinator isolation, a
token-ring partition-and-heal with token-regeneration races, and a leader
election under an asymmetric (one-way) link outage.  All builders are
small closures over the ``build_*_study`` helpers of :mod:`repro.apps`, so
everything shown here is buildable with the public API alone.
"""

from __future__ import annotations

from repro.apps.election import (
    DEFAULT_MACHINES as ELECTION_MACHINES,
    ElectionParameters,
    build_election_study,
    coverage_study_measure,
    leader_fault,
)
from repro.apps.replication import build_replication_study
from repro.apps.tokenring import (
    build_tokenring_study,
    holder_crash_fault,
    token_loss_fault,
)
from repro.apps.toggle import DRIVER, build_toggle_study
from repro.apps.twophase import build_twophase_study, participant_voted_fault
from repro.core.campaign import StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.context import RestartPolicy
from repro.core.specs.fault_spec import network_fault
from repro.measures import (
    Count,
    MeasureStep,
    StateTuple,
    StudyMeasure,
    TotalDuration,
)
from repro.scenarios.registry import Scenario, ScenarioRegistry
from repro.sim.topology import (
    NetworkConfig,
    NetworkFaultKind,
    NetworkFaultSpec,
    ScheduledNetworkFault,
)


# ---------------------------------------------------------------------------
# Study measures
# ---------------------------------------------------------------------------

def _toggle_measure() -> StudyMeasure:
    return StudyMeasure(
        name="driver-active-time",
        steps=(MeasureStep(StateTuple(DRIVER, "ACTIVE"), TotalDuration("T")),),
    )


def _election_coverage_measure() -> StudyMeasure:
    return coverage_study_measure("black")


def _replication_failover_measure() -> StudyMeasure:
    return StudyMeasure(
        name="replica2-promoted",
        steps=(MeasureStep(StateTuple("replica2", "PRIMARY"), Count(edge="U")),),
    )


def _twophase_commit_measure() -> StudyMeasure:
    return StudyMeasure(
        name="committed-transactions",
        steps=(MeasureStep(StateTuple("coordinator", "COMMIT"), Count(edge="U")),),
    )


def _tokenring_holding_measure() -> StudyMeasure:
    return StudyMeasure(
        name="node3-holding-time",
        steps=(MeasureStep(StateTuple("node3", "HOLDING"), TotalDuration("T")),),
    )


def _election_reelection_measure() -> StudyMeasure:
    """How often ``yellow`` re-entered an election (>= 2 means split brain)."""
    return StudyMeasure(
        name="yellow-reelections",
        steps=(MeasureStep(StateTuple("yellow", "ELECT"), Count(edge="U")),),
    )


# ---------------------------------------------------------------------------
# Study builders (name/experiments/seed are the registry's standard knobs)
# ---------------------------------------------------------------------------

def _build_toggle(name: str = "toggle", experiments: int = 4, seed: int = 0) -> StudyConfig:
    return build_toggle_study(
        name=name,
        dwell_time=0.020,
        timeslice=0.010,
        cycles=5,
        experiments=experiments,
        seed=seed,
    )


def _build_election(
    name: str = "leader-election", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    parameters = {
        machine: ElectionParameters(run_duration=0.5, favored=(machine == "black"))
        for machine in ELECTION_MACHINES
    }
    return build_election_study(
        name=name,
        faults_by_machine={"black": (leader_fault("black"),)},
        experiments=experiments,
        parameters_by_machine=parameters,
        restart_policy=RestartPolicy(
            enabled=True, delay=0.04, max_restarts=1, restart_host="next",
            success_probability=0.7,
        ),
        seed=seed,
    )


def _build_replication(
    name: str = "primary-backup", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_replication_study(name=name, experiments=experiments, seed=seed)


def _build_twophase(
    name: str = "two-phase-commit", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_twophase_study(name=name, experiments=experiments, seed=seed)


def _build_twophase_uncorrelated(
    name: str = "two-phase-commit-uncorrelated", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_twophase_study(
        name=name,
        faults_by_machine={"part1": (participant_voted_fault("part1"),)},
        experiments=experiments,
        seed=seed,
    )


def _build_tokenring(
    name: str = "token-ring", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_tokenring_study(name=name, experiments=experiments, seed=seed)


def _build_tokenring_uncorrelated(
    name: str = "token-ring-uncorrelated", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_tokenring_study(
        name=name,
        faults_by_machine={
            "node1": (token_loss_fault("node1"),),
            "node2": (holder_crash_fault("node2"),),
        },
        experiments=experiments,
        seed=seed,
    )


def _build_twophase_partition(
    name: str = "two-phase-commit-partition", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Isolate the coordinator's host exactly inside the in-doubt window.

    The partition is state-triggered on the same global state as the
    classic in-doubt crash fault — ``(coordinator:PREPARE) & (part1:VOTED)``
    — but instead of crashing anything it cuts ``hosta`` (the coordinator)
    off from both participant hosts for 80 ms.  Outstanding votes and the
    eventual decision are dropped by the substrate, the coordinator aborts
    on its vote timeout, the in-doubt participant aborts on its decision
    timeout, and after the automatic heal the service resumes committing.
    """
    partition = NetworkFaultSpec(
        kind=NetworkFaultKind.PARTITION,
        groups=(("hosta",), ("hostb", "hostc")),
        duration=0.08,
    )
    fault = network_fault(
        "npart1",
        And(StateAtom("coordinator", "PREPARE"), StateAtom("part1", "VOTED")),
        partition,
    )
    return build_twophase_study(
        name=name,
        faults_by_machine={"coordinator": (fault,)},
        experiments=experiments,
        seed=seed,
    )


def _build_tokenring_partition_heal(
    name: str = "token-ring-partition-heal", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Split the ring on a timer, heal it, and race the token regeneration.

    While ``hosta`` (node1, the regenerating member) is cut off from the
    other two hosts, any token crossing the cut is dropped; node1's
    loss-timeout regeneration rule then mints a fresh token on its side
    while a surviving token may still circulate on the other side.  After
    the scheduled heal the duplicate-token race resolves through the
    ring's retire-on-duplicate rule.
    """
    schedule = (
        ScheduledNetworkFault(
            at=0.08,
            spec=NetworkFaultSpec(
                kind=NetworkFaultKind.PARTITION,
                groups=(("hosta",), ("hostb", "hostc")),
            ),
            name="ring-split",
        ),
        ScheduledNetworkFault(
            at=0.20,
            spec=NetworkFaultSpec(kind=NetworkFaultKind.HEAL),
            name="ring-heal",
        ),
    )
    return build_tokenring_study(
        name=name,
        faults_by_machine={},
        network=NetworkConfig(schedule=schedule),
        experiments=experiments,
        seed=seed,
    )


def _build_election_asymmetric_link(
    name: str = "leader-election-asym-link", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Leader election under a one-way link outage (classic split brain).

    When ``black`` (favored, on ``hosta``) becomes leader, the directed
    link ``hosta -> hostb`` goes down for 300 ms while the reverse
    direction keeps working: ``yellow`` stops receiving heartbeats,
    declares the leader dead, and triggers a re-election among the
    followers — while ``black`` continues to lead, oblivious, because
    nothing it receives changes.  The measure counts how often ``yellow``
    re-entered an election.
    """
    parameters = {
        machine: ElectionParameters(run_duration=0.5, favored=(machine == "black"))
        for machine in ELECTION_MACHINES
    }
    outage = NetworkFaultSpec(
        kind=NetworkFaultKind.LINK_DOWN,
        link=("hosta", "hostb"),
        symmetric=False,
        duration=0.3,
    )
    fault = network_fault("basym1", StateAtom("black", "LEAD"), outage)
    return build_election_study(
        name=name,
        faults_by_machine={"black": (fault,)},
        experiments=experiments,
        parameters_by_machine=parameters,
        restart_policy=RestartPolicy(enabled=False),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# The default registry
# ---------------------------------------------------------------------------

def build_default_registry() -> ScenarioRegistry:
    """A fresh registry holding the library's built-in scenarios."""
    return ScenarioRegistry(
        [
            Scenario(
                name="toggle",
                description="two-node ACTIVE/IDLE driver with a record-only fault "
                "(Figures 3.2/3.3)",
                builder=_build_toggle,
                measure_factory=_toggle_measure,
                tags=("paper",),
            ),
            Scenario(
                name="leader-election",
                description="leader election with a leader-crash fault and "
                "probabilistic restart (Chapter 5 coverage)",
                builder=_build_election,
                measure_factory=_election_coverage_measure,
                tags=("paper", "restart"),
            ),
            Scenario(
                name="primary-backup",
                description="primary-backup replication; crash the primary while "
                "a backup synchronizes",
                builder=_build_replication,
                measure_factory=_replication_failover_measure,
                tags=("correlated",),
            ),
            Scenario(
                name="two-phase-commit",
                description="atomic commitment; crash the coordinator inside a "
                "participant's in-doubt window",
                builder=_build_twophase,
                measure_factory=_twophase_commit_measure,
                tags=("correlated",),
            ),
            Scenario(
                name="two-phase-commit-uncorrelated",
                description="atomic commitment; crash a participant after it "
                "votes, independent of the coordinator",
                builder=_build_twophase_uncorrelated,
                measure_factory=_twophase_commit_measure,
                tags=("uncorrelated",),
            ),
            Scenario(
                name="token-ring",
                description="token-ring mutual exclusion; holder crash plus a "
                "correlated second-holder crash",
                builder=_build_tokenring,
                measure_factory=_tokenring_holding_measure,
                tags=("correlated",),
            ),
            Scenario(
                name="token-ring-uncorrelated",
                description="token-ring mutual exclusion; token loss and an "
                "independent holder crash",
                builder=_build_tokenring_uncorrelated,
                measure_factory=_tokenring_holding_measure,
                tags=("uncorrelated",),
            ),
            Scenario(
                name="two-phase-commit-partition",
                description="atomic commitment; isolate the coordinator's host "
                "inside the in-doubt window, then auto-heal",
                builder=_build_twophase_partition,
                measure_factory=_twophase_commit_measure,
                tags=("network", "partition", "correlated"),
            ),
            Scenario(
                name="token-ring-partition-heal",
                description="token-ring mutual exclusion; scheduled partition "
                "and heal racing the token regeneration rule",
                builder=_build_tokenring_partition_heal,
                measure_factory=_tokenring_holding_measure,
                tags=("network", "partition", "scheduled"),
            ),
            Scenario(
                name="leader-election-asym-link",
                description="leader election; one-way link outage starves a "
                "follower of heartbeats (split brain)",
                builder=_build_election_asymmetric_link,
                measure_factory=_election_reelection_measure,
                tags=("network", "asymmetric"),
            ),
        ]
    )


#: The registry enumerated by the examples, benchmarks, and smoke tests.
DEFAULT_REGISTRY = build_default_registry()


def default_registry() -> ScenarioRegistry:
    """The process-wide default scenario registry."""
    return DEFAULT_REGISTRY
