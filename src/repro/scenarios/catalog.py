"""The default scenario catalog: every example application as a scenario.

Registers the three applications that existed before the registry (toggle,
leader election, primary-backup replication), the two-phase-commit and
token-ring workloads (each in a correlated and an uncorrelated crash-fault
variant), and the partition/degradation scenarios enabled by the
topology-aware network model: an in-doubt coordinator isolation, a
token-ring partition-and-heal with token-regeneration races, and a leader
election under an asymmetric (one-way) link outage.  All builders are
small closures over the ``build_*_study`` helpers of :mod:`repro.apps`, so
everything shown here is buildable with the public API alone.

The *protocol suite* adds four real-protocol workloads, each in a
correlated, an uncorrelated, and a partition variant:

* ``raft-election*`` — term-based election with log replication; the
  headline measure is the time any two replicas led simultaneously;
* ``quorum-register*`` — a quorum read/write register with read-repair;
  the measure counts stale reads observed by the client;
* ``swim-detector*`` / ``swim-partition`` — the SWIM gossip failure
  detector; the measure counts confirm verdicts, which under a partition
  with no crash faults are all false positives;
* ``dfs-master*`` — a DFS master/replica workload; the measure is the
  total time the master's audit held the group in ``DIVERGED``.

The machine-checkable safety properties behind these measures (election
safety, read quorum intersection, confirmed-dead-really-crashed, committed
prefix agreement, store consistency) are replayed from archived timelines
by ``tests/protocol/invariants.py``.
"""

from __future__ import annotations

from repro.apps.dfsmaster import (
    build_dfs_study,
    dfs_correlated_datanode_fault,
    dfs_datanode_crash_fault,
)
from repro.apps.election import (
    DEFAULT_MACHINES as ELECTION_MACHINES,
    ElectionParameters,
    build_election_study,
    coverage_study_measure,
    leader_fault,
)
from repro.apps.quorum import (
    build_quorum_study,
    quorum_correlated_replica_fault,
    quorum_replica_crash_fault,
)
from repro.apps.raft import (
    RAFT_MACHINES,
    RaftParameters,
    build_raft_study,
    raft_correlated_candidate_fault,
    raft_follower_crash_fault,
    raft_leader_crash_fault,
)
from repro.apps.replication import build_replication_study
from repro.apps.swim import (
    build_swim_study,
    swim_correlated_detector_fault,
    swim_member_crash_fault,
)
from repro.apps.tokenring import (
    build_tokenring_study,
    holder_crash_fault,
    token_loss_fault,
)
from repro.apps.toggle import DRIVER, build_toggle_study
from repro.apps.twophase import build_twophase_study, participant_voted_fault
from repro.core.campaign import StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.context import RestartPolicy
from repro.core.specs.fault_spec import network_fault
from repro.measures import (
    Count,
    MeasureStep,
    StateTuple,
    StudyMeasure,
    TotalDuration,
)
from repro.scenarios.registry import Scenario, ScenarioRegistry
from repro.sim.topology import (
    NetworkConfig,
    NetworkFaultKind,
    NetworkFaultSpec,
    ScheduledNetworkFault,
)


# ---------------------------------------------------------------------------
# Study measures
# ---------------------------------------------------------------------------

def _toggle_measure() -> StudyMeasure:
    return StudyMeasure(
        name="driver-active-time",
        steps=(MeasureStep(StateTuple(DRIVER, "ACTIVE"), TotalDuration("T")),),
    )


def _election_coverage_measure() -> StudyMeasure:
    return coverage_study_measure("black")


def _replication_failover_measure() -> StudyMeasure:
    return StudyMeasure(
        name="replica2-promoted",
        steps=(MeasureStep(StateTuple("replica2", "PRIMARY"), Count(edge="U")),),
    )


def _twophase_commit_measure() -> StudyMeasure:
    return StudyMeasure(
        name="committed-transactions",
        steps=(MeasureStep(StateTuple("coordinator", "COMMIT"), Count(edge="U")),),
    )


def _tokenring_holding_measure() -> StudyMeasure:
    return StudyMeasure(
        name="node3-holding-time",
        steps=(MeasureStep(StateTuple("node3", "HOLDING"), TotalDuration("T")),),
    )


def _election_reelection_measure() -> StudyMeasure:
    """How often ``yellow`` re-entered an election (>= 2 means split brain)."""
    return StudyMeasure(
        name="yellow-reelections",
        steps=(MeasureStep(StateTuple("yellow", "ELECT"), Count(edge="U")),),
    )


def _raft_dual_leadership_measure() -> StudyMeasure:
    """Total time any two Raft replicas were in ``LEADER`` simultaneously.

    Raft's election safety allows this to be non-zero only across *terms*
    (a deposed leader that has not yet heard of the new term); the
    per-term assertion lives in the protocol harness.  Under the crash
    variants the expected value is zero.
    """
    pairs = (
        StateTuple("r1", "LEADER") & StateTuple("r2", "LEADER"),
        StateTuple("r1", "LEADER") & StateTuple("r3", "LEADER"),
        StateTuple("r2", "LEADER") & StateTuple("r3", "LEADER"),
    )
    overlap = pairs[0] | pairs[1] | pairs[2]
    return StudyMeasure(
        name="dual-leadership",
        steps=(MeasureStep(overlap, TotalDuration("T")),),
    )


def _quorum_stale_read_measure() -> StudyMeasure:
    """How many reads returned a version older than the last commit."""
    return StudyMeasure(
        name="stale-reads",
        steps=(MeasureStep(StateTuple("client", "STALE"), Count(edge="U")),),
    )


def _swim_confirm_measure() -> StudyMeasure:
    """How many confirm verdicts any member originated.

    Under the crash variants these are true positives; under the
    partition variant (no crash faults at all) every single one is a
    false positive, so the count *is* the false-detection rate.
    """
    members = ("m1", "m2", "m3", "m4")
    confirming = StateTuple(members[0], "CONFIRMING")
    for member in members[1:]:
        confirming = confirming | StateTuple(member, "CONFIRMING")
    return StudyMeasure(
        name="confirm-events",
        steps=(MeasureStep(confirming, Count(edge="U")),),
    )


def _dfs_divergence_measure() -> StudyMeasure:
    """Total time the master's audit held the group in ``DIVERGED``."""
    return StudyMeasure(
        name="replica-divergence",
        steps=(MeasureStep(StateTuple("master", "DIVERGED"), TotalDuration("T")),),
    )


# ---------------------------------------------------------------------------
# Study builders (name/experiments/seed are the registry's standard knobs)
# ---------------------------------------------------------------------------

def _build_toggle(name: str = "toggle", experiments: int = 4, seed: int = 0) -> StudyConfig:
    return build_toggle_study(
        name=name,
        dwell_time=0.020,
        timeslice=0.010,
        cycles=5,
        experiments=experiments,
        seed=seed,
    )


def _build_election(
    name: str = "leader-election", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    parameters = {
        machine: ElectionParameters(run_duration=0.5, favored=(machine == "black"))
        for machine in ELECTION_MACHINES
    }
    return build_election_study(
        name=name,
        faults_by_machine={"black": (leader_fault("black"),)},
        experiments=experiments,
        parameters_by_machine=parameters,
        restart_policy=RestartPolicy(
            enabled=True, delay=0.04, max_restarts=1, restart_host="next",
            success_probability=0.7,
        ),
        seed=seed,
    )


def _build_replication(
    name: str = "primary-backup", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_replication_study(name=name, experiments=experiments, seed=seed)


def _build_twophase(
    name: str = "two-phase-commit", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_twophase_study(name=name, experiments=experiments, seed=seed)


def _build_twophase_uncorrelated(
    name: str = "two-phase-commit-uncorrelated", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_twophase_study(
        name=name,
        faults_by_machine={"part1": (participant_voted_fault("part1"),)},
        experiments=experiments,
        seed=seed,
    )


def _build_tokenring(
    name: str = "token-ring", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_tokenring_study(name=name, experiments=experiments, seed=seed)


def _build_tokenring_uncorrelated(
    name: str = "token-ring-uncorrelated", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_tokenring_study(
        name=name,
        faults_by_machine={
            "node1": (token_loss_fault("node1"),),
            "node2": (holder_crash_fault("node2"),),
        },
        experiments=experiments,
        seed=seed,
    )


def _build_twophase_partition(
    name: str = "two-phase-commit-partition", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Isolate the coordinator's host exactly inside the in-doubt window.

    The partition is state-triggered on the same global state as the
    classic in-doubt crash fault — ``(coordinator:PREPARE) & (part1:VOTED)``
    — but instead of crashing anything it cuts ``hosta`` (the coordinator)
    off from both participant hosts for 80 ms.  Outstanding votes and the
    eventual decision are dropped by the substrate, the coordinator aborts
    on its vote timeout, the in-doubt participant aborts on its decision
    timeout, and after the automatic heal the service resumes committing.
    """
    partition = NetworkFaultSpec(
        kind=NetworkFaultKind.PARTITION,
        groups=(("hosta",), ("hostb", "hostc")),
        duration=0.08,
    )
    fault = network_fault(
        "npart1",
        And(StateAtom("coordinator", "PREPARE"), StateAtom("part1", "VOTED")),
        partition,
    )
    return build_twophase_study(
        name=name,
        faults_by_machine={"coordinator": (fault,)},
        experiments=experiments,
        seed=seed,
    )


def _build_tokenring_partition_heal(
    name: str = "token-ring-partition-heal", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Split the ring on a timer, heal it, and race the token regeneration.

    While ``hosta`` (node1, the regenerating member) is cut off from the
    other two hosts, any token crossing the cut is dropped; node1's
    loss-timeout regeneration rule then mints a fresh token on its side
    while a surviving token may still circulate on the other side.  After
    the scheduled heal the duplicate-token race resolves through the
    ring's retire-on-duplicate rule.
    """
    schedule = (
        ScheduledNetworkFault(
            at=0.08,
            spec=NetworkFaultSpec(
                kind=NetworkFaultKind.PARTITION,
                groups=(("hosta",), ("hostb", "hostc")),
            ),
            name="ring-split",
        ),
        ScheduledNetworkFault(
            at=0.20,
            spec=NetworkFaultSpec(kind=NetworkFaultKind.HEAL),
            name="ring-heal",
        ),
    )
    return build_tokenring_study(
        name=name,
        faults_by_machine={},
        network=NetworkConfig(schedule=schedule),
        experiments=experiments,
        seed=seed,
    )


def _build_election_asymmetric_link(
    name: str = "leader-election-asym-link", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Leader election under a one-way link outage (classic split brain).

    When ``black`` (favored, on ``hosta``) becomes leader, the directed
    link ``hosta -> hostb`` goes down for 300 ms while the reverse
    direction keeps working: ``yellow`` stops receiving heartbeats,
    declares the leader dead, and triggers a re-election among the
    followers — while ``black`` continues to lead, oblivious, because
    nothing it receives changes.  The measure counts how often ``yellow``
    re-entered an election.
    """
    parameters = {
        machine: ElectionParameters(run_duration=0.5, favored=(machine == "black"))
        for machine in ELECTION_MACHINES
    }
    outage = NetworkFaultSpec(
        kind=NetworkFaultKind.LINK_DOWN,
        link=("hosta", "hostb"),
        symmetric=False,
        duration=0.3,
    )
    fault = network_fault("basym1", StateAtom("black", "LEAD"), outage)
    return build_election_study(
        name=name,
        faults_by_machine={"black": (fault,)},
        experiments=experiments,
        parameters_by_machine=parameters,
        restart_policy=RestartPolicy(enabled=False),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Protocol-suite builders
# ---------------------------------------------------------------------------

def _raft_parameters() -> dict[str, RaftParameters]:
    """Favor ``r1`` with a shorter election timeout.

    Like the favored candidate of the classic election scenario, this
    makes the *first* leader deterministic (r1, term 1) without touching
    the randomized timers that resolve the re-election after it crashes.
    """
    return {
        machine: (
            RaftParameters(election_timeout_min=0.030, election_timeout_max=0.045)
            if machine == "r1"
            else RaftParameters()
        )
        for machine in RAFT_MACHINES
    }


def _build_raft(
    name: str = "raft-election", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Leader crash plus a correlated candidate crash in the re-election.

    ``r1`` (favored) leads term 1 and is crashed in the ``LEADER`` state;
    the second fault crashes ``r2`` exactly while it campaigns in the
    ensuing re-election — the global state in which the group is one
    failure from losing its majority.
    """
    return build_raft_study(
        name=name,
        faults_by_machine={
            "r1": (raft_leader_crash_fault("r1"),),
            "r2": (raft_correlated_candidate_fault("r1", "r2"),),
        },
        parameters_by_machine=_raft_parameters(),
        experiments=experiments,
        seed=seed,
    )


def _build_raft_uncorrelated(
    name: str = "raft-election-uncorrelated", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_raft_study(
        name=name,
        faults_by_machine={"r3": (raft_follower_crash_fault("r3"),)},
        parameters_by_machine=_raft_parameters(),
        experiments=experiments,
        seed=seed,
    )


def _build_raft_partition(
    name: str = "raft-election-partition", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Isolate the leader's host the moment it starts leading.

    ``r1`` (on ``hosta``) keeps believing it leads term 1 while the
    majority side elects a term-2 leader; the ``dual-leadership`` measure
    captures the cross-term overlap, and the per-term election-safety
    invariant still holds.
    """
    isolation = NetworkFaultSpec(
        kind=NetworkFaultKind.PARTITION,
        groups=(("hosta",), ("hostb", "hostc")),
        duration=0.15,
    )
    fault = network_fault("r1part1", StateAtom("r1", "LEADER"), isolation)
    return build_raft_study(
        name=name,
        faults_by_machine={"r1": (fault,)},
        parameters_by_machine=_raft_parameters(),
        experiments=experiments,
        seed=seed,
    )


def _build_quorum(
    name: str = "quorum-register", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Crash replica ``q1`` exactly inside the client's write window."""
    return build_quorum_study(
        name=name,
        faults_by_machine={"q1": (quorum_correlated_replica_fault("q1"),)},
        experiments=experiments,
        seed=seed,
    )


def _build_quorum_uncorrelated(
    name: str = "quorum-register-uncorrelated", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_quorum_study(
        name=name,
        faults_by_machine={"q2": (quorum_replica_crash_fault("q2"),)},
        experiments=experiments,
        seed=seed,
    )


def _build_quorum_partition(
    name: str = "quorum-register-partition", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Cut replica ``q1``'s host off exactly while the client writes.

    The write still commits on the majority side (W=2 of the remaining
    replicas); after the automatic heal the stale replica is caught by
    the next read's version comparison and read-repaired.  Quorum
    intersection keeps the stale-read count at zero throughout.
    """
    isolation = NetworkFaultSpec(
        kind=NetworkFaultKind.PARTITION,
        groups=(("hostb",), ("hosta", "hostc")),
        duration=0.08,
    )
    fault = network_fault("q1part1", StateAtom("client", "WRITING"), isolation)
    return build_quorum_study(
        name=name,
        faults_by_machine={"client": (fault,)},
        experiments=experiments,
        seed=seed,
    )


def _build_swim(
    name: str = "swim-detector", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Crash ``m1``, then crash ``m2`` exactly while it suspects ``m1``."""
    return build_swim_study(
        name=name,
        faults_by_machine={
            "m1": (swim_member_crash_fault("m1"),),
            "m2": (swim_correlated_detector_fault("m1", "m2"),),
        },
        experiments=experiments,
        seed=seed,
    )


def _build_swim_uncorrelated(
    name: str = "swim-detector-uncorrelated", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_swim_study(
        name=name,
        faults_by_machine={"m3": (swim_member_crash_fault("m3"),)},
        experiments=experiments,
        seed=seed,
    )


def _build_swim_partition(
    name: str = "swim-partition", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Split the group with no crash faults at all: pure false positives.

    While ``hosta`` (members ``m1`` and ``m4``) is cut off from the other
    two hosts, pings and ping-reqs across the cut die, suspicions mature
    into confirm verdicts, and every one of them is wrong — nothing ever
    crashed.  The ``confirm-events`` count is the false-detection rate as
    a function of the partition length.
    """
    schedule = (
        ScheduledNetworkFault(
            at=0.10,
            spec=NetworkFaultSpec(
                kind=NetworkFaultKind.PARTITION,
                groups=(("hosta",), ("hostb", "hostc")),
            ),
            name="swim-split",
        ),
        ScheduledNetworkFault(
            at=0.25,
            spec=NetworkFaultSpec(kind=NetworkFaultKind.HEAL),
            name="swim-heal",
        ),
    )
    return build_swim_study(
        name=name,
        faults_by_machine={},
        network=NetworkConfig(schedule=schedule),
        experiments=experiments,
        seed=seed,
    )


def _build_dfs(
    name: str = "dfs-master", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """Crash datanode ``d1`` exactly inside the master's audit window.

    Placed after several commits, the crash leaves committed chunks
    under-replicated; the master's heartbeat-silence detector marks the
    node dead and re-replicates its chunks from surviving replicas
    (``@dfs-rereplicate`` notes in the timelines).
    """
    return build_dfs_study(
        name=name,
        faults_by_machine={"d1": (dfs_correlated_datanode_fault("d1"),)},
        experiments=experiments,
        seed=seed,
    )


def _build_dfs_uncorrelated(
    name: str = "dfs-master-uncorrelated", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    return build_dfs_study(
        name=name,
        faults_by_machine={"d2": (dfs_datanode_crash_fault("d2"),)},
        experiments=experiments,
        seed=seed,
    )


def _build_dfs_partition(
    name: str = "dfs-master-partition", experiments: int = 4, seed: int = 0
) -> StudyConfig:
    """A short split leaves ``d1`` stale but still placed.

    The partition (50 ms) is shorter than the master's dead timeout
    (70 ms), so ``d1`` is never declared dead and keeps its placements —
    but it misses the versioned chunk updates made while it was cut off.
    After the heal its heartbeat digests advertise the stale versions and
    the audit drives the master into ``DIVERGED`` until its repair stores
    land; the ``replica-divergence`` measure is that repair time.
    """
    schedule = (
        ScheduledNetworkFault(
            at=0.10,
            spec=NetworkFaultSpec(
                kind=NetworkFaultKind.PARTITION,
                groups=(("hostb",), ("hosta", "hostc")),
                duration=0.05,
            ),
            name="dfs-split",
        ),
    )
    return build_dfs_study(
        name=name,
        faults_by_machine={},
        network=NetworkConfig(schedule=schedule),
        experiments=experiments,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# The default registry
# ---------------------------------------------------------------------------

def build_default_registry() -> ScenarioRegistry:
    """A fresh registry holding the library's built-in scenarios."""
    return ScenarioRegistry(
        [
            Scenario(
                name="toggle",
                description="two-node ACTIVE/IDLE driver with a record-only fault "
                "(Figures 3.2/3.3)",
                builder=_build_toggle,
                measure_factory=_toggle_measure,
                tags=("paper",),
            ),
            Scenario(
                name="leader-election",
                description="leader election with a leader-crash fault and "
                "probabilistic restart (Chapter 5 coverage)",
                builder=_build_election,
                measure_factory=_election_coverage_measure,
                tags=("paper", "restart"),
            ),
            Scenario(
                name="primary-backup",
                description="primary-backup replication; crash the primary while "
                "a backup synchronizes",
                builder=_build_replication,
                measure_factory=_replication_failover_measure,
                tags=("correlated",),
            ),
            Scenario(
                name="two-phase-commit",
                description="atomic commitment; crash the coordinator inside a "
                "participant's in-doubt window",
                builder=_build_twophase,
                measure_factory=_twophase_commit_measure,
                tags=("correlated",),
            ),
            Scenario(
                name="two-phase-commit-uncorrelated",
                description="atomic commitment; crash a participant after it "
                "votes, independent of the coordinator",
                builder=_build_twophase_uncorrelated,
                measure_factory=_twophase_commit_measure,
                tags=("uncorrelated",),
            ),
            Scenario(
                name="token-ring",
                description="token-ring mutual exclusion; holder crash plus a "
                "correlated second-holder crash",
                builder=_build_tokenring,
                measure_factory=_tokenring_holding_measure,
                tags=("correlated",),
            ),
            Scenario(
                name="token-ring-uncorrelated",
                description="token-ring mutual exclusion; token loss and an "
                "independent holder crash",
                builder=_build_tokenring_uncorrelated,
                measure_factory=_tokenring_holding_measure,
                tags=("uncorrelated",),
            ),
            Scenario(
                name="two-phase-commit-partition",
                description="atomic commitment; isolate the coordinator's host "
                "inside the in-doubt window, then auto-heal",
                builder=_build_twophase_partition,
                measure_factory=_twophase_commit_measure,
                tags=("network", "partition", "correlated"),
            ),
            Scenario(
                name="token-ring-partition-heal",
                description="token-ring mutual exclusion; scheduled partition "
                "and heal racing the token regeneration rule",
                builder=_build_tokenring_partition_heal,
                measure_factory=_tokenring_holding_measure,
                tags=("network", "partition", "scheduled"),
            ),
            Scenario(
                name="leader-election-asym-link",
                description="leader election; one-way link outage starves a "
                "follower of heartbeats (split brain)",
                builder=_build_election_asymmetric_link,
                measure_factory=_election_reelection_measure,
                tags=("network", "asymmetric"),
            ),
            Scenario(
                name="raft-election",
                description="Raft-style election + log replication; crash the "
                "leader, then a candidate mid-re-election",
                builder=_build_raft,
                measure_factory=_raft_dual_leadership_measure,
                tags=("protocol", "correlated"),
            ),
            Scenario(
                name="raft-election-uncorrelated",
                description="Raft-style election + log replication; crash a "
                "follower independent of the election",
                builder=_build_raft_uncorrelated,
                measure_factory=_raft_dual_leadership_measure,
                tags=("protocol", "uncorrelated"),
            ),
            Scenario(
                name="raft-election-partition",
                description="Raft-style election; isolate the leader's host "
                "the moment it leads (cross-term dual leadership)",
                builder=_build_raft_partition,
                measure_factory=_raft_dual_leadership_measure,
                tags=("protocol", "network", "partition"),
            ),
            Scenario(
                name="quorum-register",
                description="quorum read/write register with read-repair; "
                "crash a replica inside the client's write window",
                builder=_build_quorum,
                measure_factory=_quorum_stale_read_measure,
                tags=("protocol", "correlated"),
            ),
            Scenario(
                name="quorum-register-uncorrelated",
                description="quorum read/write register; crash a serving "
                "replica independent of the client",
                builder=_build_quorum_uncorrelated,
                measure_factory=_quorum_stale_read_measure,
                tags=("protocol", "uncorrelated"),
            ),
            Scenario(
                name="quorum-register-partition",
                description="quorum read/write register; cut a replica's host "
                "off mid-write, then auto-heal and read-repair",
                builder=_build_quorum_partition,
                measure_factory=_quorum_stale_read_measure,
                tags=("protocol", "network", "partition"),
            ),
            Scenario(
                name="swim-detector",
                description="SWIM gossip failure detector; crash a member, "
                "then its detector mid-suspicion",
                builder=_build_swim,
                measure_factory=_swim_confirm_measure,
                tags=("protocol", "correlated"),
            ),
            Scenario(
                name="swim-detector-uncorrelated",
                description="SWIM gossip failure detector; one uncorrelated "
                "member crash",
                builder=_build_swim_uncorrelated,
                measure_factory=_swim_confirm_measure,
                tags=("protocol", "uncorrelated"),
            ),
            Scenario(
                name="swim-partition",
                description="SWIM gossip failure detector; scheduled partition "
                "and heal with no crashes — every confirm is a false positive",
                builder=_build_swim_partition,
                measure_factory=_swim_confirm_measure,
                tags=("protocol", "network", "partition", "scheduled"),
            ),
            Scenario(
                name="dfs-master",
                description="DFS master/replica placement; crash a datanode "
                "inside the audit window, forcing re-replication",
                builder=_build_dfs,
                measure_factory=_dfs_divergence_measure,
                tags=("protocol", "correlated"),
            ),
            Scenario(
                name="dfs-master-uncorrelated",
                description="DFS master/replica placement; one uncorrelated "
                "datanode crash",
                builder=_build_dfs_uncorrelated,
                measure_factory=_dfs_divergence_measure,
                tags=("protocol", "uncorrelated"),
            ),
            Scenario(
                name="dfs-master-partition",
                description="DFS master/replica placement; a short split "
                "leaves a replica stale and the audit flags the divergence",
                builder=_build_dfs_partition,
                measure_factory=_dfs_divergence_measure,
                tags=("protocol", "network", "partition", "scheduled"),
            ),
        ]
    )


#: The registry enumerated by the examples, benchmarks, and smoke tests.
DEFAULT_REGISTRY = build_default_registry()


def default_registry() -> ScenarioRegistry:
    """The process-wide default scenario registry."""
    return DEFAULT_REGISTRY


if __name__ == "__main__":  # pragma: no cover — developer convenience
    from pathlib import Path

    _readme = Path(__file__).resolve().parents[3] / "README.md"
    if DEFAULT_REGISTRY.sync_markdown_table(_readme):
        print(f"{_readme}: scenario table already in sync")
    else:
        print(f"{_readme}: scenario table regenerated")
