"""The scenario registry: every workload as a first-class, buildable entry.

A *scenario* packages one parameterized workload — a
:class:`~repro.core.campaign.StudyConfig` builder plus the study measure
that makes its results comparable — under a stable name.  The
:class:`ScenarioRegistry` maps names to scenarios so the execution engine,
the experiment harnesses, the examples, and the benchmarks can enumerate
every workload instead of hard-coding applications; it is the seam any
future workload plugs into.

Metadata (the fault specifications and measure names shown in the README
scenario table) is derived from the built studies themselves, so it can
never drift from what actually runs.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.core.campaign import CampaignConfig, StudyConfig
from repro.errors import SpecificationError, UnknownScenarioError
from repro.measures.study import StudyMeasure

#: Signature of a scenario's study builder: every builder accepts the study
#: name, the experiment count, and the master seed as keyword arguments.
StudyBuilder = Callable[..., StudyConfig]


@dataclass(frozen=True)
class Scenario:
    """One registered workload.

    Attributes
    ----------
    name:
        The registry key (also the default study name).
    description:
        One line describing the application and the injected faults.
    builder:
        Callable building the scenario's :class:`StudyConfig`; must accept
        ``name``, ``experiments``, and ``seed`` keyword arguments.
    measure_factory:
        Builds the scenario's headline :class:`StudyMeasure` (``None`` for
        scenarios whose observable is the injection record itself).
    tags:
        Free-form labels (``"correlated"``, ``"paper"``, ...).
    """

    name: str
    description: str
    builder: StudyBuilder
    measure_factory: Callable[[], StudyMeasure] | None = None
    tags: tuple[str, ...] = ()

    def build(
        self,
        experiments: int | None = None,
        seed: int | None = None,
        name: str | None = None,
    ) -> StudyConfig:
        """Build the scenario's study, overriding count/seed/name if given."""
        kwargs: dict = {"name": name or self.name}
        if experiments is not None:
            kwargs["experiments"] = experiments
        if seed is not None:
            kwargs["seed"] = seed
        return self.builder(**kwargs)

    def fingerprint(
        self,
        experiments: int | None = None,
        seed: int | None = None,
        name: str | None = None,
    ) -> str:
        """Stable configuration fingerprint of the study this scenario builds.

        Delegates to :func:`repro.store.manifest.study_fingerprint`: a
        SHA-256 digest over the built study's canonical declarative
        description (hosts, clocks, node definitions, fault specifications,
        runtime design, timeouts).  The campaign store uses this digest to
        decide whether archived records may be resumed, so two registry
        builds with identical parameters fingerprint identically across
        processes and sessions.
        """
        from repro.store.manifest import study_fingerprint

        return study_fingerprint(self.build(experiments=experiments, seed=seed, name=name))

    def fault_lines(self) -> tuple[str, ...]:
        """The scenario's fault lines, derived from a built study.

        Covers both the per-machine fault specifications (state-triggered
        faults, including network faults) and the study's scheduled
        network-fault timeline, so the README scenario table shows the
        complete fault surface.
        """
        study = self.build(experiments=1)
        specifications = study.fault_specifications()
        lines: list[str] = []
        for nickname in sorted(specifications):
            lines.extend(specifications[nickname].describe())
        lines.extend(study.network.describe())
        return tuple(lines)

    def measure_names(self) -> tuple[str, ...]:
        """Names of the scenario's study measures (may be empty)."""
        if self.measure_factory is None:
            return ()
        return (self.measure_factory().name,)


class ScenarioRegistry:
    """A named collection of scenarios, preserving registration order."""

    def __init__(self, scenarios: tuple[Scenario, ...] | list[Scenario] = ()) -> None:
        self._scenarios: dict[str, Scenario] = {}
        for scenario in scenarios:
            self.register(scenario)

    # -- registration and lookup --------------------------------------------------

    def register(self, scenario: Scenario) -> Scenario:
        """Add a scenario; duplicate names are a specification error."""
        if scenario.name in self._scenarios:
            raise SpecificationError(
                f"scenario {scenario.name!r} is already registered"
            )
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look up a scenario by name.

        Unknown names raise :class:`~repro.errors.UnknownScenarioError`
        listing every registered scenario — never a bare ``KeyError`` —
        and, when the name is close to a registered one, leading with a
        "did you mean" suggestion so a typo is a one-glance fix.
        """
        try:
            return self._scenarios[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            close = difflib.get_close_matches(name, self.names(), n=3, cutoff=0.5)
            hint = ""
            if close:
                hint = " did you mean " + " or ".join(repr(match) for match in close) + "?"
            raise UnknownScenarioError(
                f"unknown scenario {name!r};{hint} known scenarios: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered scenario names, in registration order."""
        return tuple(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)

    def __contains__(self, name: object) -> bool:
        return name in self._scenarios

    # -- building workloads ----------------------------------------------------------

    def build(
        self,
        name: str,
        experiments: int | None = None,
        seed: int | None = None,
        study_name: str | None = None,
    ) -> StudyConfig:
        """Build one scenario's study by name."""
        return self.get(name).build(experiments=experiments, seed=seed, name=study_name)

    def build_campaign(
        self,
        names: tuple[str, ...] | list[str] | None = None,
        experiments: int | None = None,
        seed: int | None = None,
        campaign_name: str = "scenarios",
    ) -> CampaignConfig:
        """Build a campaign containing one study per selected scenario.

        ``names=None`` selects every registered scenario.  When ``seed`` is
        given, each scenario receives ``seed + position`` so the studies
        stay decorrelated while the whole campaign is reproducible from a
        single number.
        """
        selected = tuple(names) if names is not None else self.names()
        studies = [
            self.build(
                name,
                experiments=experiments,
                seed=None if seed is None else seed + offset,
            )
            for offset, name in enumerate(selected)
        ]
        return CampaignConfig(name=campaign_name, studies=studies)

    # -- metadata -----------------------------------------------------------------------

    def markdown_table(self) -> str:
        """The README scenario table, generated from the registry's metadata.

        Columns: scenario name, fault-specification lines of the built
        study, and the scenario's study-measure names.  Pipe characters in
        fault expressions are escaped so the table stays valid markdown.
        """

        def escape(text: str) -> str:
            return text.replace("|", "\\|")

        lines = [
            "| scenario | faults injected | measures |",
            "| --- | --- | --- |",
        ]
        for scenario in self:
            faults = "<br>".join(escape(line) for line in scenario.fault_lines()) or "—"
            measures = ", ".join(scenario.measure_names()) or "—"
            lines.append(f"| `{scenario.name}` | {faults} | {measures} |")
        return "\n".join(lines)

    def sync_markdown_table(
        self,
        path: str | Path,
        begin: str = "<!-- scenario-table:begin -->",
        end: str = "<!-- scenario-table:end -->",
        write: bool = True,
    ) -> bool:
        """Regenerate the scenario table between markers in a markdown file.

        Returns ``True`` when the embedded table already matched the
        registry (nothing to do).  With ``write=True`` (the default) a
        stale table is rewritten in place; with ``write=False`` the file
        is left untouched, so tests can use the return value as a pure
        drift check.  Missing markers are a specification error — the
        table must have a designated home before it can be synced.
        """
        target = Path(path)
        text = target.read_text(encoding="utf-8")
        if begin not in text or end not in text:
            raise SpecificationError(
                f"{target} has no {begin!r}/{end!r} markers to sync the scenario table into"
            )
        head, _, rest = text.partition(begin)
        embedded, _, tail = rest.partition(end)
        table = self.markdown_table()
        if embedded.strip() == table:
            return True
        if write:
            target.write_text(
                f"{head}{begin}\n{table}\n{end}{tail}", encoding="utf-8"
            )
        return False
