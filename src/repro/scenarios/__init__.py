"""Scenario registry: named, parameterized workloads over the example apps.

:class:`ScenarioRegistry` maps scenario names to :class:`Scenario` entries,
each wrapping a parameterized :class:`~repro.core.campaign.StudyConfig`
builder plus the study measure that makes its results comparable.
:data:`DEFAULT_REGISTRY` (also via :func:`default_registry`) holds the
built-in catalog: the three paper applications plus the two-phase-commit
and token-ring workloads in correlated and uncorrelated fault variants.
"""

from repro.scenarios.catalog import (
    DEFAULT_REGISTRY,
    build_default_registry,
    default_registry,
)
from repro.scenarios.registry import Scenario, ScenarioRegistry, StudyBuilder

__all__ = [
    "DEFAULT_REGISTRY",
    "Scenario",
    "ScenarioRegistry",
    "StudyBuilder",
    "build_default_registry",
    "default_registry",
]
