"""The on-disk campaign store: append-only records, run once / analyze many.

A :class:`CampaignStore` owns one campaign directory::

    <path>/
        manifest.json          # campaign name, git SHA, per-study fingerprints
        records/
            <study-slug>.jsonl # one self-checksummed record per experiment

and gives the evaluation pipeline the durability the paper's decoupled
offline analysis implies: the runtime phase is executed once, every
completed experiment is streamed to disk as it finishes, and the analysis
and measure phases can then be re-run any number of times — with different
measures, time policies, or estimator changes — without ever touching the
simulator again.

Three workflows hang off the class:

* **Recording.**  ``run_and_analyze(campaign, store=CampaignStore(path))``
  attaches the store to the execution engine; the engine streams each
  completed experiment's payload into :meth:`append` as it finishes (on the
  serial and process-pool backends alike) instead of accumulating raw
  payloads in memory.
* **Resuming.**  On attach, experiments whose records already exist with
  matching configuration fingerprint and per-experiment seed are loaded
  from disk and *skipped* by the runtime phase; only the missing ones run.
  Because record round trips are bit-exact and analysis is a pure function
  of the payload, a resumed campaign's measures are bit-identical to an
  uninterrupted run's.
* **Re-analysis.**  :meth:`load_results` / :meth:`load_analysis` rebuild
  campaign results straight from disk — zero simulator invocations — so
  measure-phase iteration costs seconds, not campaign-hours.

Records are append-only; a re-run experiment appends a new record and the
reader keeps the *last valid* record per experiment index.  Lines that fail
their checksum (torn writes from a killed campaign) are treated as absent.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Mapping

from repro.core.campaign import CampaignConfig, ExperimentResult
from repro.errors import StoreError, StoreIntegrityError
from repro.store.columnar import MAGIC_LINE, encode_block, scan_blocks
from repro.store.format import decode_record, encode_record
from repro.store.manifest import Manifest, expected_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.campaign import CampaignResult, StudyConfig
    from repro.pipeline import CampaignAnalysis

_SLUG_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _study_slug(name: str) -> str:
    """A filesystem-safe, collision-free file stem for a study name."""
    cleaned = _SLUG_SAFE.sub("-", name).strip("-") or "study"
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
    return f"{cleaned}-{digest}"


@dataclass(frozen=True)
class StoredStudyConfig:
    """Stand-in study configuration for results loaded without the original.

    A campaign directory does not archive application factories (they are
    arbitrary Python callables), so a study loaded purely from disk cannot
    re-run the simulator — and this stub enforces that: it carries exactly
    what the analysis and measure phases consume (name, seed, declared
    experiment count, per-machine fault specifications, weight) and nothing
    the runtime phase would need.
    """

    name: str
    seed: int
    experiments: int
    weight: float = 1.0
    faults_by_machine: Mapping[str, object] = field(default_factory=dict)

    def fault_specifications(self) -> dict[str, object]:
        """Fault specification per state machine, as recorded in the timelines."""
        return dict(self.faults_by_machine)


@dataclass
class StoreReport:
    """Outcome of scanning one study's record file (see ``verify``)."""

    study: str
    valid: int = 0
    corrupt: int = 0
    superseded: int = 0


class CampaignStore:
    """Append-only on-disk store for one campaign's experiment records.

    Parameters
    ----------
    path:
        The campaign directory.  Created (with parents) on first write.
    fsync:
        When true, every appended record is fsync'd before :meth:`append`
        returns.  Defaults to false: the record checksums already make torn
        writes detectable, and the resume machinery re-runs anything that
        did not land, so durability-vs-throughput is the caller's choice.
    codec:
        The codec new records are written with: ``"jsonl"`` (the default —
        one self-checksummed JSON line per experiment) or ``"columnar"``
        (numpy structured-array blocks, see :mod:`repro.store.columnar`).
        Reading is always transparent across codecs: both files are
        merged, so a campaign recorded as JSONL can be resumed and grown
        columnar (where both hold a record for the same index, the
        columnar one wins — codec migration is one-way by design).
    """

    CODECS = ("jsonl", "columnar")

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: bool = False,
        codec: str = "jsonl",
    ) -> None:
        if codec not in self.CODECS:
            raise StoreError(
                f"unknown store codec {codec!r} (supported: {', '.join(self.CODECS)})"
            )
        self._path = Path(path)
        self._fsync = fsync
        self._codec = codec
        # Persistent columnar writers, one per study file: the torn-tail
        # scan happens once at open, not per append, which is what makes
        # streaming millions of records affordable.
        self._writers: dict[Path, BinaryIO] = {}

    # -- layout ------------------------------------------------------------------------

    @property
    def path(self) -> Path:
        """The campaign directory this store owns."""
        return self._path

    @property
    def manifest_path(self) -> Path:
        """Location of ``manifest.json``."""
        return self._path / "manifest.json"

    @property
    def codec(self) -> str:
        """The codec this store writes new records with."""
        return self._codec

    def records_path(self, study_name: str) -> Path:
        """Location of one study's JSONL record file."""
        return self._path / "records" / f"{_study_slug(study_name)}.jsonl"

    def columnar_path(self, study_name: str) -> Path:
        """Location of one study's columnar record file."""
        return self._path / "records" / f"{_study_slug(study_name)}.columnar"

    def exists(self) -> bool:
        """Whether the directory already holds a campaign manifest."""
        return self.manifest_path.is_file()

    # -- manifest ----------------------------------------------------------------------

    def read_manifest(self) -> Manifest:
        """Load the campaign manifest; error if the store is uninitialized."""
        try:
            data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"{self._path} holds no campaign manifest; "
                "attach a campaign (or record into it) first"
            ) from None
        except ValueError as error:
            raise StoreIntegrityError(
                f"{self.manifest_path} is not valid JSON: {error}"
            ) from None
        return Manifest.from_dict(data)

    def _write_manifest(self, manifest: Manifest) -> None:
        self._path.mkdir(parents=True, exist_ok=True)
        (self._path / "records").mkdir(exist_ok=True)
        text = json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n"
        # Write-then-rename so a crash never leaves a half-written manifest.
        temporary = self.manifest_path.with_suffix(".json.tmp")
        temporary.write_text(text, encoding="utf-8")
        os.replace(temporary, self.manifest_path)

    def attach(self, campaign: CampaignConfig) -> Manifest:
        """Bind the store to ``campaign``, creating or validating the manifest.

        A fresh directory gets a new manifest.  An existing one is checked
        for compatibility — same campaign name, same per-study
        configuration fingerprints (:class:`~repro.errors.StoreIntegrityError`
        otherwise) — and extended with entries for studies the campaign
        gained since the store was created.
        """
        if self.exists():
            manifest = self.read_manifest()
            manifest.check_compatible(campaign)
            manifest = manifest.merged_with(campaign)
        else:
            manifest = Manifest.of(campaign)
        manifest.codec = self._codec
        self._write_manifest(manifest)
        return manifest

    # -- writing -----------------------------------------------------------------------

    def append(self, result: ExperimentResult) -> None:
        """Append one completed experiment's record via the store's codec.

        Either codec writes whole self-checksummed records, so concurrent
        readers always see a prefix of valid records and a killed writer
        leaves at most one torn (checksum-failing, hence ignored) tail.
        """
        if not result.local_timelines and not result.sync_messages:
            raise StoreError(
                f"experiment {result.study}:{result.index} carries no raw payload "
                "(was it slimmed before reaching the store?)"
            )
        if self._codec == "columnar":
            self._append_columnar(result)
            return
        path = self.records_path(result.study)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = encode_record(result) + "\n"
        with open(path, "a+b") as handle:
            # A torn previous write (killed campaign) can leave the file
            # without a trailing newline; writing straight after it would
            # corrupt this record too.  Heal the boundary first.
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8"))
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())

    def _append_columnar(self, result: ExperimentResult) -> None:
        path = self.columnar_path(result.study)
        writer = self._writers.get(path)
        if writer is None:
            writer = self._open_columnar_writer(path)
            self._writers[path] = writer
        writer.write(encode_block(result))
        writer.flush()
        if self._fsync:
            os.fsync(writer.fileno())

    def _open_columnar_writer(self, path: Path) -> BinaryIO:
        """Open a persistent append handle, healing any torn trailing block.

        The file is scanned once: a torn tail (killed writer) is truncated
        back to the end of the valid prefix so the next block starts on a
        clean frame.  A file that is not a columnar store at all raises
        instead of being truncated.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "a+b")
        try:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                handle.write(MAGIC_LINE)
                handle.flush()
            else:
                handle.seek(0)
                scan = scan_blocks(handle.read())
                handle.truncate(scan.valid_end)
                handle.seek(0, os.SEEK_END)
        except BaseException:
            handle.close()
            raise
        return handle

    def flush(self) -> None:
        """Flush every persistent writer (records become readable/durable)."""
        for writer in self._writers.values():
            writer.flush()
            if self._fsync:
                os.fsync(writer.fileno())

    def close(self) -> None:
        """Close every persistent writer; appends after this reopen them."""
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading -----------------------------------------------------------------------

    def load_study_records(
        self,
        study_name: str,
        expected: Mapping[int, int] | None = None,
    ) -> dict[int, ExperimentResult]:
        """All valid records of one study, keyed by experiment index.

        Reads are codec-transparent: the study's JSONL file and its
        columnar file are both consulted, whatever codec the store writes
        with.  Later records supersede earlier ones for the same index
        within each file (both are append-only), and a columnar record
        supersedes a JSONL record for the same index — codec migration is
        jsonl→columnar one-way, so the columnar file is always the newer
        writer.  Corrupt lines/blocks are skipped — they are what a
        killed campaign leaves behind and are simply re-run on resume.
        When ``expected`` maps indices to seeds, records whose seed does
        not match are dropped as well: they were produced by a different
        derivation and must not be resumed into this campaign.
        """
        records: dict[int, ExperimentResult] = {}

        def admit(result: ExperimentResult) -> None:
            if result.study != study_name:
                return
            if expected is not None and expected.get(result.index) != result.seed:
                return
            records[result.index] = result

        path = self.records_path(study_name)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            lines = []
        for line in lines:
            if not line.strip():
                continue
            try:
                result = decode_record(line)
            except StoreIntegrityError:
                continue
            admit(result)
        columnar = self.columnar_path(study_name)
        if columnar.is_file():
            for result in scan_blocks(columnar.read_bytes()).results:
                admit(result)
        return records

    def content_fingerprint(self) -> str:
        """A stable digest of every experiment the store holds.

        The SHA-256 of the canonical JSON of ``{study: {index: payload}}``
        over all valid records, after per-index supersede resolution —
        independent of codec, record order, append history, and duplicated
        deliveries.  Two stores fingerprint identically exactly when they
        hold bit-identical experiment payloads, which is what the chaos
        harness asserts: a campaign that survived worker crashes, shard
        reassignment, and duplicate completions must fingerprint the same
        as one that ran serially.
        """
        from repro.store.format import result_to_dict

        manifest = self.read_manifest()
        content: dict[str, dict[str, object]] = {}
        for name in sorted(manifest.studies):
            records = self.load_study_records(name)
            content[name] = {
                str(index): result_to_dict(records[index])
                for index in sorted(records)
            }
        canonical = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def verify(self) -> dict[str, StoreReport]:
        """Scan every record file and report valid/corrupt/superseded counts.

        Covers both codecs' files: every JSONL line and every columnar
        block of a study count toward the same report.
        """
        manifest = self.read_manifest()
        reports: dict[str, StoreReport] = {}
        for name in manifest.studies:
            report = StoreReport(study=name)
            path = self.records_path(name)
            seen: dict[int, int] = {}
            if path.is_file():
                for line in path.read_text(encoding="utf-8").splitlines():
                    if not line.strip():
                        continue
                    try:
                        result = decode_record(line)
                    except StoreIntegrityError:
                        report.corrupt += 1
                        continue
                    report.valid += 1
                    seen[result.index] = seen.get(result.index, 0) + 1
            columnar = self.columnar_path(name)
            if columnar.is_file():
                scan = scan_blocks(columnar.read_bytes())
                report.valid += scan.valid
                report.corrupt += scan.corrupt
                for result in scan.results:
                    seen[result.index] = seen.get(result.index, 0) + 1
            report.superseded = sum(count - 1 for count in seen.values())
            reports[name] = report
        return reports

    # -- run once, analyze many --------------------------------------------------------

    def load_results(self, campaign: CampaignConfig | None = None) -> "CampaignResult":
        """Rebuild a :class:`~repro.core.campaign.CampaignResult` from disk.

        With ``campaign`` given, its configurations are validated against
        the manifest and used in the result (so downstream code sees the
        real :class:`StudyConfig` objects).  Without it, each study gets a
        :class:`StoredStudyConfig` stub reconstructed from the manifest and
        the recorded timelines — sufficient for the analysis and measure
        phases, incapable of re-running the simulator by construction.

        Either way the simulator is never invoked: everything comes off
        disk, ordered by experiment index.
        """
        from repro.core.campaign import CampaignResult, StudyResult

        manifest = self.read_manifest()
        if campaign is not None:
            manifest.check_compatible(campaign)
            result = CampaignResult(config=campaign)
            for study in campaign.studies:
                records = self.load_study_records(study.name, expected_seeds(study))
                result.studies[study.name] = StudyResult(
                    config=study,
                    experiments=[records[index] for index in sorted(records)],
                )
            return result

        # No campaign configuration: reconstruct stub configs from the
        # manifest and the fault specifications the recorded timelines carry.
        # CampaignConfig is bypassed via __new__ because its validation is
        # meaningless for stubs that exist only to name the loaded studies.
        stub_campaign = CampaignConfig.__new__(CampaignConfig)
        stub_campaign.name = manifest.campaign
        stub_campaign.studies = []
        stub_campaign.execution = None  # type: ignore[assignment]
        result = CampaignResult(config=stub_campaign)
        for name, entry in manifest.studies.items():
            records = self.load_study_records(name)
            faults_by_machine: dict[str, object] = {}
            for record in records.values():
                for machine, timeline in record.local_timelines.items():
                    faults_by_machine.setdefault(machine, timeline.faults)
            stub = StoredStudyConfig(
                name=name,
                seed=entry.seed,
                experiments=entry.experiments,
                faults_by_machine=faults_by_machine,
            )
            stub_campaign.studies.append(stub)  # type: ignore[arg-type]
            result.studies[name] = StudyResult(
                config=stub,  # type: ignore[arg-type]
                experiments=[records[index] for index in sorted(records)],
            )
        return result

    def load_analysis(self, campaign: CampaignConfig | None = None) -> "CampaignAnalysis":
        """Run the analysis phase over the stored records — zero simulation.

        This is the post-hoc re-analysis entry point: iterate on measures,
        time policies, or verification logic against an archived campaign
        without paying any simulation cost.  Returns the same
        :class:`~repro.pipeline.CampaignAnalysis` the live pipeline would.
        """
        from repro.pipeline import analyze_campaign

        return analyze_campaign(self.load_results(campaign))

    # -- resume support (used by the execution engine) ---------------------------------

    def resumable_records(
        self, study: "StudyConfig"
    ) -> dict[int, ExperimentResult]:
        """Stored experiments of ``study`` that a resumed run may reuse.

        Only records whose seed matches the engine's seed-derivation
        contract for their index qualify; the study's fingerprint is
        checked separately at :meth:`attach` time.
        """
        return self.load_study_records(study.name, expected_seeds(study))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({str(self._path)!r})"
