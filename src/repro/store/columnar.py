"""Columnar record codec of the campaign store: structured arrays per block.

The JSONL codec (:mod:`repro.store.format`) spends most of its bytes — and
most of its encode/decode time — on the timeline record table, which
dominates every experiment payload at campaign scale.  The columnar codec
keeps the exact same record semantics (one self-checksummed block per
experiment, later blocks supersede earlier ones, torn trailing writes are
detected and treated as never-written) but stores the two bulk tables as
numpy structured arrays in raw little-endian bytes:

* the **record table** — ``(kind, time, host, event, state, fault)`` per
  timeline record, with the string columns indexed into a per-block pool;
* the **sync table** — ``(sender, receiver, send_time, receive_time)`` per
  synchronization message.

Everything else (study, seed, clock parameters, stats, the string pool,
per-timeline metadata) travels in a canonical JSON *meta line*, encoded by
the very same :func:`~repro.store.format.result_to_dict` mapping the JSONL
codec uses, so the two codecs are bit-exact against each other by
construction: floats in the tables are raw IEEE-754 doubles, floats in the
meta line round-trip through ``repr`` exactly as in JSONL.

On-disk layout of ``records/<slug>.columnar``::

    #repro-columnar-store 1\n                        # magic line
    {"engine":…,"format":…,"length":…,"sha256":…}\n  # block header (JSON)
    <length bytes of payload>\n                      # meta line + raw arrays
    {…next block header…}\n
    …

Each block's ``sha256`` covers its payload bytes, so a torn trailing block
(killed campaign) fails verification and is ignored; :func:`scan_blocks`
also reports where the valid prefix ends so a writer can heal the tail by
truncating before appending.  Unlike JSONL there is no per-line framing to
resynchronize on, so a corrupt block in the *middle* of a file ends the
valid prefix — every block after it is reported corrupt.

The default engine serializes with numpy (a hard dependency of the
simulator).  The ``arrow`` engine — pyarrow IPC framing of the same
columns — is available behind a feature probe for interchange with Arrow
and Parquet tooling; requesting it without pyarrow installed raises a
:class:`~repro.errors.StoreError` naming the missing dependency.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.campaign import ExperimentResult
from repro.errors import StoreError, StoreIntegrityError
from repro.store.format import result_from_dict, result_to_dict

try:  # numpy is a hard dependency of the simulator, but probe anyway
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None  # type: ignore[assignment]

try:  # pyarrow is optional: the arrow engine is a feature, not a requirement
    import pyarrow as _pa
    import pyarrow.ipc as _pa_ipc
except ImportError:
    _pa = None  # type: ignore[assignment]
    _pa_ipc = None  # type: ignore[assignment]

#: Version stamp embedded in every block header; bumped on any change that
#: an old reader could misinterpret.
COLUMNAR_FORMAT_VERSION = 1

#: Versions this reader can decode (kept in sync by lint rule R005).
READABLE_COLUMNAR_VERSIONS = frozenset({COLUMNAR_FORMAT_VERSION})

#: First line of every columnar store file.
MAGIC_LINE = b"#repro-columnar-store 1\n"

#: The record table: one row per timeline record, string columns as
#: indices into the block's pool (index 0 is always ``None``).  Explicit
#: little-endian field types keep the raw bytes portable.
RECORD_DTYPE_FIELDS = [
    ("kind", "<i8"),
    ("time", "<f8"),
    ("host", "<i4"),
    ("event", "<i4"),
    ("state", "<i4"),
    ("fault", "<i4"),
]

#: The sync-message table: one row per synchronization message.
SYNC_DTYPE_FIELDS = [
    ("sender", "<i4"),
    ("receiver", "<i4"),
    ("send_time", "<f8"),
    ("receive_time", "<f8"),
]


def available_engines() -> tuple[str, ...]:
    """The columnar serialization engines usable in this environment."""
    engines = []
    if _np is not None:
        engines.append("numpy")
    if _pa is not None:
        engines.append("arrow")
    return tuple(engines)


def _require_numpy() -> Any:
    if _np is None:  # pragma: no cover - numpy is a baked-in dependency
        raise StoreError(
            "the columnar store codec requires numpy; install it or use the "
            "'jsonl' codec"
        )
    return _np


def _require_arrow() -> Any:
    if _pa is None:
        raise StoreError(
            "the 'arrow' columnar engine requires pyarrow, which is not "
            f"installed (available engines: {', '.join(available_engines()) or 'none'}); "
            "install pyarrow or use the default 'numpy' engine"
        )
    return _pa


# ---------------------------------------------------------------------------
# Column extraction: payload dict -> meta dict + column lists
# ---------------------------------------------------------------------------


class _Pool:
    """A per-block interning pool for the tables' string columns.

    Index 0 is always ``None`` so absent values need no sentinel encoding;
    every other entry is a string appended on first use.
    """

    def __init__(self) -> None:
        self.values: list[str | None] = [None]
        self._index: dict[str | None, int] = {None: 0}

    def index(self, value: str | None) -> int:
        found = self._index.get(value)
        if found is None:
            found = len(self.values)
            self.values.append(value)
            self._index[value] = found
        return found


def _split_payload(payload: dict[str, Any]) -> tuple[dict[str, Any], dict[str, list], _Pool]:
    """Split a :func:`result_to_dict` payload into meta + column lists.

    The returned meta dict is the payload with the two bulk tables
    replaced by row counts; the columns dict holds one flat Python list
    per table column, record rows concatenated across timelines in
    *sorted* machine order — the same order the canonical (sort-keys)
    meta line serializes the timelines in, so :func:`_join_payload` can
    slice the concatenation back apart without storing offsets.
    """
    pool = _Pool()
    meta = dict(payload)
    columns: dict[str, list] = {name: [] for name, _ in RECORD_DTYPE_FIELDS}
    for name, _ in SYNC_DTYPE_FIELDS:
        columns[f"sync_{name}"] = []

    timelines_meta: dict[str, Any] = {}
    for machine in sorted(payload["local_timelines"]):
        timeline = payload["local_timelines"][machine]
        rows = timeline["records"]
        slim = {key: value for key, value in timeline.items() if key != "records"}
        slim["record_count"] = len(rows)
        timelines_meta[machine] = slim
        for kind, time, host, event, state, fault in rows:
            columns["kind"].append(kind)
            columns["time"].append(time)
            columns["host"].append(pool.index(host))
            columns["event"].append(pool.index(event))
            columns["state"].append(pool.index(state))
            columns["fault"].append(pool.index(fault))
    meta["local_timelines"] = timelines_meta

    for sender, receiver, send_time, receive_time in payload["sync_messages"]:
        columns["sync_sender"].append(pool.index(sender))
        columns["sync_receiver"].append(pool.index(receiver))
        columns["sync_send_time"].append(send_time)
        columns["sync_receive_time"].append(receive_time)
    meta["sync_messages"] = len(payload["sync_messages"])
    meta["pool"] = pool.values
    return meta, columns, pool


def _join_payload(meta: dict[str, Any], columns: dict[str, list]) -> dict[str, Any]:
    """Inverse of :func:`_split_payload`: rebuild the full payload dict."""
    pool = meta["pool"]
    payload = {key: value for key, value in meta.items() if key != "pool"}
    timelines: dict[str, Any] = {}
    cursor = 0
    # Sorted explicitly rather than trusting the meta line's key order:
    # the concatenation order is part of the format, not of the JSON.
    for machine in sorted(meta["local_timelines"]):
        slim = meta["local_timelines"][machine]
        count = slim["record_count"]
        timeline = {key: value for key, value in slim.items() if key != "record_count"}
        stop = cursor + count
        timeline["records"] = [
            [kind, time, pool[host], pool[event], pool[state], pool[fault]]
            for kind, time, host, event, state, fault in zip(
                columns["kind"][cursor:stop],
                columns["time"][cursor:stop],
                columns["host"][cursor:stop],
                columns["event"][cursor:stop],
                columns["state"][cursor:stop],
                columns["fault"][cursor:stop],
            )
        ]
        timelines[machine] = timeline
        cursor = stop
    payload["local_timelines"] = timelines
    payload["sync_messages"] = [
        [pool[sender], pool[receiver], send_time, receive_time]
        for sender, receiver, send_time, receive_time in zip(
            columns["sync_sender"],
            columns["sync_receiver"],
            columns["sync_send_time"],
            columns["sync_receive_time"],
        )
    ]
    return payload


# ---------------------------------------------------------------------------
# Engines: column lists <-> raw bytes
# ---------------------------------------------------------------------------


def _encode_numpy(meta: dict[str, Any], columns: dict[str, list]) -> bytes:
    np = _require_numpy()
    record_count = len(columns["kind"])
    sync_count = len(columns["sync_sender"])
    records = np.empty(record_count, dtype=np.dtype(RECORD_DTYPE_FIELDS))
    for name, _ in RECORD_DTYPE_FIELDS:
        records[name] = columns[name]
    sync = np.empty(sync_count, dtype=np.dtype(SYNC_DTYPE_FIELDS))
    for name, _ in SYNC_DTYPE_FIELDS:
        sync[name] = columns[f"sync_{name}"]
    meta_line = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    return b"\n".join([meta_line.encode("utf-8"), records.tobytes() + sync.tobytes()])


def _decode_numpy(payload: bytes) -> tuple[dict[str, Any], dict[str, list]]:
    np = _require_numpy()
    meta_line, _, body = payload.partition(b"\n")
    meta = json.loads(meta_line)
    record_count = sum(
        timeline["record_count"] for timeline in meta["local_timelines"].values()
    )
    sync_count = meta["sync_messages"]
    record_dtype = np.dtype(RECORD_DTYPE_FIELDS)
    sync_dtype = np.dtype(SYNC_DTYPE_FIELDS)
    split = record_count * record_dtype.itemsize
    expected = split + sync_count * sync_dtype.itemsize
    if len(body) != expected:
        raise StoreIntegrityError(
            f"columnar block body holds {len(body)} bytes where the meta "
            f"line promises {expected}"
        )
    records = np.frombuffer(body, dtype=record_dtype, count=record_count)
    sync = np.frombuffer(body[split:], dtype=sync_dtype, count=sync_count)
    # .tolist() materializes native Python ints/floats in one C pass — the
    # vectorized half of the decode; the Python half is payload rebuild.
    columns: dict[str, list] = {
        name: records[name].tolist() for name, _ in RECORD_DTYPE_FIELDS
    }
    for name, _ in SYNC_DTYPE_FIELDS:
        columns[f"sync_{name}"] = sync[name].tolist()
    return meta, columns


def _encode_arrow(meta: dict[str, Any], columns: dict[str, list]) -> bytes:
    pa = _require_arrow()
    arrays = [
        pa.array(columns[name], type=pa.int64() if name == "kind" else None)
        for name, _ in RECORD_DTYPE_FIELDS
    ]
    arrays += [pa.array(columns[f"sync_{name}"]) for name, _ in SYNC_DTYPE_FIELDS]
    names = [name for name, _ in RECORD_DTYPE_FIELDS]
    names += [f"sync_{name}" for name, _ in SYNC_DTYPE_FIELDS]
    meta_line = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    batch = pa.record_batch(arrays, names=names)
    sink = pa.BufferOutputStream()
    with _pa_ipc.new_stream(sink, batch.schema) as writer:
        writer.write_batch(batch)
    return b"\n".join([meta_line.encode("utf-8"), sink.getvalue().to_pybytes()])


def _decode_arrow(payload: bytes) -> tuple[dict[str, Any], dict[str, list]]:
    pa = _require_arrow()
    meta_line, _, body = payload.partition(b"\n")
    meta = json.loads(meta_line)
    with _pa_ipc.open_stream(pa.BufferReader(body)) as reader:
        table = reader.read_all()
    columns = {name: table.column(name).to_pylist() for name in table.column_names}
    return meta, columns


_ENGINES = {
    "numpy": (_encode_numpy, _decode_numpy),
    "arrow": (_encode_arrow, _decode_arrow),
}


# ---------------------------------------------------------------------------
# Blocks: one experiment record, framed and checksummed
# ---------------------------------------------------------------------------


def encode_block(result: ExperimentResult, engine: str = "numpy") -> bytes:
    """Encode one experiment as a framed, self-checksummed columnar block."""
    if engine not in _ENGINES:
        raise StoreError(
            f"unknown columnar engine {engine!r} "
            f"(supported: {', '.join(sorted(_ENGINES))})"
        )
    meta, columns, _ = _split_payload(result_to_dict(result))
    payload = _ENGINES[engine][0](meta, columns)
    header = {
        "engine": engine,
        "format": COLUMNAR_FORMAT_VERSION,
        "length": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_line = json.dumps(header, sort_keys=True, separators=(",", ":"))
    return header_line.encode("utf-8") + b"\n" + payload + b"\n"


def decode_block(header: dict[str, Any], payload: bytes) -> ExperimentResult:
    """Decode one checksum-verified block payload back into a result."""
    if header.get("format") not in READABLE_COLUMNAR_VERSIONS:
        raise StoreIntegrityError(
            f"unsupported columnar format {header.get('format')!r} "
            f"(this reader understands {sorted(READABLE_COLUMNAR_VERSIONS)})"
        )
    engine = header.get("engine")
    if engine not in _ENGINES:
        raise StoreIntegrityError(f"unknown columnar engine {engine!r} in block header")
    try:
        meta, columns = _ENGINES[engine][1](payload)
        return result_from_dict(_join_payload(meta, columns))
    except StoreError:
        raise
    except StoreIntegrityError:
        raise
    except Exception as error:
        raise StoreIntegrityError(f"malformed columnar block payload: {error}") from None


def block_roundtrips(result: ExperimentResult, engine: str = "numpy") -> bool:
    """Whether ``result`` survives a columnar round trip bit-exactly."""
    block = encode_block(result, engine=engine)
    header_line, _, rest = block.partition(b"\n")
    decoded = decode_block(json.loads(header_line), rest[:-1])
    return result_to_dict(decoded) == result_to_dict(result)


# ---------------------------------------------------------------------------
# Files: scanning, healing, appending
# ---------------------------------------------------------------------------


@dataclass
class ColumnarScan:
    """Outcome of scanning one columnar store file.

    ``valid_end`` is the byte offset where the file's valid prefix ends —
    the healing point: a writer truncates there before appending, so a
    torn trailing block can never corrupt the next record.
    """

    results: list[ExperimentResult] = field(default_factory=list)
    valid: int = 0
    corrupt: int = 0
    valid_end: int = 0


def scan_blocks(data: bytes) -> ColumnarScan:
    """Decode every valid block of a columnar store file's bytes.

    The valid prefix ends at the first framing violation (bad header
    line, short payload, checksum mismatch) — everything beyond it is
    counted as one corrupt tail.  A block whose framing and checksum hold
    but whose payload fails to decode is skipped (counted corrupt) and
    scanning continues, because the length framing is still trustworthy.
    """
    if not data.startswith(MAGIC_LINE):
        raise StoreIntegrityError(
            "not a columnar store file (missing magic line); refusing to scan"
        )
    scan = ColumnarScan(valid_end=len(MAGIC_LINE))
    offset = len(MAGIC_LINE)
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            scan.corrupt += 1
            return scan
        try:
            header = json.loads(data[offset:newline])
        except ValueError:
            scan.corrupt += 1
            return scan
        if not isinstance(header, dict) or not isinstance(header.get("length"), int):
            scan.corrupt += 1
            return scan
        start = newline + 1
        stop = start + header["length"]
        if stop + 1 > len(data) or data[stop : stop + 1] != b"\n":
            scan.corrupt += 1
            return scan
        payload = data[start:stop]
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            scan.corrupt += 1
            return scan
        offset = stop + 1
        scan.valid_end = offset
        try:
            scan.results.append(decode_block(header, payload))
        except StoreIntegrityError:
            scan.corrupt += 1
            continue
        scan.valid += 1
    return scan
