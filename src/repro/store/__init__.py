"""Persistent campaign store: run the simulator once, analyze forever.

The paper's evaluation pipeline explicitly decouples the runtime phase
from the offline analysis phase.  :mod:`repro.store` gives that decoupling
a durable form: an append-only, per-study JSONL record store under a
campaign directory, with a manifest carrying configuration fingerprints,
seeds, and the producing git commit.

* :class:`CampaignStore` — the store itself: streaming writes from the
  execution engine, resumable reads, and zero-simulation re-analysis
  (:meth:`~CampaignStore.load_results` / :meth:`~CampaignStore.load_analysis`).
* :mod:`repro.store.format` — bit-exact JSON record encoding with
  per-record checksums (torn writes are detected and treated as absent).
* :mod:`repro.store.columnar` — the columnar record codec: checksummed
  structured-array blocks (numpy, optionally Arrow) behind the same record
  interface, read transparently alongside JSONL stores.
* :mod:`repro.store.manifest` — study configuration fingerprints and the
  campaign manifest with its compatibility checks.

Typical use::

    from repro import CampaignStore, run_and_analyze

    store = CampaignStore("runs/demo")
    analysis = run_and_analyze(campaign, store=store)   # records as it runs
    ...                                                 # (crash, reboot, ...)
    analysis = run_and_analyze(campaign, store=store)   # resumes: only the
                                                        # missing experiments run
    later = store.load_analysis()                       # re-analysis, zero
                                                        # simulator invocations
"""

from repro.store.campaign_store import CampaignStore, StoredStudyConfig, StoreReport
from repro.store.columnar import (
    COLUMNAR_FORMAT_VERSION,
    READABLE_COLUMNAR_VERSIONS,
    ColumnarScan,
    available_engines,
    block_roundtrips,
    decode_block,
    encode_block,
    scan_blocks,
)
from repro.store.format import (
    RECORD_FORMAT_VERSION,
    decode_record,
    encode_record,
    record_roundtrips,
    result_from_dict,
    result_to_dict,
    timeline_from_dict,
    timeline_to_dict,
)
from repro.store.manifest import (
    MANIFEST_FORMAT_VERSION,
    Manifest,
    StudyManifest,
    expected_seeds,
    study_description,
    study_fingerprint,
)

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "CampaignStore",
    "ColumnarScan",
    "MANIFEST_FORMAT_VERSION",
    "Manifest",
    "READABLE_COLUMNAR_VERSIONS",
    "RECORD_FORMAT_VERSION",
    "StoreReport",
    "StoredStudyConfig",
    "StudyManifest",
    "available_engines",
    "block_roundtrips",
    "decode_block",
    "decode_record",
    "encode_block",
    "encode_record",
    "expected_seeds",
    "record_roundtrips",
    "result_from_dict",
    "result_to_dict",
    "scan_blocks",
    "study_description",
    "study_fingerprint",
    "timeline_from_dict",
    "timeline_to_dict",
]
