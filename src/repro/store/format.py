"""On-disk record format of the campaign store: one JSON object per experiment.

Every completed experiment is persisted as a single JSON line carrying the
full :class:`~repro.core.campaign.ExperimentResult` payload — local
timelines, synchronization messages, host clock parameters, completion
flags — plus a SHA-256 checksum of the canonical payload encoding.  The
format is designed around two hard requirements:

* **Bit-exact round trips.**  The analysis phase must produce *identical*
  results whether it consumes a freshly simulated experiment or one loaded
  from disk, so every float is serialized through Python's shortest
  round-trip ``repr`` (what :mod:`json` does natively) and decoded back to
  the very same IEEE-754 double.  No nanosecond quantization, no text
  formatting of timestamps.
* **Crash tolerance.**  A campaign can be killed mid-write.  Because each
  record is one self-checksummed line, a truncated or corrupted trailing
  line is detected (the checksum cannot match) and treated as
  never-written: the resume machinery simply re-runs that experiment and
  appends a fresh record.

The module is deliberately free of any I/O: it maps
:class:`ExperimentResult` to and from plain dictionaries and encodes or
decodes single record lines.  :mod:`repro.store.campaign_store` owns the
files.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.analysis.clock_sync import SyncMessageRecord
from repro.core.campaign import ExperimentResult
from repro.core.expression import parse_expression
from repro.core.specs.fault_spec import (
    FaultDefinition,
    FaultSpecification,
    FaultTrigger,
)
from repro.core.timeline import LocalTimeline, RecordKind, TimelineRecord
from repro.errors import StoreIntegrityError
from repro.sim.clock import ClockParameters
from repro.sim.topology import NetworkFaultSpec

#: Version stamp embedded in every record line; bumped on any change that
#: an old reader could misinterpret.  Version 2 added an optional fourth
#: element (the ``network:`` fault token) to each fault entry, which a
#: version-1 reader would crash unpacking — hence the bump.
RECORD_FORMAT_VERSION = 2

#: Versions this reader can decode.  Version-1 records (three-element
#: fault entries, no network faults) remain fully readable.
READABLE_FORMAT_VERSIONS = frozenset({1, RECORD_FORMAT_VERSION})

#: Value-to-member table for the record-kind column.  ``RecordKind(value)``
#: goes through the enum metaclass on every call, which dominates decoding
#: a million-row record table; a plain dict lookup does not.
_RECORD_KINDS = {kind.value: kind for kind in RecordKind}


def _canonical(payload: dict[str, Any]) -> str:
    """The canonical encoding a record's checksum is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Timelines
# ---------------------------------------------------------------------------


def timeline_to_dict(timeline: LocalTimeline) -> dict[str, Any]:
    """Map one local timeline to a JSON-serializable dictionary.

    Records are stored as compact six-element lists
    ``[kind, time, host, event, new_state, fault]`` because they dominate
    the record volume of a campaign; everything else keeps named keys.
    """
    return {
        "machine": timeline.machine,
        "state_machines": list(timeline.state_machines),
        "global_states": list(timeline.global_states),
        "events": list(timeline.events),
        "faults": [
            [fault.name, fault.expression.to_text(), fault.trigger.value]
            + ([fault.network.to_token()] if fault.network is not None else [])
            for fault in timeline.faults
        ],
        "records": [
            [
                int(record.kind),
                record.time,
                record.host,
                record.event,
                record.new_state,
                record.fault,
            ]
            for record in timeline.records
        ],
        "notes": list(timeline.notes),
    }


def timeline_from_dict(data: dict[str, Any]) -> LocalTimeline:
    """Rebuild a :class:`LocalTimeline` from :func:`timeline_to_dict` output."""
    faults = FaultSpecification.from_definitions(
        FaultDefinition(
            name=entry[0],
            expression=parse_expression(entry[1]),
            trigger=FaultTrigger(entry[2]),
            # Entry 3 (optional, absent in pre-topology records) is the
            # network fault token of a topology-mutating fault.
            network=NetworkFaultSpec.from_token(entry[3]) if len(entry) > 3 else None,
        )
        for entry in data["faults"]
    )
    timeline = LocalTimeline(
        machine=data["machine"],
        state_machines=tuple(data["state_machines"]),
        global_states=tuple(data["global_states"]),
        events=tuple(data["events"]),
        faults=faults,
        notes=list(data["notes"]),
    )
    # The record table dominates campaign-scale decode time, so this loop
    # stays lean: bound locals, dict kind lookup, positional construction.
    append = timeline.records.append
    kinds = _RECORD_KINDS
    for kind, time, host, event, new_state, fault in data["records"]:
        append(TimelineRecord(kinds[kind], time, host, event, new_state, fault))
    return timeline


# ---------------------------------------------------------------------------
# Experiment results
# ---------------------------------------------------------------------------


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Map one :class:`ExperimentResult` to a JSON-serializable dictionary."""
    return {
        "study": result.study,
        "index": result.index,
        "seed": result.seed,
        "local_timelines": {
            machine: timeline_to_dict(timeline)
            for machine, timeline in result.local_timelines.items()
        },
        "sync_messages": [
            [m.sender, m.receiver, m.send_time, m.receive_time]
            for m in result.sync_messages
        ],
        "hosts": list(result.hosts),
        "reference_host": result.reference_host,
        "host_clock_parameters": {
            host: [clock.offset, clock.rate, clock.granularity]
            for host, clock in result.host_clock_parameters.items()
        },
        "completed": result.completed,
        "aborted": result.aborted,
        "abort_reason": result.abort_reason,
        "duration": result.duration,
        "stats": dict(result.stats),
    }


def result_from_dict(data: dict[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output."""
    return ExperimentResult(
        study=data["study"],
        index=data["index"],
        seed=data["seed"],
        local_timelines={
            machine: timeline_from_dict(timeline)
            for machine, timeline in data["local_timelines"].items()
        },
        sync_messages=[
            SyncMessageRecord(sender, receiver, send_time, receive_time)
            for sender, receiver, send_time, receive_time in data["sync_messages"]
        ],
        hosts=tuple(data["hosts"]),
        reference_host=data["reference_host"],
        host_clock_parameters={
            host: ClockParameters(offset=offset, rate=rate, granularity=granularity)
            for host, (offset, rate, granularity) in data["host_clock_parameters"].items()
        },
        completed=data["completed"],
        aborted=data["aborted"],
        abort_reason=data["abort_reason"],
        duration=data["duration"],
        stats=dict(data["stats"]),
    )


# ---------------------------------------------------------------------------
# Record lines
# ---------------------------------------------------------------------------


def encode_record(result: ExperimentResult) -> str:
    """Encode one experiment as a single self-checksummed JSONL line."""
    payload = result_to_dict(result)
    envelope = {
        "format": RECORD_FORMAT_VERSION,
        "sha256": _checksum(payload),
        "payload": payload,
    }
    return json.dumps(envelope, sort_keys=True, separators=(",", ":"))


def decode_record(line: str) -> ExperimentResult:
    """Decode one record line, verifying its checksum.

    Raises :class:`~repro.errors.StoreIntegrityError` on malformed JSON,
    unknown format versions, or checksum mismatches (all three are what a
    torn write or bit rot look like; callers treat such lines as absent).
    """
    try:
        envelope = json.loads(line)
    except ValueError as error:
        raise StoreIntegrityError(f"unparsable record line: {error}") from None
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise StoreIntegrityError("record line is not a store envelope")
    if envelope.get("format") not in READABLE_FORMAT_VERSIONS:
        raise StoreIntegrityError(
            f"unsupported record format {envelope.get('format')!r} "
            f"(this reader understands {sorted(READABLE_FORMAT_VERSIONS)})"
        )
    payload = envelope["payload"]
    digest = _checksum(payload)
    if digest != envelope.get("sha256"):
        raise StoreIntegrityError(
            "record checksum mismatch (torn write or corrupted file)"
        )
    try:
        return result_from_dict(payload)
    except (KeyError, TypeError, ValueError) as error:
        raise StoreIntegrityError(f"malformed record payload: {error}") from None


def record_roundtrips(result: ExperimentResult) -> bool:
    """Whether ``result`` survives encode/decode bit-exactly (a self-test)."""
    return result_to_dict(decode_record(encode_record(result))) == result_to_dict(result)
