"""Campaign manifests: what a store's records were produced by.

The manifest is the store's table of contents and its tamper check.  It
records, per study, everything needed to decide whether an existing record
can be reused by a resumed run: the study's name, master seed, experiment
count, host list, and a *configuration fingerprint* — a SHA-256 digest over
a canonical description of the study's declarative surface (hosts and their
clock/scheduler parameters, node definitions with their fault
specifications and state-machine structure, runtime design, timeouts,
sync-phase parameters, link profiles).  Two studies with the same
fingerprint produce the same experiments for the same seeds; a fingerprint
mismatch on attach means the configuration changed since the records were
written, and resuming would silently mix incompatible data.

What the fingerprint deliberately does **not** capture is Python code:
application factories are arbitrary callables (often closures) with no
stable serialization.  Editing an application's *behavior* without touching
any declarative parameter therefore does not change the fingerprint — the
store trusts that a study name plus its declarative description identifies
the workload, exactly as the scenario registry does.  Use a fresh campaign
directory when application code changes.

The manifest also stamps the producing commit (``git_sha``) so an archived
campaign directory can always be traced back to the code that wrote it.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.campaign import CampaignConfig, StudyConfig
from repro.errors import StoreIntegrityError
from repro.sim.topology import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.runtime.context import NodeDefinition

#: Version stamp of the manifest schema.
MANIFEST_FORMAT_VERSION = 1


def repository_sha(start: Path | None = None) -> str:
    """The short commit hash of the enclosing git checkout, or ``"unknown"``."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=start or Path.cwd(),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "unknown"
    if output.returncode != 0:
        return "unknown"
    return output.stdout.strip()


# ---------------------------------------------------------------------------
# Study fingerprints
# ---------------------------------------------------------------------------


def _node_description(node: "NodeDefinition") -> dict[str, Any]:
    specification = node.specification
    return {
        "nickname": node.nickname,
        "start_host": node.start_host,
        "arguments": list(node.arguments),
        "faults": list(node.faults.describe()),
        # The state machine's structure: machine list, states, events, and
        # the transition table — repr of frozen dataclasses is stable.
        "specification": repr(specification),
    }


def study_description(study: StudyConfig) -> dict[str, Any]:
    """The canonical declarative description a study's fingerprint hashes.

    Everything here is either a primitive or the ``repr`` of a frozen
    dataclass of primitives, so the encoding is stable across processes and
    Python sessions.  Application factories are excluded by design (see the
    module docstring).  The *experiment count* and the study *weight* are
    excluded too: neither affects what the runtime phase produces — the
    count is a sampling size (growing a study from 100 to 1000 experiments
    must be able to reuse the 100 archived records; each experiment's seed
    depends only on the study seed and its index), and the weight only
    feeds measure-phase estimators (re-weighting an archived campaign is
    exactly the kind of re-analysis the store exists to make free).
    """
    description = {
        "name": study.name,
        "seed": study.seed,
        "experiment_timeout": study.experiment_timeout,
        "max_events": study.max_events,
        "design": repr(study.design),
        "restart_policy": repr(study.restart_policy),
        "watchdog": repr(study.watchdog),
        "sync": repr(study.sync),
        "default_scheduler": repr(study.default_scheduler),
        "clock_generation": repr(study.clock_generation),
        "ipc_profile": repr(study.ipc_profile),
        "lan_profile": repr(study.lan_profile),
        "hosts": [
            [host.name, repr(host.clock), repr(host.scheduler)]
            for host in study.hosts
        ],
        "nodes": [_node_description(node) for node in study.nodes],
    }
    # The network model: link-profile overrides and the scheduled
    # network-fault timeline.  (State-triggered network faults are already
    # covered through each node's fault lines.)  The key is omitted for
    # the no-op default so studies that never touch the network model keep
    # their pre-topology fingerprints — archives written before the
    # topology layer stay resumable — while any real network configuration
    # invalidates them.
    if study.network != NetworkConfig():
        description["network"] = repr(study.network)
    return description


def study_fingerprint(study: StudyConfig) -> str:
    """SHA-256 digest of the study's canonical declarative description."""
    canonical = json.dumps(study_description(study), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The manifest itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StudyManifest:
    """One study's entry in the campaign manifest."""

    name: str
    seed: int
    experiments: int
    fingerprint: str
    hosts: tuple[str, ...]

    @classmethod
    def of(cls, study: StudyConfig) -> "StudyManifest":
        """Build the manifest entry for a study configuration."""
        return cls(
            name=study.name,
            seed=study.seed,
            experiments=study.experiments,
            fingerprint=study_fingerprint(study),
            hosts=study.host_names,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "experiments": self.experiments,
            "fingerprint": self.fingerprint,
            "hosts": list(self.hosts),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StudyManifest":
        return cls(
            name=data["name"],
            seed=data["seed"],
            experiments=data["experiments"],
            fingerprint=data["fingerprint"],
            hosts=tuple(data["hosts"]),
        )


@dataclass
class Manifest:
    """The manifest of one campaign directory.

    ``codec`` names the codec the store's *writer* currently uses
    (``"jsonl"`` or ``"columnar"``).  It is informational — readers are
    codec-transparent — and optional in the serialized form (absent means
    ``"jsonl"``), so manifests written before the columnar codec existed
    parse unchanged and old readers simply ignore the key: no
    ``format_version`` bump.
    """

    campaign: str
    git_sha: str = "unknown"
    format_version: int = MANIFEST_FORMAT_VERSION
    codec: str = "jsonl"
    studies: dict[str, StudyManifest] = field(default_factory=dict)

    @classmethod
    def of(
        cls,
        campaign: CampaignConfig,
        git_sha: str | None = None,
        codec: str = "jsonl",
    ) -> "Manifest":
        """Build a manifest describing ``campaign``."""
        return cls(
            campaign=campaign.name,
            git_sha=repository_sha() if git_sha is None else git_sha,
            codec=codec,
            studies={study.name: StudyManifest.of(study) for study in campaign.studies},
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "campaign": self.campaign,
            "git_sha": self.git_sha,
            "format_version": self.format_version,
            "codec": self.codec,
            "studies": {name: entry.to_dict() for name, entry in self.studies.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Manifest":
        if data.get("format_version") != MANIFEST_FORMAT_VERSION:
            raise StoreIntegrityError(
                f"unsupported manifest format {data.get('format_version')!r} "
                f"(this reader understands {MANIFEST_FORMAT_VERSION})"
            )
        return cls(
            campaign=data["campaign"],
            git_sha=data.get("git_sha", "unknown"),
            format_version=data["format_version"],
            codec=data.get("codec", "jsonl"),
            studies={
                name: StudyManifest.from_dict(entry)
                for name, entry in data["studies"].items()
            },
        )

    # -- compatibility checks ----------------------------------------------------

    def check_compatible(self, campaign: CampaignConfig) -> None:
        """Verify that ``campaign`` can resume from this manifest's records.

        Raises :class:`~repro.errors.StoreIntegrityError` when the campaign
        name differs or when a study present in both carries a different
        configuration fingerprint.  Studies new to the campaign are fine
        (they simply have no records yet); studies present only in the
        manifest are fine too (their records are ignored by the resume).
        """
        if campaign.name != self.campaign:
            raise StoreIntegrityError(
                f"store belongs to campaign {self.campaign!r}, "
                f"not {campaign.name!r}; use a fresh directory"
            )
        for study in campaign.studies:
            existing = self.studies.get(study.name)
            if existing is None:
                continue
            fingerprint = study_fingerprint(study)
            if fingerprint != existing.fingerprint:
                raise StoreIntegrityError(
                    f"study {study.name!r} no longer matches the stored "
                    f"configuration (fingerprint {fingerprint[:12]} vs stored "
                    f"{existing.fingerprint[:12]}); its records were produced "
                    "by a different configuration — use a fresh directory"
                )
            if existing.seed != study.seed:  # pragma: no cover - covered by fingerprint
                raise StoreIntegrityError(
                    f"study {study.name!r} seed changed ({study.seed} vs stored "
                    f"{existing.seed}); use a fresh directory"
                )

    def merged_with(self, campaign: CampaignConfig) -> "Manifest":
        """A manifest covering ``campaign``'s studies plus any recorded before.

        Entries for the campaign's studies are rebuilt (refreshing e.g. a
        grown experiment count — compatibility was already checked);
        entries only the manifest knows are kept, so attaching a narrower
        campaign never forgets the records of the wider one.
        """
        merged = dict(self.studies)
        for study in campaign.studies:
            merged[study.name] = StudyManifest.of(study)
        return Manifest(
            campaign=self.campaign,
            git_sha=self.git_sha,
            format_version=self.format_version,
            codec=self.codec,
            studies=merged,
        )


def expected_seeds(study: StudyConfig) -> Mapping[int, int]:
    """The seed every experiment of ``study`` must carry, by index.

    Delegates to the execution engine's seed-derivation contract
    (:meth:`~repro.core.campaign.CampaignRunner._experiment_seed`, pinned by
    the golden-seed tests), which is what makes a stored record verifiable
    without re-running anything.
    """
    from repro.core.campaign import CampaignRunner

    return {
        index: CampaignRunner._experiment_seed(study, index)
        for index in range(study.experiments)
    }
