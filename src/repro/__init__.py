"""Reproduction of *Loki: A State-Driven Fault Injector for Distributed Systems*.

The library is organized around the paper's three phases:

* :mod:`repro.core` — the Loki runtime (specifications, state machines,
  fault parser, probe, recorder, daemons, transports) and campaign
  orchestration, executed on the simulated substrate in :mod:`repro.sim`;
* :mod:`repro.analysis` — offline clock synchronization, global-timeline
  construction, and conservative injection verification;
* :mod:`repro.measures` — the predicate / observation-function / subset
  measure language and the simple-sampling / stratified campaign
  estimators.

:mod:`repro.pipeline` ties the phases together; :mod:`repro.store`
persists campaigns on disk (append-only experiment records plus a
fingerprinted manifest) so runs are resumable and re-analyzable without
re-simulation; :mod:`repro.apps` contains the instrumented example
applications (leader election, the Figure 3.2/3.3 toggle workload,
primary-backup replication, two-phase commit, and token-ring mutual
exclusion); and :mod:`repro.scenarios` registers every application as a
named, parameterized scenario that the execution engine, examples, and
benchmarks enumerate.

See ``docs/architecture.md`` for a guided tour mapping each module to the
paper's sections and tracing the data flow end to end.
"""

from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    ExperimentResult,
    HostConfig,
    StudyConfig,
    StudyResult,
    run_campaign,
    run_single_study,
)
from repro.core.execution import (
    ExecutionConfig,
    ProcessPoolExecutor,
    SerialExecutor,
    available_backends,
    build_executor,
    run_and_analyze_experiment,
)
from repro.core.runtime.context import NodeDefinition, RestartPolicy, WatchdogConfig
from repro.core.runtime.designs import CommunicationMode, DaemonPlacement, RuntimeDesign
from repro.pipeline import (
    AnalyzedExperiment,
    CampaignAnalysis,
    StudyAnalysis,
    analyze_campaign,
    analyze_experiment,
    analyze_study,
    correct_injection_fraction,
    run_and_analyze,
)
from repro.scenarios import (
    DEFAULT_REGISTRY,
    Scenario,
    ScenarioRegistry,
    build_default_registry,
    default_registry,
)
from repro.store import CampaignStore

__version__ = "1.0.0"

__all__ = [
    "AnalyzedExperiment",
    "CampaignAnalysis",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "CampaignStore",
    "CommunicationMode",
    "DEFAULT_REGISTRY",
    "DaemonPlacement",
    "ExecutionConfig",
    "ExperimentResult",
    "HostConfig",
    "NodeDefinition",
    "ProcessPoolExecutor",
    "RestartPolicy",
    "RuntimeDesign",
    "Scenario",
    "ScenarioRegistry",
    "SerialExecutor",
    "StudyAnalysis",
    "StudyConfig",
    "StudyResult",
    "WatchdogConfig",
    "analyze_campaign",
    "analyze_experiment",
    "analyze_study",
    "available_backends",
    "build_default_registry",
    "build_executor",
    "correct_injection_fraction",
    "default_registry",
    "run_and_analyze",
    "run_and_analyze_experiment",
    "run_campaign",
    "run_single_study",
    "__version__",
]
