"""Data transcribed from the paper, shared by tests and benchmarks.

This module centralizes the worked example of Section 4.3 (the global
timeline of Figure 4.2, its three example predicates, and the observation
function values the paper quotes for them) plus the qualitative targets of
the other figures, so that the test suite and the benchmark harness compare
against a single transcription of the paper.
"""

from __future__ import annotations

from repro.measures.observation import Count, Duration, Instant
from repro.measures.predicate import EventTuple, POr, StateTuple, TimeWindow
from repro.measures.timeline_view import TimelineView

#: The example global timeline of Figure 4.2: (machine, state during which
#: the event occurred, event, time in ms).
FIGURE_4_2_ROWS: tuple[tuple[str, str, str, float], ...] = (
    ("StateMachine5", "State5", "Event5", 11.2),
    ("StateMachine1", "State0", "Event1", 12.4),
    ("StateMachine6", "State5", "Event6", 13.1),
    ("StateMachine1", "State1", "Event2", 18.9),
    ("StateMachine6", "State6", "Event7", 20.0),
    ("StateMachine5", "State5", "Event5", 21.4),
    ("StateMachine3", "State3", "Event3", 22.3),
    ("StateMachine3", "State4", "Event4", 26.3),
    ("StateMachine2", "State0", "Event8", 30.9),
    ("StateMachine5", "State5", "Event5", 31.2),
    ("StateMachine2", "State2", "Event9", 32.3),
    ("StateMachine6", "State4", "Event10", 32.3),
    ("StateMachine2", "State1", "Event12", 35.6),
    ("StateMachine6", "State6", "Event11", 37.9),
    ("StateMachine2", "State2", "Event13", 38.9),
    ("StateMachine5", "State5", "Event5", 40.6),
)

#: Experiment extent used for the Figure 4.2 example (times are in ms).
FIGURE_4_2_START = 0.0
FIGURE_4_2_END = 50.0


def figure_4_2_view() -> TimelineView:
    """The Figure 4.2 global timeline as a measure-layer view."""
    return TimelineView.from_rows(
        FIGURE_4_2_ROWS, start=FIGURE_4_2_START, end=FIGURE_4_2_END
    )


def figure_4_2_predicates():
    """The three example predicates of Section 4.3.1, in paper order."""
    predicate_1 = POr(
        StateTuple("StateMachine1", "State1", TimeWindow(10, 20)),
        StateTuple("StateMachine2", "State2", TimeWindow(30, 40)),
    )
    predicate_2 = POr(
        EventTuple("StateMachine3", "State3", "Event3", TimeWindow(10, 30)),
        EventTuple("StateMachine3", "State4", "Event4", TimeWindow(20, 40)),
    )
    predicate_3 = POr(
        EventTuple("StateMachine5", "State5", "Event5"),
        StateTuple("StateMachine6", "State6", TimeWindow(10, 40)),
    )
    return predicate_1, predicate_2, predicate_3


def figure_4_2_observation_functions():
    """The three example observation functions of Section 4.3.2."""
    return (
        Count(edge="U", kind="B", start=10, end=35),
        Duration(value="T", occurrence=2, start=10, end=40),
        Instant(edge="U", kind="I", occurrence=2, start=0, end=50),
    )


#: The observation-function values the paper quotes for the three predicates
#: (Section 4.3.2).  The ``instant`` value for predicate 3 is quoted as
#: 21.2 ms in the paper, but the example global timeline's second impulse of
#: (StateMachine5, State5, Event5) is the row at 21.4 ms, so 21.4 is the
#: value consistent with the published timeline; EXPERIMENTS.md discusses
#: the discrepancy.
FIGURE_4_2_PAPER_VALUES = {
    "count(U, B, 10, 35)": (2.0, 2.0, 5.0),
    "duration(T, 2, 10, 40)": (1.4, 0.0, 7.0),
    "instant(U, I, 2, 0, 50)": (0.0, 26.3, 21.4),
}

#: Qualitative target of Figures 3.2 and 3.3: the correct-injection
#: probability is near zero when the state is held for much less than one
#: OS timeslice and saturates once the state is held for more than a couple
#: of timeslices.
FIGURE_3_2_SATURATION_TIMESLICES = 2.0
