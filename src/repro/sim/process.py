"""Simulated processes.

A :class:`SimProcess` is the unit the paper calls a *component*: one
process of the distributed system under study (or one Loki daemon).  It is
an event-driven object — the kernel calls :meth:`SimProcess.start` once and
:meth:`SimProcess.receive` for every delivered message — so that whole
experiments remain deterministic without coroutines or threads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import RuntimePhaseError
from repro.sim.kernel import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.environment import Environment
    from repro.sim.host import Host
    from repro.sim.network import NetworkMessage


class SimProcess:
    """Base class for all simulated processes.

    Subclasses override :meth:`start`, :meth:`receive`, and optionally
    :meth:`on_crash` / :meth:`on_exit`.  All interaction with the outside
    world goes through the environment: sending messages, setting timers,
    and reading the local hardware clock.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._environment: "Environment | None" = None
        self._host: "Host | None" = None
        self._alive = False
        self._exited = False
        self._crashed = False
        self._timers: list[EventHandle] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the process is currently running."""
        return self._alive

    @property
    def exited(self) -> bool:
        """Whether the process terminated cleanly."""
        return self._exited

    @property
    def crashed(self) -> bool:
        """Whether the process terminated by crashing."""
        return self._crashed

    @property
    def host(self) -> "Host":
        """The host this process runs on."""
        if self._host is None:
            raise RuntimePhaseError(f"process {self.name!r} is not placed on a host")
        return self._host

    @property
    def environment(self) -> "Environment":
        """The environment this process is registered with."""
        if self._environment is None:
            raise RuntimePhaseError(f"process {self.name!r} is not attached to an environment")
        return self._environment

    def _bind(self, environment: "Environment", host: "Host") -> None:
        self._environment = environment
        self._host = host
        self._alive = True
        self._exited = False
        self._crashed = False

    # -- to be overridden ---------------------------------------------------

    def start(self) -> None:
        """Called once when the process begins executing."""

    def receive(self, message: "NetworkMessage") -> None:
        """Called for every message delivered to this process."""

    def on_crash(self, reason: str) -> None:
        """Hook invoked when the process crashes (signal handler analogue)."""

    def on_exit(self) -> None:
        """Hook invoked when the process exits cleanly."""

    # -- services provided to subclasses ------------------------------------

    def now(self) -> float:
        """Physical simulation time (not visible to real systems; test aid)."""
        return self.environment.kernel.now

    def local_clock(self) -> float:
        """Read the local host's hardware clock (what real code would see)."""
        return self.host.read_clock()

    def send(self, destination: str, payload: Any, size_bytes: int = 0) -> None:
        """Send a message to another process, addressed by process name."""
        self.environment.send(self.name, destination, payload, size_bytes=size_bytes)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule a local callback; it is cancelled if the process dies."""
        handle = self.environment.kernel.schedule(delay, self._fire_timer, callback, args)
        self._timers.append(handle)
        return handle

    def _fire_timer(self, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        if self._alive:
            callback(*args)

    def exit(self) -> None:
        """Terminate the process cleanly."""
        if not self._alive:
            return
        self._alive = False
        self._exited = True
        self._cancel_timers()
        self.on_exit()
        self.environment.process_terminated(self, crashed=False)

    def crash(self, reason: str = "injected fault") -> None:
        """Terminate the process abruptly (a crash failure)."""
        if not self._alive:
            return
        self._alive = False
        self._crashed = True
        self._cancel_timers()
        self.on_crash(reason)
        self.environment.process_terminated(self, crashed=True)

    def _cancel_timers(self) -> None:
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "alive" if self._alive else ("crashed" if self._crashed else "stopped")
        return f"{type(self).__name__}({self.name!r}, {status})"
