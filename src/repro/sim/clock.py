"""Per-host hardware clocks with offset, drift, and granularity.

Section 2.5 of the paper assumes that the processor clocks of the machines
drift linearly, i.e. for machines ``i`` and ``j``::

    C_j(t) = alpha_ij + beta_ij * C_i(t)

The simulator gives every host a :class:`HardwareClock` of the form
``C(t) = offset + rate * t`` (plus optional read granularity), which makes
the assumption exact and lets the offline clock-synchronization algorithm
of :mod:`repro.analysis.clock_sync` be validated against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeConfigurationError


@dataclass(frozen=True)
class ClockParameters:
    """Static description of a hardware clock.

    Attributes
    ----------
    offset:
        Clock reading at physical time zero, in seconds.
    rate:
        Seconds of clock time per second of physical time.  A perfect clock
        has rate ``1.0``; typical quartz oscillators are within a few tens
        of parts per million.
    granularity:
        Smallest increment the clock can report, in seconds.  ``0`` means
        the clock is continuous (e.g. a cycle counter on a fast CPU).
    """

    offset: float = 0.0
    rate: float = 1.0
    granularity: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise RuntimeConfigurationError(f"clock rate must be positive, got {self.rate}")
        if self.granularity < 0:
            raise RuntimeConfigurationError("clock granularity cannot be negative")


class HardwareClock:
    """A drifting hardware clock readable from simulated software."""

    def __init__(self, parameters: ClockParameters | None = None) -> None:
        self._parameters = parameters or ClockParameters()

    @property
    def parameters(self) -> ClockParameters:
        """The offset/rate/granularity this clock was built with."""
        return self._parameters

    @property
    def rate(self) -> float:
        """Clock seconds per physical second."""
        return self._parameters.rate

    @property
    def offset(self) -> float:
        """Clock reading at physical time zero."""
        return self._parameters.offset

    def read(self, physical_time: float) -> float:
        """Return the clock value at the given physical time."""
        value = self._parameters.offset + self._parameters.rate * physical_time
        granularity = self._parameters.granularity
        if granularity > 0:
            value = (value // granularity) * granularity
        return value

    def to_physical(self, clock_time: float) -> float:
        """Invert the clock: the physical time at which it reads ``clock_time``.

        Granularity is ignored for the inversion; the result is the earliest
        physical instant at which a continuous clock with the same offset and
        rate would show ``clock_time``.  This is only used by tests and by
        ground-truth checks, never by the system under test.
        """
        return (clock_time - self._parameters.offset) / self._parameters.rate

    def relative_to(self, reference: "HardwareClock") -> tuple[float, float]:
        """Return the true ``(alpha, beta)`` of this clock w.r.t. ``reference``.

        These are the quantities the offline clock-synchronization algorithm
        estimates bounds for: ``C_self(t) = alpha + beta * C_ref(t)``.
        """
        beta = self.rate / reference.rate
        alpha = self.offset - beta * reference.offset
        return alpha, beta

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        p = self._parameters
        return f"HardwareClock(offset={p.offset}, rate={p.rate}, granularity={p.granularity})"
