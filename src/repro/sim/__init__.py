"""Simulated distributed-system substrate.

The original Loki runtime was a C++ library running on real Linux hosts
connected by a LAN.  This package provides the equivalent substrate as a
deterministic discrete-event simulation so that the runtime phase, the
offline analysis phase, and the paper's performance figures can all be
reproduced on a laptop with a fixed seed.

The substrate models exactly the aspects of a real deployment that the
paper's evaluation depends on:

* per-host hardware clocks with offset and drift (the linear clock model of
  Section 2.5),
* an operating-system scheduler with a configurable timeslice and context
  switch cost (the dominant source of notification latency in Figures 3.2
  and 3.3),
* a topology-aware LAN with distinct delay profiles for intra-host IPC
  (shared memory) and inter-host TCP/IP messages (Section 3.4's 20 us vs
  150 us comparison), whose per-link state can be mutated mid-experiment —
  partitions, one-way outages, degradation, loss, duplication, reordering
  (:mod:`repro.sim.topology`).

Public entry points:

* :class:`~repro.sim.kernel.SimKernel` — the event queue and virtual time.
* :class:`~repro.sim.environment.Environment` — a facade that wires hosts,
  processes, the network, and the kernel together.
"""

from repro.sim.clock import ClockParameters, HardwareClock
from repro.sim.environment import Environment
from repro.sim.host import Host, SchedulerConfig
from repro.sim.kernel import EventHandle, SimKernel
from repro.sim.network import (
    IPC_PROFILE,
    LAN_TCP_PROFILE,
    DeliveryEvent,
    LinkProfile,
    Network,
    NetworkMessage,
    NetworkModel,
)
from repro.sim.process import SimProcess
from repro.sim.rng import RandomStreams
from repro.sim.topology import (
    LinkState,
    NetworkConfig,
    NetworkFaultKind,
    NetworkFaultSpec,
    ScheduledNetworkFault,
    Topology,
)

__all__ = [
    "ClockParameters",
    "DeliveryEvent",
    "Environment",
    "EventHandle",
    "HardwareClock",
    "Host",
    "IPC_PROFILE",
    "LAN_TCP_PROFILE",
    "LinkProfile",
    "LinkState",
    "Network",
    "NetworkConfig",
    "NetworkFaultKind",
    "NetworkFaultSpec",
    "NetworkMessage",
    "NetworkModel",
    "RandomStreams",
    "ScheduledNetworkFault",
    "SchedulerConfig",
    "SimKernel",
    "SimProcess",
    "Topology",
]
