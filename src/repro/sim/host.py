"""Hosts and the operating-system scheduling model.

The performance analysis of the original Loki runtime (Figures 3.2 and 3.3)
found that the probability of a correct state-driven injection is governed
almost entirely by the OS context-switching latency incurred when
notification messages are sent and received — not by the network delay or
by Loki's own processing.  The host model therefore charges a *scheduling
delay* every time a message wakes up a process that is not currently
running: a context-switch cost plus a uniformly distributed wait of up to
``runnable_competitors`` timeslices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RuntimeConfigurationError
from repro.sim.clock import ClockParameters, HardwareClock
from repro.sim.kernel import SimKernel
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.process import SimProcess


@dataclass(frozen=True)
class SchedulerConfig:
    """Operating-system scheduling parameters for one host.

    Attributes
    ----------
    timeslice:
        Length of the OS scheduling quantum in seconds.  The paper's
        experiments use 10 ms (stock Linux 2.2) and 1 ms (patched kernel).
    context_switch_cost:
        Fixed cost charged per wake-up, in seconds.
    runnable_competitors:
        Average number of other runnable processes competing for the CPU.
        The wake-up wait is uniform on ``[0, runnable_competitors *
        timeslice]``.
    immediate_probability:
        Probability that the woken process is already scheduled on the CPU
        and pays only the context-switch cost (models an otherwise idle
        host where the receiving process is blocked in ``select``).
    """

    timeslice: float = 0.010
    context_switch_cost: float = 50e-6
    runnable_competitors: float = 1.0
    immediate_probability: float = 0.35

    def __post_init__(self) -> None:
        if self.timeslice <= 0:
            raise RuntimeConfigurationError("timeslice must be positive")
        if self.context_switch_cost < 0:
            raise RuntimeConfigurationError("context switch cost cannot be negative")
        if self.runnable_competitors < 0:
            raise RuntimeConfigurationError("runnable_competitors cannot be negative")
        if not 0.0 <= self.immediate_probability <= 1.0:
            raise RuntimeConfigurationError("immediate_probability must be within [0, 1]")


class Host:
    """A machine of the distributed system: clock, OS scheduler, processes."""

    def __init__(
        self,
        name: str,
        kernel: SimKernel,
        streams: RandomStreams,
        clock: ClockParameters | HardwareClock | None = None,
        scheduler: SchedulerConfig | None = None,
    ) -> None:
        self.name = name
        self._kernel = kernel
        self._rng = streams.stream(f"host:{name}")
        if isinstance(clock, HardwareClock):
            self.clock = clock
        else:
            self.clock = HardwareClock(clock or ClockParameters())
        self.scheduler = scheduler or SchedulerConfig()
        self._processes: dict[str, "SimProcess"] = {}
        self._crashed = False

    @property
    def kernel(self) -> SimKernel:
        """The kernel this host is attached to."""
        return self._kernel

    @property
    def crashed(self) -> bool:
        """Whether the whole host has crashed (Section 3.6.4)."""
        return self._crashed

    @property
    def processes(self) -> dict[str, "SimProcess"]:
        """Mapping of process name to process currently placed on this host."""
        return dict(self._processes)

    def read_clock(self) -> float:
        """Read the host's hardware clock at the current physical time."""
        return self.clock.read(self._kernel.now)

    def attach_process(self, process: "SimProcess") -> None:
        """Place a process on this host."""
        if process.name in self._processes:
            raise RuntimeConfigurationError(
                f"process {process.name!r} already exists on host {self.name!r}"
            )
        self._processes[process.name] = process

    def detach_process(self, name: str) -> None:
        """Remove a process from this host (after exit, crash, or migration)."""
        self._processes.pop(name, None)

    def scheduling_delay(self) -> float:
        """Sample the delay before a woken process runs on the CPU."""
        config = self.scheduler
        delay = config.context_switch_cost
        if self._rng.random() >= config.immediate_probability:
            delay += self._rng.uniform(0.0, config.runnable_competitors * config.timeslice)
        return delay

    def crash(self) -> None:
        """Crash the host: every process on it crashes immediately."""
        self._crashed = True
        for process in list(self._processes.values()):
            if process.alive:
                process.crash(reason="host crash")

    def reboot(self) -> None:
        """Bring a crashed host back up (with no processes running)."""
        self._crashed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Host({self.name!r}, processes={sorted(self._processes)}, crashed={self._crashed})"
