"""Discrete-event simulation kernel.

The kernel owns virtual time (the *physical* time ``t`` of the paper's
clock model) and a priority queue of scheduled callbacks.  Everything else
in the substrate — clocks, the network, the OS scheduler, application
processes, and the Loki runtime itself — is driven by callbacks scheduled
on a single kernel instance, which is what makes whole experiments
deterministic and replayable.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable

from repro.errors import RuntimePhaseError

# A heap entry is a plain tuple ``(time, seq, handle, callback, args)``.
# ``seq`` values are unique, so heap comparisons are decided entirely by the
# ``(time, seq)`` prefix in C tuple comparison and never reach the handle —
# replacing the previous dataclass entry whose generated ``__lt__`` dominated
# the delivery benchmark's profile.  ``handle`` is ``None`` for events posted
# through the fire-and-forget fast path (:meth:`SimKernel.post_at`), which
# skips the :class:`EventHandle` allocation entirely.
_QueueEntry = tuple[float, int, "EventHandle | None", Callable[..., Any], tuple]

# The monotone lane stores no entry objects at all: it is a struct of
# arrays — four parallel deques holding each event's time, sequence
# number, callback, and single argument.  Per-event entry tuples would
# all survive generation 0 (they sit in the queue until dispatched), and
# those survivors are exactly what paces the cyclic GC during large send
# bursts; deques of scalars and callables add nothing for the collector
# to traverse.  The lane therefore only accepts single-argument
# callbacks (the delivery hot path's shape) — other posts fall back to
# the heap, which merges correctly by the shared ``(time, seq)`` key.


class EventHandle:
    """Handle returned by :meth:`SimKernel.schedule` for cancellation."""

    __slots__ = ("time", "callback", "args", "cancelled", "_kernel", "_in_queue")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        kernel: "SimKernel | None" = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._kernel = kernel
        self._in_queue = kernel is not None

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._in_queue and self._kernel is not None:
            self._kernel._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"EventHandle(t={self.time:.6f}, cb={name}, cancelled={self.cancelled})"


class SimKernel:
    """Virtual-time event loop.

    Time is a float number of seconds of physical (true) time.  Callbacks
    scheduled for the same instant run in scheduling order, which keeps the
    simulation deterministic.
    """

    #: Queues smaller than this are never compacted (the scan is cheap).
    COMPACTION_MIN_QUEUE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_QueueEntry] = []
        # The monotone lane: :meth:`post_at` events whose times arrive in
        # nondecreasing order (the overwhelmingly common case — network
        # deliveries are clamped to a FIFO floor) are kept in plain FIFO
        # deques instead of the heap.  Entries carry the same global
        # ``(time, seq)`` ordering key, and the dispatch loops always run
        # whichever lane's head is smaller, so the merged execution order
        # is exactly the single-heap order — but the hot lane pops in O(1)
        # instead of paying a full sift-down per event.  See the module
        # comment above for why the lane is a struct of arrays.
        self._posted_times: deque[float] = deque()
        self._posted_seqs: deque[int] = deque()
        self._posted_callbacks: deque[Callable[..., Any]] = deque()
        self._posted_args: deque[Any] = deque()
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._compactions = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current physical simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (not yet cancelled) callbacks.

        Maintained as a live counter, so this is O(1) rather than a scan of
        the queue (experiments cancel large numbers of watchdog timers).
        """
        return len(self._queue) + len(self._posted_times) - self._cancelled_in_queue

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (observability)."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise RuntimePhaseError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``time``."""
        if time < self._now:
            raise RuntimePhaseError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, callback, args, kernel=self)
        heapq.heappush(self._queue, (time, next(self._seq), handle, callback, args))
        return handle

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule a callback that will never be cancelled (the fast path).

        Semantically identical to :meth:`schedule_at` — same validation,
        same ``(time, seq)`` ordering against every other event — but it
        allocates no :class:`EventHandle`, which matters on per-message hot
        paths like network delivery that schedule hundreds of thousands of
        fire-and-forget events per campaign.
        """
        if time < self._now:
            raise RuntimePhaseError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        times = self._posted_times
        if len(args) == 1 and not (times and time < times[-1]):
            self._posted_times.append(time)
            self._posted_seqs.append(next(self._seq))
            self._posted_callbacks.append(callback)
            self._posted_args.append(args[0])
        else:
            # Out-of-order or non-unary post: fall back to the heap
            # (correct for any time and arity).  The monotone lane stays
            # sorted — and single-argument — by construction.
            heapq.heappush(self._queue, (time, next(self._seq), None, callback, args))

    def _posted_first(self) -> bool:
        """Whether the monotone lane's head precedes the heap's head.

        Assumes both lanes are non-empty; ties fall back to the globally
        unique sequence numbers, exactly as heap-entry tuple comparison
        would decide them.
        """
        head = self._queue[0]
        time = self._posted_times[0]
        return time < head[0] or (time == head[0] and self._posted_seqs[0] < head[1])

    def _dispatch_posted(self) -> None:
        """Pop and run the monotone lane's head event."""
        self._now = self._posted_times.popleft()
        self._posted_seqs.popleft()
        self._events_processed += 1
        self._posted_callbacks.popleft()(self._posted_args.popleft())

    def step(self) -> bool:
        """Run the next pending callback.  Return ``False`` if none remain."""
        queue = self._queue
        while queue or self._posted_times:
            if queue and not (self._posted_times and self._posted_first()):
                entry = heapq.heappop(queue)
                handle = entry[2]
                if handle is not None:
                    if handle.cancelled:
                        self._discard(handle)
                        continue
                    handle._in_queue = False
                self._now = entry[0]
                self._events_processed += 1
                entry[3](*entry[4])
            else:
                self._dispatch_posted()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run callbacks until the queue drains or a limit is reached.

        Parameters
        ----------
        until:
            If given, stop once the next pending callback would run after
            this time; the kernel clock is then advanced to ``until``.
        max_events:
            If given, stop after executing this many callbacks (a guard
            against runaway experiments).
        """
        # The loop body is :meth:`_peek_time` + :meth:`step` fused inline:
        # peeking is a plain head access and popping skips a second
        # cancellation check, which removes two Python-level calls per
        # event — a measurable share of campaign runtime at hundreds of
        # thousands of events.  Both lanes are drained in global
        # ``(time, seq)`` order (see ``_posted_times`` and friends).
        self._running = True
        queue = self._queue
        times = self._posted_times
        seqs = self._posted_seqs
        callbacks = self._posted_callbacks
        arguments = self._posted_args
        pop = heapq.heappop
        executed = 0
        try:
            if until is None and max_events is None:
                # Unbounded drain (the campaign-end and benchmark case):
                # no limit checks, and the monotone lane pops without the
                # peek-then-delete dance the `until` boundary needs.
                while True:
                    if queue:
                        if times and self._posted_first():
                            self._now = times.popleft()
                            seqs.popleft()
                            self._events_processed += 1
                            callbacks.popleft()(arguments.popleft())
                            continue
                        entry = pop(queue)
                        handle = entry[2]
                        if handle is not None:
                            if handle.cancelled:
                                self._discard(handle)
                                continue
                            handle._in_queue = False
                        self._now = entry[0]
                        self._events_processed += 1
                        entry[3](*entry[4])
                    elif times:
                        self._now = times.popleft()
                        seqs.popleft()
                        self._events_processed += 1
                        callbacks.popleft()(arguments.popleft())
                    else:
                        return
            while queue or times:
                if max_events is not None and executed >= max_events:
                    return
                if queue and not (times and self._posted_first()):
                    entry = queue[0]
                    handle = entry[2]
                    if handle is not None and handle.cancelled:
                        pop(queue)
                        self._discard(handle)
                        continue
                    if until is not None and entry[0] > until:
                        self._now = max(self._now, until)
                        return
                    pop(queue)
                    if handle is not None:
                        handle._in_queue = False
                    self._now = entry[0]
                    self._events_processed += 1
                    entry[3](*entry[4])
                else:
                    if until is not None and times[0] > until:
                        self._now = max(self._now, until)
                        return
                    self._now = times.popleft()
                    seqs.popleft()
                    self._events_processed += 1
                    callbacks.popleft()(arguments.popleft())
                executed += 1
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def _peek_time(self) -> float | None:
        queue = self._queue
        while queue:
            entry = queue[0]
            handle = entry[2]
            if handle is not None and handle.cancelled:
                heapq.heappop(queue)
                self._discard(handle)
                continue
            break
        times = self._posted_times
        if queue:
            if times and self._posted_first():
                return times[0]
            return queue[0][0]
        if times:
            return times[0]
        return None

    # -- lazy-deletion bookkeeping ----------------------------------------------------
    #
    # Cancelled entries stay in the heap until they surface at the top
    # (classic lazy deletion).  Long campaigns cancel very large numbers of
    # watchdog and retransmission timers whose firing times lie far in the
    # future, so without intervention the heap grows without bound and every
    # push pays log(dead + live).  The kernel therefore counts cancelled
    # entries still in the heap and rebuilds the heap from the live entries
    # once the dead ones dominate.  Compaction preserves each entry's
    # (time, seq) ordering key, so callback execution order — and with it
    # simulation determinism — is unchanged.

    def _discard(self, handle: EventHandle) -> None:
        """A cancelled entry left the heap: keep the live counter honest."""
        if handle._in_queue:
            handle._in_queue = False
            self._cancelled_in_queue -= 1

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` while the entry is queued."""
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACTION_MIN_QUEUE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the live ones."""
        live: list[_QueueEntry] = []
        for entry in self._queue:
            handle = entry[2]
            if handle is not None and handle.cancelled:
                handle._in_queue = False
            else:
                live.append(entry)
        heapq.heapify(live)
        # In-place so the queue list object stays stable: run() holds a
        # local alias across callbacks, and a callback may cancel enough
        # timers to trigger compaction mid-loop.
        self._queue[:] = live
        self._cancelled_in_queue = 0
        self._compactions += 1

    def advance_to(self, time: float) -> None:
        """Advance the clock with no callbacks (used between experiments)."""
        if time < self._now:
            raise RuntimePhaseError("cannot move simulation time backwards")
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SimKernel(now={self._now:.6f}, pending={self.pending})"
