"""Discrete-event simulation kernel.

The kernel owns virtual time (the *physical* time ``t`` of the paper's
clock model) and a priority queue of scheduled callbacks.  Everything else
in the substrate — clocks, the network, the OS scheduler, application
processes, and the Loki runtime itself — is driven by callbacks scheduled
on a single kernel instance, which is what makes whole experiments
deterministic and replayable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RuntimePhaseError


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Handle returned by :meth:`SimKernel.schedule` for cancellation."""

    __slots__ = ("time", "callback", "args", "cancelled", "_kernel", "_in_queue")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        kernel: "SimKernel | None" = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._kernel = kernel
        self._in_queue = kernel is not None

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._in_queue and self._kernel is not None:
            self._kernel._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"EventHandle(t={self.time:.6f}, cb={name}, cancelled={self.cancelled})"


class SimKernel:
    """Virtual-time event loop.

    Time is a float number of seconds of physical (true) time.  Callbacks
    scheduled for the same instant run in scheduling order, which keeps the
    simulation deterministic.
    """

    #: Queues smaller than this are never compacted (the scan is cheap).
    COMPACTION_MIN_QUEUE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._compactions = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current physical simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (not yet cancelled) callbacks.

        Maintained as a live counter, so this is O(1) rather than a scan of
        the queue (experiments cancel large numbers of watchdog timers).
        """
        return len(self._queue) - self._cancelled_in_queue

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (observability)."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise RuntimePhaseError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``time``."""
        if time < self._now:
            raise RuntimePhaseError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, callback, args, kernel=self)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._seq), handle))
        return handle

    def step(self) -> bool:
        """Run the next pending callback.  Return ``False`` if none remain."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                self._discard(handle)
                continue
            handle._in_queue = False
            self._now = entry.time
            self._events_processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run callbacks until the queue drains or a limit is reached.

        Parameters
        ----------
        until:
            If given, stop once the next pending callback would run after
            this time; the kernel clock is then advanced to ``until``.
        max_events:
            If given, stop after executing this many callbacks (a guard
            against runaway experiments).
        """
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    return
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    return
                if not self.step():
                    break
                executed += 1
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def _peek_time(self) -> float | None:
        while self._queue:
            entry = self._queue[0]
            if entry.handle.cancelled:
                heapq.heappop(self._queue)
                self._discard(entry.handle)
                continue
            return entry.time
        return None

    # -- lazy-deletion bookkeeping ----------------------------------------------------
    #
    # Cancelled entries stay in the heap until they surface at the top
    # (classic lazy deletion).  Long campaigns cancel very large numbers of
    # watchdog and retransmission timers whose firing times lie far in the
    # future, so without intervention the heap grows without bound and every
    # push pays log(dead + live).  The kernel therefore counts cancelled
    # entries still in the heap and rebuilds the heap from the live entries
    # once the dead ones dominate.  Compaction preserves each entry's
    # (time, seq) ordering key, so callback execution order — and with it
    # simulation determinism — is unchanged.

    def _discard(self, handle: EventHandle) -> None:
        """A cancelled entry left the heap: keep the live counter honest."""
        if handle._in_queue:
            handle._in_queue = False
            self._cancelled_in_queue -= 1

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` while the entry is queued."""
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACTION_MIN_QUEUE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the live ones."""
        live: list[_QueueEntry] = []
        for entry in self._queue:
            if entry.handle.cancelled:
                entry.handle._in_queue = False
            else:
                live.append(entry)
        heapq.heapify(live)
        self._queue = live
        self._cancelled_in_queue = 0
        self._compactions += 1

    def advance_to(self, time: float) -> None:
        """Advance the clock with no callbacks (used between experiments)."""
        if time < self._now:
            raise RuntimePhaseError("cannot move simulation time backwards")
        self._now = time

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SimKernel(now={self._now:.6f}, pending={self.pending})"
