"""Facade wiring hosts, processes, the network, and the kernel together.

An :class:`Environment` is one deployment of the distributed system under
study plus the Loki runtime: a set of hosts (each with its own clock and
scheduler), the processes placed on them, and the topology-aware network
connecting them.  The campaign runner builds a fresh environment for every
experiment so that no state leaks between experiments.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import RuntimeConfigurationError, RuntimePhaseError
from repro.sim.clock import ClockParameters, HardwareClock
from repro.sim.host import Host, SchedulerConfig
from repro.sim.kernel import SimKernel
from repro.sim.network import (
    IPC_PROFILE,
    LAN_TCP_PROFILE,
    DeliveryEvent,
    LinkProfile,
    NetworkMessage,
    NetworkModel,
)
from repro.sim.process import SimProcess
from repro.sim.rng import RandomStreams
from repro.sim.topology import NetworkConfig, Topology


class Environment:
    """One simulated deployment: hosts, processes, network, virtual time."""

    def __init__(
        self,
        seed: int = 0,
        default_scheduler: SchedulerConfig | None = None,
        ipc_profile: LinkProfile = IPC_PROFILE,
        lan_profile: LinkProfile = LAN_TCP_PROFILE,
        network: NetworkConfig | None = None,
    ) -> None:
        self.kernel = SimKernel()
        self.streams = RandomStreams(seed)
        topology = Topology(ipc_profile=ipc_profile, default_profile=lan_profile)
        if network is not None:
            for source_host, destination_host, profile in network.link_profiles:
                topology.set_profile(source_host, destination_host, profile)
        self.network = NetworkModel(self.kernel, self.streams, topology=topology)
        self._default_scheduler = default_scheduler or SchedulerConfig()
        self._hosts: dict[str, Host] = {}
        self._processes: dict[str, SimProcess] = {}
        self._termination_listeners: list[Callable[[SimProcess, bool], None]] = []
        self._dispatch_floor: dict[tuple[str, str], float] = {}

    @property
    def topology(self) -> Topology:
        """The network topology of this deployment."""
        return self.network.topology

    @property
    def ipc_profile(self) -> LinkProfile:
        """Default delay profile for messages between processes on one host."""
        return self.topology.ipc_profile

    @property
    def lan_profile(self) -> LinkProfile:
        """Default delay profile for messages between processes on different hosts."""
        return self.topology.default_profile

    # -- hosts ---------------------------------------------------------------

    def add_host(
        self,
        name: str,
        clock: ClockParameters | HardwareClock | None = None,
        scheduler: SchedulerConfig | None = None,
    ) -> Host:
        """Create and register a host.

        Host names must be unique and must not contain ``"/"`` (the
        endpoint separator); violations raise
        :class:`~repro.errors.RuntimeConfigurationError` instead of
        silently shadowing or corrupting the routing tables.
        """
        if "/" in name:
            raise RuntimeConfigurationError(
                f"host name {name!r} must not contain '/' (the endpoint separator)"
            )
        if name in self._hosts:
            raise RuntimeConfigurationError(
                f"host {name!r} already exists (hosts: {sorted(self._hosts)})"
            )
        host = Host(
            name,
            self.kernel,
            self.streams,
            clock=clock,
            scheduler=scheduler or self._default_scheduler,
        )
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise RuntimeConfigurationError(f"unknown host {name!r}") from None

    @property
    def hosts(self) -> dict[str, Host]:
        """All hosts registered with the environment."""
        return dict(self._hosts)

    # -- processes -----------------------------------------------------------

    def spawn(self, process: SimProcess, host_name: str, start_delay: float = 0.0) -> SimProcess:
        """Place a process on a host and schedule its ``start`` callback.

        Process names must not contain ``"/"`` (the endpoint separator),
        and a name can only be reused once its previous owner has
        terminated (that reuse is how crashed nodes restart); a duplicate
        live name raises :class:`~repro.errors.RuntimeConfigurationError`
        instead of silently shadowing the running process.
        """
        host = self.host(host_name)
        if "/" in process.name:
            raise RuntimeConfigurationError(
                f"process name {process.name!r} must not contain '/' "
                "(the endpoint separator)"
            )
        existing = self._processes.get(process.name)
        if existing is not None and existing.alive:
            raise RuntimeConfigurationError(
                f"a live process named {process.name!r} already exists "
                f"on host {existing.host.name!r}"
            )
        process._bind(self, host)
        host.attach_process(process)
        self._processes[process.name] = process
        self.kernel.schedule(start_delay, self._start_process, process)
        return process

    def _start_process(self, process: SimProcess) -> None:
        if process.alive:
            process.start()

    def process(self, name: str) -> SimProcess | None:
        """Look up a process by name (``None`` if it never existed)."""
        return self._processes.get(name)

    @property
    def processes(self) -> dict[str, SimProcess]:
        """All processes ever spawned in the environment, by name."""
        return dict(self._processes)

    def live_processes(self) -> list[SimProcess]:
        """Processes that are currently alive."""
        # repro-lint: disable=R003 insertion-ordered registry; spawn order is deterministic
        return [p for p in self._processes.values() if p.alive]

    def process_terminated(self, process: SimProcess, crashed: bool) -> None:
        """Internal: called by processes when they exit or crash."""
        process.host.detach_process(process.name)
        for listener in list(self._termination_listeners):
            listener(process, crashed)

    def add_termination_listener(self, listener: Callable[[SimProcess, bool], None]) -> None:
        """Register a callback invoked as ``listener(process, crashed)``."""
        self._termination_listeners.append(listener)

    # -- messaging -----------------------------------------------------------

    def endpoint(self, process_name: str) -> str:
        """The network endpoint identifier of a process."""
        process = self._processes.get(process_name)
        if process is None or process._host is None:
            return f"?/{process_name}"
        return f"{process._host.name}/{process_name}"

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        size_bytes: int = 0,
        profile: LinkProfile | None = None,
    ) -> None:
        """Send ``payload`` from one named process to another.

        The link is resolved from the topology: the hosts of the two
        processes select the intra-host IPC link or the inter-host link,
        whose current :class:`~repro.sim.topology.LinkState` governs
        delay, loss, duplication, reordering, and outages.  An explicit
        ``profile`` replaces the link's delay/loss profile for this one
        message (outages, duplication, and reordering still apply).
        Delivery charges the
        destination host's scheduling delay before the receiving process's
        ``receive`` method runs; messages to dead processes are dropped
        and recorded as ``"dead-target"`` delivery events.
        """
        src = self._processes.get(source)
        dst = self._processes.get(destination)
        if src is None:
            raise RuntimePhaseError(f"unknown sender process {source!r}")
        if dst is None or not dst.alive:
            self.network.record_event("dead-target", source, destination)
            return
        self.network.send(
            self.endpoint(source),
            self.endpoint(destination),
            payload,
            deliver=lambda message, name=destination: self._deliver(name, message),
            profile=profile,
            size_bytes=size_bytes,
        )

    def _deliver(self, destination: str, message: NetworkMessage) -> None:
        process = self._processes.get(destination)
        if process is None or not process.alive:
            self.network.record_event("dead-target", message.source, destination)
            return
        delay = process.host.scheduling_delay()
        # A receiving process drains one connection's messages in arrival
        # order: its per-message scheduling delay must not let a later
        # message from the same sender overtake an earlier one (the kernel
        # breaks equal-time ties by insertion order, preserving FIFO).
        pair = (message.source, destination)
        dispatch_at = max(self.kernel.now + delay, self._dispatch_floor.get(pair, 0.0))
        self._dispatch_floor[pair] = dispatch_at
        self.kernel.schedule_at(dispatch_at, self._dispatch, destination, message)

    def _dispatch(self, destination: str, message: NetworkMessage) -> None:
        process = self._processes.get(destination)
        if process is None or not process.alive:
            self.network.record_event("dead-target", message.source, destination)
            return
        process.receive(message)

    @property
    def delivery_events(self) -> list[DeliveryEvent]:
        """Every structured delivery event of the experiment, in time order.

        Includes substrate faults (loss, partition, link outage,
        duplication, reordering) recorded by the network model and the
        environment's ``"dead-target"`` drops.
        """
        return list(self.network.events)

    @property
    def undeliverable(self) -> list[tuple[str, str]]:
        """(source, destination) pairs of messages dropped because the target was dead.

        Kept for compatibility; :attr:`delivery_events` carries the full
        structured record (including substrate-level drops).
        """
        return [
            (event.source, event.destination)
            for event in self.network.events
            if event.kind == "dead-target"
        ]

    # -- execution -----------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run the simulation (see :meth:`SimKernel.run`)."""
        self.kernel.run(until=until, max_events=max_events)

    def run_until(self, condition: Callable[[], bool], timeout: float, check_interval: float = 0.001) -> bool:
        """Run until ``condition()`` becomes true or ``timeout`` elapses.

        Returns ``True`` if the condition was met.  The condition is checked
        after every processed event and at ``check_interval`` heartbeats so
        that quiescent systems still time out promptly.
        """
        deadline = self.kernel.now + timeout
        while self.kernel.now <= deadline:
            if condition():
                return True
            if not self.kernel.step():
                return condition()
            if self.kernel.now > deadline:
                break
        return condition()

    def read_clock(self, host_name: str) -> float:
        """Read a host's hardware clock at the current instant."""
        return self.host(host_name).read_clock()

    def clock_table(self) -> dict[str, HardwareClock]:
        """Mapping of host name to its hardware clock (ground truth for tests)."""
        return {name: host.clock for name, host in self._hosts.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Environment(hosts={sorted(self._hosts)}, processes={len(self._processes)}, "
            f"t={self.kernel.now:.6f})"
        )
