"""Deterministic random-number streams for the simulation.

Every stochastic component of the substrate (network jitter, scheduler
delays, application workloads) draws from its own named stream derived from
a single experiment seed.  Using independent named streams keeps results
reproducible even when the set of components or the order in which they
draw numbers changes between library versions.
"""

from __future__ import annotations

import hashlib
import random


#: The type of one named stream.  Deterministic modules annotate injected
#: streams with this alias instead of importing :mod:`random` themselves —
#: this module is the only sanctioned importer (lint rule R001).
RandomStream = random.Random


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` streams.

    Parameters
    ----------
    seed:
        Master seed.  Two :class:`RandomStreams` built from the same seed
        hand out identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(self.derive(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of ours."""
        return RandomStreams(self.derive(name))

    def derive(self, name: str) -> int:
        """Derive the 64-bit seed for ``name`` without creating a stream.

        This is the public, stable seed-derivation function: anything that
        needs a raw integer seed tied to this factory (for example the
        campaign runner deriving per-experiment seeds, possibly in a worker
        process) must use it rather than reimplementing the hash, so serial
        and parallel execution provably agree on every seed.
        """
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    #: Backwards-compatible alias; prefer :meth:`derive`.
    _derive = derive

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
