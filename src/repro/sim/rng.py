"""Deterministic random-number streams for the simulation.

Every stochastic component of the substrate (network jitter, scheduler
delays, application workloads) draws from its own named stream derived from
a single experiment seed.  Using independent named streams keeps results
reproducible even when the set of components or the order in which they
draw numbers changes between library versions.
"""

from __future__ import annotations

import hashlib
import random

try:  # numpy accelerates block draws; the pure-python fallback is bit-identical
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None  # type: ignore[assignment]


#: The type of one named stream.  Deterministic modules annotate injected
#: streams with this alias instead of importing :mod:`random` themselves —
#: this module is the only sanctioned importer (lint rule R001).
RandomStream = random.Random


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` streams.

    Parameters
    ----------
    seed:
        Master seed.  Two :class:`RandomStreams` built from the same seed
        hand out identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(self.derive(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of ours."""
        return RandomStreams(self.derive(name))

    def derive(self, name: str) -> int:
        """Derive the 64-bit seed for ``name`` without creating a stream.

        This is the public, stable seed-derivation function: anything that
        needs a raw integer seed tied to this factory (for example the
        campaign runner deriving per-experiment seeds, possibly in a worker
        process) must use it rather than reimplementing the hash, so serial
        and parallel execution provably agree on every seed.
        """
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    #: Backwards-compatible alias; prefer :meth:`derive`.
    _derive = derive

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"


# ---------------------------------------------------------------------------
# Uniform-variate sources: per-call draws and RNG-order-preserving blocks
# ---------------------------------------------------------------------------
#
# Every distribution the substrate samples on its hot paths reduces to a
# sequence of ``Random.random()`` calls: ``expovariate(lambd)`` is
# ``-log(1 - random()) / lambd`` and ``uniform(a, b)`` is
# ``a + (b - a) * random()`` (CPython's own implementations).  A *uniform
# source* exposes exactly that underlying double sequence, which lets the
# delivery engine pre-draw it in chunks without changing which variate
# feeds which decision — the consumption order, and hence every simulated
# outcome, stays bit-identical to per-call draws.


class DirectUniformSource:
    """Uniform doubles drawn one at a time from the wrapped stream.

    The legacy draw discipline: every :meth:`next` is one
    ``Random.random()`` call, made at the moment the variate is consumed.
    """

    __slots__ = ("_random",)

    def __init__(self, rng: random.Random) -> None:
        self._random = rng.random

    def next(self) -> float:
        """The next uniform double in [0, 1) from the stream."""
        return self._random()


class BlockUniformSource:
    """Uniform doubles pre-drawn from the wrapped stream in fixed chunks.

    Refilling transplants the stream's Mersenne-Twister state into a numpy
    ``RandomState`` (the two share the generator *and* the 53-bit double
    construction), vectorizes one ``random_sample(chunk)`` call, and writes
    the advanced state back — so the block holds exactly the doubles the
    wrapped stream would have produced, and the stream continues past the
    block seamlessly.  Without numpy the refill falls back to ``chunk``
    plain ``random()`` calls, which is bit-identical by construction.

    The wrapped stream must not be drawn from by anyone else while a block
    is outstanding: its state is already advanced past the block's end.
    The delivery engine owns its ``"network"`` stream exclusively, which is
    what makes the pre-draw transparent there (pinned by the batched-
    delivery golden test).
    """

    __slots__ = ("_rng", "_chunk", "buffer")

    def __init__(self, rng: random.Random, chunk: int = 512) -> None:
        if chunk < 2:
            raise ValueError("block sizes below 2 defeat pre-drawing; use DirectUniformSource")
        self._rng = rng
        self._chunk = chunk
        #: The outstanding block, stored reversed so :meth:`next` is a
        #: C-level ``list.pop`` from the end, which still hands the
        #: doubles out in draw order.  The list object is *stable* —
        #: :meth:`refill` mutates it in place — so hot consumers may bind
        #: ``buffer.pop`` once, call it directly, and :meth:`refill` on
        #: the resulting ``IndexError`` when the block runs dry.
        self.buffer: list[float] = []

    def next(self) -> float:
        """The next uniform double in [0, 1) from the pre-drawn block."""
        block = self.buffer
        if not block:
            self.refill()
        return block.pop()

    def refill(self) -> None:
        """Pre-draw the next chunk into :attr:`buffer` (in place)."""
        if _np is None:  # pragma: no cover - numpy is a baked-in dependency
            block = [self._rng.random() for _ in range(self._chunk)]
        else:
            version, internal, gauss_next = self._rng.getstate()
            transplant = _np.random.RandomState()
            transplant.set_state(
                ("MT19937", _np.array(internal[:-1], dtype=_np.uint32), internal[-1])
            )
            block = transplant.random_sample(self._chunk).tolist()
            advanced = transplant.get_state()
            self._rng.setstate(
                (version, tuple(map(int, advanced[1])) + (int(advanced[2]),), gauss_next)
            )
        block.reverse()
        self.buffer[:] = block


#: What both source flavours satisfy (kept structural so the delivery
#: engine can bind ``source.next`` without an isinstance dance).
UniformSource = DirectUniformSource | BlockUniformSource


def uniform_source(rng: random.Random, chunk: int = 0) -> UniformSource:
    """A uniform-variate source over ``rng``: blocked when ``chunk >= 2``.

    ``chunk`` of 0 or 1 selects per-call draws (the legacy discipline);
    anything larger pre-draws in chunks of that size.  Both flavours
    produce the identical double sequence.
    """
    if chunk >= 2:
        return BlockUniformSource(rng, chunk)
    return DirectUniformSource(rng)
