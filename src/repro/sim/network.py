"""LAN and intra-host communication model.

The paper's Section 3.4 compares runtime designs partly on the cost of
message hops: an intra-host IPC hop (shared memory plus a semaphore) costs
on the order of 20 microseconds while a TCP/IP hop on the experimental LAN
costs on the order of 150 microseconds.  The network model reproduces this
with per-link delay profiles (a fixed base delay plus exponential jitter)
and optional message loss for fault-injection of the substrate itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RuntimeConfigurationError
from repro.sim.kernel import SimKernel
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class LinkProfile:
    """Delay characteristics of one communication link.

    Attributes
    ----------
    base_delay:
        Minimum one-way delay in seconds.
    jitter_mean:
        Mean of the exponentially distributed jitter added to the base
        delay, in seconds.  ``0`` disables jitter.
    loss_probability:
        Probability that a message on this link is silently dropped.
    """

    base_delay: float = 150e-6
    jitter_mean: float = 30e-6
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter_mean < 0:
            raise RuntimeConfigurationError("link delays cannot be negative")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise RuntimeConfigurationError("loss probability must be within [0, 1]")

    def sample_delay(self, rng) -> float:
        """Draw one one-way delay from this profile."""
        delay = self.base_delay
        if self.jitter_mean > 0:
            delay += rng.expovariate(1.0 / self.jitter_mean)
        return delay


#: Shared-memory / semaphore hop between two processes on the same host.
IPC_PROFILE = LinkProfile(base_delay=20e-6, jitter_mean=5e-6)

#: TCP/IP hop between two hosts on the experimental LAN.
LAN_TCP_PROFILE = LinkProfile(base_delay=150e-6, jitter_mean=30e-6)


@dataclass
class NetworkMessage:
    """A message in flight between two endpoints.

    Endpoints are opaque strings of the form ``"host/process"`` assigned by
    the :class:`~repro.sim.environment.Environment`.
    """

    source: str
    destination: str
    payload: Any
    sent_at: float
    size_bytes: int = 0
    metadata: dict = field(default_factory=dict)


class Network:
    """Delivers messages between endpoints with per-link delay profiles."""

    def __init__(
        self,
        kernel: SimKernel,
        streams: RandomStreams,
        default_profile: LinkProfile = LAN_TCP_PROFILE,
    ) -> None:
        self._kernel = kernel
        self._rng = streams.stream("network")
        self._default_profile = default_profile
        self._link_profiles: dict[tuple[str, str], LinkProfile] = {}
        self._partitions: set[frozenset[str]] = set()
        self._arrival_floor: dict[tuple[str, str], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    def set_link_profile(self, source: str, destination: str, profile: LinkProfile) -> None:
        """Override the delay profile for one directed endpoint pair."""
        self._link_profiles[(source, destination)] = profile

    def profile_for(self, source: str, destination: str) -> LinkProfile:
        """Return the profile that governs messages from source to destination."""
        return self._link_profiles.get((source, destination), self._default_profile)

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Drop all traffic between endpoints of the two groups."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal_partitions(self) -> None:
        """Remove all active partitions."""
        self._partitions.clear()

    def is_partitioned(self, source: str, destination: str) -> bool:
        """Whether traffic between the two endpoints is currently dropped."""
        return frozenset((source, destination)) in self._partitions

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        deliver: Callable[[NetworkMessage], None],
        profile: LinkProfile | None = None,
        size_bytes: int = 0,
    ) -> NetworkMessage:
        """Send ``payload`` from ``source`` to ``destination``.

        ``deliver`` is invoked with the :class:`NetworkMessage` after the
        sampled link delay, unless the message is lost or the endpoints are
        partitioned.  Returns the in-flight message object.
        """
        message = NetworkMessage(
            source=source,
            destination=destination,
            payload=payload,
            sent_at=self._kernel.now,
            size_bytes=size_bytes,
        )
        self.messages_sent += 1
        if self.is_partitioned(source, destination):
            self.messages_dropped += 1
            return message
        link = profile or self.profile_for(source, destination)
        if link.loss_probability > 0 and self._rng.random() < link.loss_probability:
            self.messages_dropped += 1
            return message
        delay = link.sample_delay(self._rng)
        # TCP (and the shared-memory IPC queue) deliver in order per
        # connection: a message must not overtake an earlier one on the
        # same directed endpoint pair, however the jitter draws land.  The
        # kernel breaks equal-time ties by insertion order, so clamping to
        # the pair's arrival floor preserves FIFO exactly.
        pair = (source, destination)
        arrival = max(self._kernel.now + delay, self._arrival_floor.get(pair, 0.0))
        self._arrival_floor[pair] = arrival
        self._kernel.schedule_at(arrival, self._deliver, message, deliver)
        return message

    def _deliver(self, message: NetworkMessage, deliver: Callable[[NetworkMessage], None]) -> None:
        self.messages_delivered += 1
        deliver(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Network(sent={self.messages_sent}, delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped})"
        )
