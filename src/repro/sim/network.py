"""LAN and intra-host communication model.

The paper's Section 3.4 compares runtime designs partly on the cost of
message hops: an intra-host IPC hop (shared memory plus a semaphore) costs
on the order of 20 microseconds while a TCP/IP hop on the experimental LAN
costs on the order of 150 microseconds.  The network model reproduces this
with per-link delay profiles (a fixed base delay plus exponential jitter)
and optional message loss for fault-injection of the substrate itself.

Delivery is topology-aware: a :class:`NetworkModel` routes every message
over the :class:`~repro.sim.topology.Topology` link of its source and
destination hosts, and the link's mutable
:class:`~repro.sim.topology.LinkState` decides whether the message flows,
how it is delayed, and whether it is lost, duplicated, or reordered.  Link
state can be mutated mid-experiment through the fault-injection layer
(:meth:`NetworkModel.apply`), which makes partitions, asymmetric outages,
and degradation schedulable and state-triggerable exactly like crash
faults.  Every substrate-level delivery anomaly is recorded as a structured
:class:`DeliveryEvent` instead of being silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import RuntimeConfigurationError
from repro.sim.kernel import SimKernel
from repro.sim.rng import RandomStream, RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology imports LinkProfile)
    from repro.sim.topology import LinkState, NetworkFaultSpec, Partition, Topology


@dataclass(frozen=True)
class LinkProfile:
    """Delay characteristics of one communication link.

    Attributes
    ----------
    base_delay:
        Minimum one-way delay in seconds.
    jitter_mean:
        Mean of the exponentially distributed jitter added to the base
        delay, in seconds.  ``0`` disables jitter.
    loss_probability:
        Probability that a message on this link is silently dropped.
    """

    base_delay: float = 150e-6
    jitter_mean: float = 30e-6
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter_mean < 0:
            raise RuntimeConfigurationError("link delays cannot be negative")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise RuntimeConfigurationError("loss probability must be within [0, 1]")

    def sample_delay(self, rng: RandomStream) -> float:
        """Draw one one-way delay from this profile."""
        delay = self.base_delay
        if self.jitter_mean > 0:
            delay += rng.expovariate(1.0 / self.jitter_mean)
        return delay


#: Shared-memory / semaphore hop between two processes on the same host.
IPC_PROFILE = LinkProfile(base_delay=20e-6, jitter_mean=5e-6)

#: TCP/IP hop between two hosts on the experimental LAN.
LAN_TCP_PROFILE = LinkProfile(base_delay=150e-6, jitter_mean=30e-6)


@dataclass
class NetworkMessage:
    """A message in flight between two endpoints.

    Endpoints are opaque strings of the form ``"host/process"`` assigned by
    the :class:`~repro.sim.environment.Environment`.
    """

    source: str
    destination: str
    payload: Any
    sent_at: float
    size_bytes: int = 0
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True)
class DeliveryEvent:
    """One substrate-level delivery anomaly, recorded for analysis.

    Attributes
    ----------
    kind:
        What happened: ``"lost"`` (probabilistic loss), ``"partitioned"``
        (an active partition separates the hosts), ``"link-down"`` (the
        directed link is down), ``"dead-target"`` (the destination process
        does not exist or is not alive), ``"duplicated"`` (a second copy
        was delivered), or ``"reordered"`` (the message bypassed the FIFO
        floor).
    source / destination:
        The endpoints as the sender addressed them (environment-level
        events use process names, network-level events use
        ``"host/process"`` endpoints).
    time:
        Physical simulation time of the event.
    detail:
        Free-form context (e.g. the link name).
    """

    kind: str
    source: str
    destination: str
    time: float
    detail: str = ""


@dataclass(frozen=True)
class NetworkMutation:
    """A record of one runtime change to the network model."""

    time: float
    label: str
    description: str


class NetworkModel:
    """Routes messages over a topology of links with mutable state.

    This is the delivery engine of the substrate: it resolves each
    message's link from the source/destination hosts, samples loss and
    delay from the link's current state, enforces the per-connection FIFO
    floor (TCP and the IPC queue deliver in order per directed endpoint
    pair), and applies runtime link mutations (:meth:`apply`).

    For the default fully connected topology the engine consumes the
    ``"network"`` random stream in exactly the order the pre-topology
    implementation did — one loss draw only when the profile is lossy, one
    jitter draw only when the profile has jitter — so existing campaigns
    reproduce bit-identically.  Duplication and reordering draw additional
    randomness only on links where they have been switched on.
    """

    def __init__(
        self,
        kernel: SimKernel,
        streams: RandomStreams,
        topology: "Topology | None" = None,
        default_profile: LinkProfile = LAN_TCP_PROFILE,
        ipc_profile: LinkProfile = IPC_PROFILE,
    ) -> None:
        # Function-level import: network.py defines LinkProfile, which
        # topology.py imports at module level, so the reverse import must
        # happen after this module is initialized.  Bound once here to
        # keep import machinery off the per-message hot path.
        from repro.sim.topology import Topology, host_of

        if topology is None:
            topology = Topology(ipc_profile=ipc_profile, default_profile=default_profile)
        self._host_of = host_of
        self._kernel = kernel
        self._rng = streams.stream("network")
        self._topology = topology
        self._arrival_floor: dict[tuple[str, str], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.events: list[DeliveryEvent] = []
        self.mutations: list[NetworkMutation] = []

    @property
    def topology(self) -> "Topology":
        """The topology this engine routes over."""
        return self._topology

    def _record_mutation(self, label: str, description: str) -> None:
        self.mutations.append(
            NetworkMutation(time=self._kernel.now, label=label, description=description)
        )

    def record_event(
        self, kind: str, source: str, destination: str, detail: str = ""
    ) -> None:
        """Append one structured delivery event (also used by the environment)."""
        self.events.append(
            DeliveryEvent(
                kind=kind,
                source=source,
                destination=destination,
                time=self._kernel.now,
                detail=detail,
            )
        )

    # -- static configuration ----------------------------------------------------

    def set_link_profile(
        self,
        source: str,
        destination: str,
        profile: LinkProfile,
        symmetric: bool = False,
    ) -> None:
        """Pin the profile of one directed host-to-host link.

        Accepts bare host names or ``"host/process"`` endpoints (the
        pre-topology contract) — endpoints are normalized to their hosts,
        matching how :meth:`send` resolves links.
        """
        self._topology.set_profile(
            self._host_of(source), self._host_of(destination), profile, symmetric
        )

    def profile_for(self, source: str, destination: str) -> LinkProfile:
        """The profile currently governing messages between two endpoints."""
        host_of = self._host_of
        return self._topology.link(host_of(source), host_of(destination)).profile

    # -- runtime link mutation ----------------------------------------------------

    def partition(
        self, *groups: Iterable[str], duration: float | None = None, label: str = ""
    ) -> "Partition":
        """Cut traffic between host groups; auto-heal after ``duration`` if given.

        Returns the partition's identity token (see
        :meth:`~repro.sim.topology.Topology.remove_partition`).
        """
        token = self._topology.partition(groups)
        if duration is not None:
            self._kernel.schedule(duration, self._expire_partition, token, label)
        return token

    def _expire_partition(self, token: "Partition", label: str) -> None:
        if self._topology.remove_partition(token):
            self._record_mutation(label, "auto-heal partition")

    def heal_partitions(self) -> None:
        """Remove all active partitions (link states are left untouched)."""
        self._topology.clear_partitions()

    def heal(self) -> None:
        """Remove every partition and restore every link to pristine state."""
        self._topology.heal()

    def is_partitioned(self, source: str, destination: str) -> bool:
        """Whether traffic between the two endpoints is cut by a partition."""
        host_of = self._host_of
        return self._topology.is_partitioned(host_of(source), host_of(destination))

    def set_link_down(
        self,
        source_host: str,
        destination_host: str,
        symmetric: bool = True,
        duration: float | None = None,
        label: str = "",
    ) -> None:
        """Take a link down (both directions unless ``symmetric=False``).

        With ``duration``, the link comes back up automatically — unless a
        newer ``set_link_down`` re-armed the outage in the meantime (each
        expiry only undoes the mutation that scheduled it, so repeated
        ``always``-triggered faults extend the outage instead of having a
        stale timer cut the newest window short).
        """
        token = object()
        links = self._topology.links_for(source_host, destination_host, symmetric)
        for link in links:
            link.up = False
            link.down_token = token
        if duration is not None:
            self._kernel.schedule(duration, self._expire_link_down, links, token, label)

    def _expire_link_down(self, links: list[LinkState], token: object, label: str) -> None:
        restored: list[str] = []
        for link in links:
            if link.down_token is token:
                link.up = True
                link.down_token = None
                restored.append(link.name)
        if restored:
            self._record_mutation(label, f"auto link_up {', '.join(restored)}")

    def set_link_up(
        self, source_host: str, destination_host: str, symmetric: bool = True
    ) -> None:
        """Bring a link back up (also disarms any pending auto-undo)."""
        for link in self._topology.links_for(source_host, destination_host, symmetric):
            link.up = True
            link.down_token = None

    def degrade(
        self,
        source_host: str,
        destination_host: str,
        profile: LinkProfile,
        symmetric: bool = True,
        duration: float | None = None,
        label: str = "",
    ) -> None:
        """Replace a link's profile (restoring the previous one after ``duration``).

        Without ``duration`` the change is permanent (it becomes the new
        baseline a later timed degrade restores to).  With ``duration``
        the scheduled restore is token-guarded like :meth:`set_link_down`
        — only the newest timed degrade's expiry fires — and overlapping
        timed degrades restore the profile from *before* the chain
        started, so repeated ``always``-triggered faults extend the
        degradation window instead of making it permanent.
        """
        links = self._topology.links_for(source_host, destination_host, symmetric)
        if duration is None:
            for link in links:
                link.profile = profile
                link.profile_token = None
                link.restore_profile = None
            return
        token = object()
        for link in links:
            if link.profile_token is None:
                link.restore_profile = link.profile
            link.profile = profile
            link.profile_token = token
        self._kernel.schedule(duration, self._expire_degrade, links, token, label)

    def _expire_degrade(self, links: list[LinkState], token: object, label: str) -> None:
        restored: list[str] = []
        for link in links:
            if link.profile_token is token:
                link.profile = link.restore_profile
                link.profile_token = None
                link.restore_profile = None
                restored.append(link.name)
        if restored:
            self._record_mutation(label, f"auto profile restore {', '.join(restored)}")

    def set_loss(
        self,
        source_host: str,
        destination_host: str,
        probability: float,
        symmetric: bool = True,
    ) -> None:
        """Set the loss probability of a link (keeping its delay profile).

        Persists for the rest of the experiment (no auto-undo) and disarms
        any pending degrade restore so the new loss setting is not stomped.
        """
        for link in self._topology.links_for(source_host, destination_host, symmetric):
            link.profile = replace(link.profile, loss_probability=probability)
            link.profile_token = None
            link.restore_profile = None

    def set_duplicate(
        self,
        source_host: str,
        destination_host: str,
        probability: float,
        symmetric: bool = True,
    ) -> None:
        """Set the duplicate-delivery probability of a link."""
        for link in self._topology.links_for(source_host, destination_host, symmetric):
            link.duplicate_probability = probability

    def set_reorder(
        self,
        source_host: str,
        destination_host: str,
        probability: float,
        window: float,
        symmetric: bool = True,
    ) -> None:
        """Let messages on a link bypass FIFO with the given probability."""
        if window <= 0.0:
            raise RuntimeConfigurationError("reorder window must be positive")
        for link in self._topology.links_for(source_host, destination_host, symmetric):
            link.reorder_probability = probability
            link.reorder_window = window

    def apply(self, spec: "NetworkFaultSpec", label: str = "") -> None:
        """Apply one declarative network mutation (the fault-layer entry point).

        Called by the fault parser when a state-triggered network fault
        fires and by the kernel for scheduled network faults; every
        application is recorded on :attr:`mutations`.
        """
        from repro.sim.topology import NetworkFaultKind

        kind = spec.kind
        if kind is NetworkFaultKind.PARTITION:
            self.partition(*spec.groups, duration=spec.duration, label=label)
        elif kind is NetworkFaultKind.HEAL:
            self.heal()
        elif kind is NetworkFaultKind.LINK_DOWN:
            self.set_link_down(
                *spec.link, symmetric=spec.symmetric, duration=spec.duration, label=label
            )
        elif kind is NetworkFaultKind.LINK_UP:
            self.set_link_up(*spec.link, symmetric=spec.symmetric)
        elif kind is NetworkFaultKind.DEGRADE:
            self.degrade(
                *spec.link,
                profile=spec.profile,
                symmetric=spec.symmetric,
                duration=spec.duration,
                label=label,
            )
        elif kind is NetworkFaultKind.SET_LOSS:
            self.set_loss(*spec.link, probability=spec.probability, symmetric=spec.symmetric)
        elif kind is NetworkFaultKind.SET_DUPLICATE:
            self.set_duplicate(
                *spec.link, probability=spec.probability, symmetric=spec.symmetric
            )
        elif kind is NetworkFaultKind.SET_REORDER:
            self.set_reorder(
                *spec.link,
                probability=spec.probability,
                window=spec.window,
                symmetric=spec.symmetric,
            )
        else:  # pragma: no cover - exhaustive over the enum
            raise RuntimeConfigurationError(f"unknown network fault kind {kind!r}")
        self._record_mutation(label, spec.to_token())

    # -- delivery ------------------------------------------------------------------

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        deliver: Callable[[NetworkMessage], None],
        profile: LinkProfile | None = None,
        size_bytes: int = 0,
    ) -> NetworkMessage:
        """Send ``payload`` from ``source`` to ``destination``.

        ``deliver`` is invoked with the :class:`NetworkMessage` after the
        sampled link delay, unless the message is lost or its link is cut.
        Returns the in-flight message object.
        """
        host_of = self._host_of
        message = NetworkMessage(
            source=source,
            destination=destination,
            payload=payload,
            sent_at=self._kernel.now,
            size_bytes=size_bytes,
        )
        self.messages_sent += 1
        source_host = host_of(source)
        destination_host = host_of(destination)
        link = self._topology.link(source_host, destination_host)
        blocked = self._topology.blocked_reason(source_host, destination_host, link)
        if blocked is not None:
            self.messages_dropped += 1
            self.record_event(blocked, source, destination, detail=link.name)
            return message
        chosen = profile or link.profile
        if chosen.loss_probability > 0 and self._rng.random() < chosen.loss_probability:
            self.messages_dropped += 1
            self.record_event("lost", source, destination, detail=link.name)
            return message
        delay = chosen.sample_delay(self._rng)
        # TCP (and the shared-memory IPC queue) deliver in order per
        # connection: a message must not overtake an earlier one on the
        # same directed endpoint pair, however the jitter draws land.  The
        # kernel breaks equal-time ties by insertion order, so clamping to
        # the pair's arrival floor preserves FIFO exactly.  A reordering
        # link deliberately breaks that guarantee: the reordered message
        # skips the floor (and leaves it untouched) so later messages can
        # overtake it.
        pair = (source, destination)
        if link.reorder_probability > 0 and self._rng.random() < link.reorder_probability:
            arrival = (
                self._kernel.now
                + delay
                + self._rng.uniform(0.0, link.reorder_window)
            )
            self.messages_reordered += 1
            self.record_event("reordered", source, destination, detail=link.name)
        else:
            arrival = max(self._kernel.now + delay, self._arrival_floor.get(pair, 0.0))
            self._arrival_floor[pair] = arrival
        self._kernel.schedule_at(arrival, self._deliver, message, deliver)
        if link.duplicate_probability > 0 and self._rng.random() < link.duplicate_probability:
            duplicate_delay = chosen.sample_delay(self._rng)
            duplicate_arrival = max(
                self._kernel.now + duplicate_delay, self._arrival_floor.get(pair, 0.0)
            )
            self._arrival_floor[pair] = duplicate_arrival
            self.messages_duplicated += 1
            self.record_event("duplicated", source, destination, detail=link.name)
            self._kernel.schedule_at(duplicate_arrival, self._deliver, message, deliver)
        return message

    def _deliver(self, message: NetworkMessage, deliver: Callable[[NetworkMessage], None]) -> None:
        self.messages_delivered += 1
        deliver(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NetworkModel(sent={self.messages_sent}, delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped}, duplicated={self.messages_duplicated}, "
            f"reordered={self.messages_reordered})"
        )


#: Backwards-compatible alias: the pre-topology delivery engine was ``Network``.
Network = NetworkModel
