"""LAN and intra-host communication model.

The paper's Section 3.4 compares runtime designs partly on the cost of
message hops: an intra-host IPC hop (shared memory plus a semaphore) costs
on the order of 20 microseconds while a TCP/IP hop on the experimental LAN
costs on the order of 150 microseconds.  The network model reproduces this
with per-link delay profiles (a fixed base delay plus exponential jitter)
and optional message loss for fault-injection of the substrate itself.

Delivery is topology-aware: a :class:`NetworkModel` routes every message
over the :class:`~repro.sim.topology.Topology` link of its source and
destination hosts, and the link's mutable
:class:`~repro.sim.topology.LinkState` decides whether the message flows,
how it is delayed, and whether it is lost, duplicated, or reordered.  Link
state can be mutated mid-experiment through the fault-injection layer
(:meth:`NetworkModel.apply`), which makes partitions, asymmetric outages,
and degradation schedulable and state-triggerable exactly like crash
faults.  Every substrate-level delivery anomaly is recorded as a structured
:class:`DeliveryEvent` instead of being silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import log
from typing import TYPE_CHECKING, Any, Callable, Iterable, NamedTuple

from repro.errors import RuntimeConfigurationError
from repro.sim.kernel import SimKernel
from repro.sim.rng import BlockUniformSource, RandomStream, RandomStreams, uniform_source

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology imports LinkProfile)
    from repro.sim.topology import LinkState, NetworkFaultSpec, Partition, Topology


#: How many uniform variates the delivery engine pre-draws from the
#: ``"network"`` stream per refill.  ``0`` selects the legacy per-call draw
#: discipline; any chunking produces the same variates in the same order
#: (see :mod:`repro.sim.rng`), so this is a pure throughput knob — the
#: differential suite runs every scenario at both settings to prove it.
DEFAULT_DRAW_CHUNK = 4096


@dataclass(frozen=True, slots=True)
class LinkProfile:
    """Delay characteristics of one communication link.

    Attributes
    ----------
    base_delay:
        Minimum one-way delay in seconds.
    jitter_mean:
        Mean of the exponentially distributed jitter added to the base
        delay, in seconds.  ``0`` disables jitter.
    loss_probability:
        Probability that a message on this link is silently dropped.
    """

    base_delay: float = 150e-6
    jitter_mean: float = 30e-6
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter_mean < 0:
            raise RuntimeConfigurationError("link delays cannot be negative")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise RuntimeConfigurationError("loss probability must be within [0, 1]")

    def sample_delay(self, rng: RandomStream) -> float:
        """Draw one one-way delay from this profile."""
        if self.jitter_mean > 0:
            return self.delay_from_uniform(rng.random())
        return self.base_delay

    def delay_from_uniform(self, u: float) -> float:
        """The delay a jittered profile produces from one uniform variate.

        This is ``base_delay + expovariate(1.0 / jitter_mean)`` with the
        variate made explicit, replicating ``random.expovariate`` operation
        by operation (``-log(1 - u) / lambd`` with ``lambd`` computed as
        the reciprocal first) so pre-drawn and per-call variates yield
        bit-identical delays.  Only meaningful when ``jitter_mean > 0`` —
        callers must branch on that *before* consuming a variate, because
        jitter-free profiles draw nothing.
        """
        return self.base_delay + -log(1.0 - u) / (1.0 / self.jitter_mean)


#: Shared-memory / semaphore hop between two processes on the same host.
IPC_PROFILE = LinkProfile(base_delay=20e-6, jitter_mean=5e-6)

#: TCP/IP hop between two hosts on the experimental LAN.
LAN_TCP_PROFILE = LinkProfile(base_delay=150e-6, jitter_mean=30e-6)


class NetworkMessage(NamedTuple):
    """A message in flight between two endpoints.

    Endpoints are opaque strings of the form ``"host/process"`` assigned by
    the :class:`~repro.sim.environment.Environment`.  A named tuple rather
    than a dataclass: messages are created once per send on the hottest
    path in the simulator, and a tuple of atomic fields is both cheaper to
    build and invisible to the cyclic GC, whose generation scans otherwise
    pace large send bursts.  ``metadata`` carries optional caller context
    (attach it at construction; messages are immutable).
    """

    source: str
    destination: str
    payload: Any
    sent_at: float
    size_bytes: int = 0
    metadata: dict | None = None


@dataclass(frozen=True, slots=True)
class DeliveryEvent:
    """One substrate-level delivery anomaly, recorded for analysis.

    Attributes
    ----------
    kind:
        What happened: ``"lost"`` (probabilistic loss), ``"partitioned"``
        (an active partition separates the hosts), ``"link-down"`` (the
        directed link is down), ``"dead-target"`` (the destination process
        does not exist or is not alive), ``"duplicated"`` (a second copy
        was delivered), or ``"reordered"`` (the message bypassed the FIFO
        floor).
    source / destination:
        The endpoints as the sender addressed them (environment-level
        events use process names, network-level events use
        ``"host/process"`` endpoints).
    time:
        Physical simulation time of the event.
    detail:
        Free-form context (e.g. the link name).
    """

    kind: str
    source: str
    destination: str
    time: float
    detail: str = ""


class _Route:
    """Resolved per-endpoint-pair delivery state, cached across sends.

    Holds the directed link (a stable object every fault operation mutates
    in place), the endpoints' host names, and the pair's FIFO arrival
    floor — one cache lookup per send instead of separate host, link, and
    floor lookups.
    """

    __slots__ = ("link", "source_host", "destination_host", "floor")

    def __init__(self, link: "LinkState", source_host: str, destination_host: str) -> None:
        self.link = link
        self.source_host = source_host
        self.destination_host = destination_host
        self.floor = 0.0


@dataclass(frozen=True, slots=True)
class NetworkMutation:
    """A record of one runtime change to the network model."""

    time: float
    label: str
    description: str


class NetworkModel:
    """Routes messages over a topology of links with mutable state.

    This is the delivery engine of the substrate: it resolves each
    message's link from the source/destination hosts, samples loss and
    delay from the link's current state, enforces the per-connection FIFO
    floor (TCP and the IPC queue deliver in order per directed endpoint
    pair), and applies runtime link mutations (:meth:`apply`).

    For the default fully connected topology the engine consumes the
    ``"network"`` random stream in exactly the order the pre-topology
    implementation did — one loss draw only when the profile is lossy, one
    jitter draw only when the profile has jitter — so existing campaigns
    reproduce bit-identically.  Duplication and reordering draw additional
    randomness only on links where they have been switched on.
    """

    def __init__(
        self,
        kernel: SimKernel,
        streams: RandomStreams,
        topology: "Topology | None" = None,
        default_profile: LinkProfile = LAN_TCP_PROFILE,
        ipc_profile: LinkProfile = IPC_PROFILE,
        draw_chunk: int | None = None,
    ) -> None:
        # Function-level import: network.py defines LinkProfile, which
        # topology.py imports at module level, so the reverse import must
        # happen after this module is initialized.  Bound once here to
        # keep import machinery off the per-message hot path.
        from repro.sim.topology import Topology, host_of

        if topology is None:
            topology = Topology(ipc_profile=ipc_profile, default_profile=default_profile)
        self._host_of = host_of
        self._kernel = kernel
        self._rng = streams.stream("network")
        # The engine owns the "network" stream exclusively, so it may
        # pre-draw uniform variates in chunks without perturbing anyone
        # else; the source hands them out in exactly per-call order.
        chunk = DEFAULT_DRAW_CHUNK if draw_chunk is None else draw_chunk
        source = uniform_source(self._rng, chunk)
        self._next_u = source.next
        # The jitter draw happens once per delivered message, so it skips
        # even the source's ``next`` frame: ``_draw_u`` is the C-level
        # ``pop`` of the source's stable buffer (refilled in place on
        # IndexError via ``_refill_u``) — or ``Random.random`` itself in
        # per-call mode, where the except branch is unreachable.  Both
        # bindings consume the same underlying double sequence as
        # ``_next_u``, in the same order.
        if isinstance(source, BlockUniformSource):
            self._draw_u = source.buffer.pop
            self._refill_u = source.refill
        else:
            self._draw_u = self._rng.random
            self._refill_u = source.next
        self._topology = topology
        # Resolved routes per endpoint pair: host_of is a pure function of
        # the endpoint string and links are stable objects mutated in
        # place, so cached routes never go stale.  _partitions aliases the
        # topology's live partition list, and the four _posted_* bindings
        # alias the kernel's monotone event lane (all stable objects,
        # mutated in place only) for the per-send fast paths; see
        # :meth:`send`.
        self._routes: dict[tuple[str, str], _Route] = {}
        self._partitions = topology._partitions
        self._posted_times = kernel._posted_times
        self._append_seq = kernel._posted_seqs.append
        self._append_callback = kernel._posted_callbacks.append
        self._append_arg = kernel._posted_args.append
        self._next_seq = kernel._seq.__next__
        # ``_make`` is ``classmethod(tuple.__new__)`` — the C-level
        # constructor behind the generated ``__new__``, whose extra
        # Python frame is measurable at one message per send.
        self._make_message = NetworkMessage._make
        self.messages_sent = 0
        #: Messages committed to delivery (loss, outage, and partition
        #: checks all passed).  Committed deliveries are uncancellable, so
        #: the count is final as soon as the message is queued; a run cut
        #: short by a time horizon may therefore count messages still in
        #: flight at the cutoff.
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.events: list[DeliveryEvent] = []
        self.mutations: list[NetworkMutation] = []

    @property
    def topology(self) -> "Topology":
        """The topology this engine routes over."""
        return self._topology

    def _record_mutation(self, label: str, description: str) -> None:
        self.mutations.append(
            NetworkMutation(time=self._kernel.now, label=label, description=description)
        )

    def record_event(
        self, kind: str, source: str, destination: str, detail: str = ""
    ) -> None:
        """Append one structured delivery event (also used by the environment)."""
        self.events.append(
            DeliveryEvent(
                kind=kind,
                source=source,
                destination=destination,
                time=self._kernel.now,
                detail=detail,
            )
        )

    # -- static configuration ----------------------------------------------------

    def set_link_profile(
        self,
        source: str,
        destination: str,
        profile: LinkProfile,
        symmetric: bool = False,
    ) -> None:
        """Pin the profile of one directed host-to-host link.

        Accepts bare host names or ``"host/process"`` endpoints (the
        pre-topology contract) — endpoints are normalized to their hosts,
        matching how :meth:`send` resolves links.
        """
        self._topology.set_profile(
            self._host_of(source), self._host_of(destination), profile, symmetric
        )

    def profile_for(self, source: str, destination: str) -> LinkProfile:
        """The profile currently governing messages between two endpoints."""
        host_of = self._host_of
        return self._topology.link(host_of(source), host_of(destination)).profile

    # -- runtime link mutation ----------------------------------------------------

    def partition(
        self, *groups: Iterable[str], duration: float | None = None, label: str = ""
    ) -> "Partition":
        """Cut traffic between host groups; auto-heal after ``duration`` if given.

        Returns the partition's identity token (see
        :meth:`~repro.sim.topology.Topology.remove_partition`).
        """
        token = self._topology.partition(groups)
        if duration is not None:
            self._kernel.schedule(duration, self._expire_partition, token, label)
        return token

    def _expire_partition(self, token: "Partition", label: str) -> None:
        if self._topology.remove_partition(token):
            self._record_mutation(label, "auto-heal partition")

    def heal_partitions(self) -> None:
        """Remove all active partitions (link states are left untouched)."""
        self._topology.clear_partitions()

    def heal(self) -> None:
        """Remove every partition and restore every link to pristine state."""
        self._topology.heal()

    def is_partitioned(self, source: str, destination: str) -> bool:
        """Whether traffic between the two endpoints is cut by a partition."""
        host_of = self._host_of
        return self._topology.is_partitioned(host_of(source), host_of(destination))

    def set_link_down(
        self,
        source_host: str,
        destination_host: str,
        symmetric: bool = True,
        duration: float | None = None,
        label: str = "",
    ) -> None:
        """Take a link down (both directions unless ``symmetric=False``).

        With ``duration``, the link comes back up automatically — unless a
        newer ``set_link_down`` re-armed the outage in the meantime (each
        expiry only undoes the mutation that scheduled it, so repeated
        ``always``-triggered faults extend the outage instead of having a
        stale timer cut the newest window short).
        """
        token = object()
        links = self._topology.links_for(source_host, destination_host, symmetric)
        for link in links:
            link.up = False
            link.down_token = token
        if duration is not None:
            self._kernel.schedule(duration, self._expire_link_down, links, token, label)

    def _expire_link_down(self, links: list[LinkState], token: object, label: str) -> None:
        restored: list[str] = []
        for link in links:
            if link.down_token is token:
                link.up = True
                link.down_token = None
                restored.append(link.name)
        if restored:
            self._record_mutation(label, f"auto link_up {', '.join(restored)}")

    def set_link_up(
        self, source_host: str, destination_host: str, symmetric: bool = True
    ) -> None:
        """Bring a link back up (also disarms any pending auto-undo)."""
        for link in self._topology.links_for(source_host, destination_host, symmetric):
            link.up = True
            link.down_token = None

    def degrade(
        self,
        source_host: str,
        destination_host: str,
        profile: LinkProfile,
        symmetric: bool = True,
        duration: float | None = None,
        label: str = "",
    ) -> None:
        """Replace a link's profile (restoring the previous one after ``duration``).

        Without ``duration`` the change is permanent (it becomes the new
        baseline a later timed degrade restores to).  With ``duration``
        the scheduled restore is token-guarded like :meth:`set_link_down`
        — only the newest timed degrade's expiry fires — and overlapping
        timed degrades restore the profile from *before* the chain
        started, so repeated ``always``-triggered faults extend the
        degradation window instead of making it permanent.
        """
        links = self._topology.links_for(source_host, destination_host, symmetric)
        if duration is None:
            for link in links:
                link.profile = profile
                link.profile_token = None
                link.restore_profile = None
            return
        token = object()
        for link in links:
            if link.profile_token is None:
                link.restore_profile = link.profile
            link.profile = profile
            link.profile_token = token
        self._kernel.schedule(duration, self._expire_degrade, links, token, label)

    def _expire_degrade(self, links: list[LinkState], token: object, label: str) -> None:
        restored: list[str] = []
        for link in links:
            if link.profile_token is token:
                link.profile = link.restore_profile
                link.profile_token = None
                link.restore_profile = None
                restored.append(link.name)
        if restored:
            self._record_mutation(label, f"auto profile restore {', '.join(restored)}")

    def set_loss(
        self,
        source_host: str,
        destination_host: str,
        probability: float,
        symmetric: bool = True,
    ) -> None:
        """Set the loss probability of a link (keeping its delay profile).

        Persists for the rest of the experiment (no auto-undo) and disarms
        any pending degrade restore so the new loss setting is not stomped.
        """
        for link in self._topology.links_for(source_host, destination_host, symmetric):
            link.profile = replace(link.profile, loss_probability=probability)
            link.profile_token = None
            link.restore_profile = None

    def set_duplicate(
        self,
        source_host: str,
        destination_host: str,
        probability: float,
        symmetric: bool = True,
    ) -> None:
        """Set the duplicate-delivery probability of a link."""
        for link in self._topology.links_for(source_host, destination_host, symmetric):
            link.duplicate_probability = probability

    def set_reorder(
        self,
        source_host: str,
        destination_host: str,
        probability: float,
        window: float,
        symmetric: bool = True,
    ) -> None:
        """Let messages on a link bypass FIFO with the given probability."""
        if window <= 0.0:
            raise RuntimeConfigurationError("reorder window must be positive")
        for link in self._topology.links_for(source_host, destination_host, symmetric):
            link.reorder_probability = probability
            link.reorder_window = window

    def apply(self, spec: "NetworkFaultSpec", label: str = "") -> None:
        """Apply one declarative network mutation (the fault-layer entry point).

        Called by the fault parser when a state-triggered network fault
        fires and by the kernel for scheduled network faults; every
        application is recorded on :attr:`mutations`.
        """
        from repro.sim.topology import NetworkFaultKind

        kind = spec.kind
        if kind is NetworkFaultKind.PARTITION:
            self.partition(*spec.groups, duration=spec.duration, label=label)
        elif kind is NetworkFaultKind.HEAL:
            self.heal()
        elif kind is NetworkFaultKind.LINK_DOWN:
            self.set_link_down(
                *spec.link, symmetric=spec.symmetric, duration=spec.duration, label=label
            )
        elif kind is NetworkFaultKind.LINK_UP:
            self.set_link_up(*spec.link, symmetric=spec.symmetric)
        elif kind is NetworkFaultKind.DEGRADE:
            self.degrade(
                *spec.link,
                profile=spec.profile,
                symmetric=spec.symmetric,
                duration=spec.duration,
                label=label,
            )
        elif kind is NetworkFaultKind.SET_LOSS:
            self.set_loss(*spec.link, probability=spec.probability, symmetric=spec.symmetric)
        elif kind is NetworkFaultKind.SET_DUPLICATE:
            self.set_duplicate(
                *spec.link, probability=spec.probability, symmetric=spec.symmetric
            )
        elif kind is NetworkFaultKind.SET_REORDER:
            self.set_reorder(
                *spec.link,
                probability=spec.probability,
                window=spec.window,
                symmetric=spec.symmetric,
            )
        else:  # pragma: no cover - exhaustive over the enum
            raise RuntimeConfigurationError(f"unknown network fault kind {kind!r}")
        self._record_mutation(label, spec.to_token())

    # -- delivery ------------------------------------------------------------------

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        deliver: Callable[[NetworkMessage], None],
        profile: LinkProfile | None = None,
        size_bytes: int = 0,
    ) -> NetworkMessage:
        """Send ``payload`` from ``source`` to ``destination``.

        ``deliver`` is invoked with the :class:`NetworkMessage` after the
        sampled link delay, unless the message is lost or its link is cut.
        Returns the in-flight message object.
        """
        now = self._kernel._now  # .now is a Python-level property; this path is hot
        message = self._make_message((source, destination, payload, now, size_bytes, None))
        self.messages_sent += 1
        pair = (source, destination)
        route = self._routes.get(pair)
        if route is None:
            source_host = self._host_of(source)
            destination_host = self._host_of(destination)
            route = _Route(
                self._topology.link(source_host, destination_host),
                source_host,
                destination_host,
            )
            self._routes[pair] = route
        link = route.link
        if not link.up or self._partitions:
            blocked = self._topology.blocked_reason(
                route.source_host, route.destination_host, link
            )
            if blocked is not None:
                self.messages_dropped += 1
                self.record_event(blocked, source, destination, detail=link.name)
                return message
        # Each draw below consumes the "network" stream's next uniform
        # variate, conditionally and in the exact order of the per-call
        # implementation (loss, jitter, reorder check, reorder offset,
        # duplicate check, duplicate jitter) — the delay and offset math
        # replicates expovariate/uniform operation by operation (see
        # LinkProfile.delay_from_uniform), so chunked pre-drawing cannot
        # change a single simulated outcome.
        chosen = profile or link.profile
        next_u = self._next_u
        if chosen.loss_probability > 0 and next_u() < chosen.loss_probability:
            self.messages_dropped += 1
            self.record_event("lost", source, destination, detail=link.name)
            return message
        jitter_mean = chosen.jitter_mean
        if jitter_mean > 0:
            try:
                u = self._draw_u()
            except IndexError:  # block ran dry; refill it in place
                self._refill_u()
                u = self._draw_u()
            delay = chosen.base_delay + -log(1.0 - u) / (1.0 / jitter_mean)
        else:
            delay = chosen.base_delay
        # TCP (and the shared-memory IPC queue) deliver in order per
        # connection: a message must not overtake an earlier one on the
        # same directed endpoint pair, however the jitter draws land.  The
        # kernel breaks equal-time ties by insertion order, so clamping to
        # the pair's arrival floor preserves FIFO exactly.  A reordering
        # link deliberately breaks that guarantee: the reordered message
        # skips the floor (and leaves it untouched) so later messages can
        # overtake it.
        if link.reorder_probability > 0 and next_u() < link.reorder_probability:
            arrival = now + delay + (0.0 + (link.reorder_window - 0.0) * next_u())
            self.messages_reordered += 1
            self.record_event("reordered", source, destination, detail=link.name)
        else:
            arrival = now + delay
            floor = route.floor
            if floor > arrival:
                arrival = floor
            route.floor = arrival
        # Inlined kernel.post_at: delays are never negative, so arrival is
        # a valid event time, and the flat monotone-lane append below is
        # what post_at itself would do whenever the lane's tail allows it.
        # Posted events can never be cancelled, so delivery is committed
        # the moment the event is queued — the counter is incremented here
        # and the event invokes ``deliver`` directly, with no per-message
        # bookkeeping trampoline between the kernel and the receiver.
        self.messages_delivered += 1
        times = self._posted_times
        if times and arrival < times[-1]:
            self._kernel.post_at(arrival, deliver, message)
        else:
            times.append(arrival)
            self._append_seq(self._next_seq())
            self._append_callback(deliver)
            self._append_arg(message)
        if link.duplicate_probability > 0 and next_u() < link.duplicate_probability:
            if jitter_mean > 0:
                duplicate_delay = (
                    chosen.base_delay + -log(1.0 - next_u()) / (1.0 / jitter_mean)
                )
            else:
                duplicate_delay = chosen.base_delay
            duplicate_arrival = max(now + duplicate_delay, route.floor)
            route.floor = duplicate_arrival
            self.messages_duplicated += 1
            self.messages_delivered += 1
            self.record_event("duplicated", source, destination, detail=link.name)
            self._kernel.post_at(duplicate_arrival, deliver, message)
        return message

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NetworkModel(sent={self.messages_sent}, delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped}, duplicated={self.messages_duplicated}, "
            f"reordered={self.messages_reordered})"
        )


#: Backwards-compatible alias: the pre-topology delivery engine was ``Network``.
Network = NetworkModel
