"""Topology-aware network substrate: named links with mutable state.

The original substrate modelled exactly two static link profiles (intra-host
IPC and inter-host LAN/TCP) over an implicitly fully connected, always
healthy network.  This module makes the network a first-class object: a
:class:`Topology` holds one directed link per host pair (plus the intra-host
IPC link of every host), each link carrying a mutable :class:`LinkState`
over its :class:`~repro.sim.network.LinkProfile`.  Link state can change at
runtime — partitions, asymmetric outages, degradation, loss, duplication,
reordering — which turns the canonical distributed-systems fault classes
into schedulable, state-triggerable faults (see
:class:`NetworkFaultSpec` and :mod:`repro.core.specs.fault_spec`).

The default topology (no overrides, no mutations) reproduces the old
behaviour *bit for bit*: the same links resolve to the same profiles and the
delivery engine consumes the random stream in exactly the same order, so
every pre-existing scenario keeps its campaign measures unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import RuntimeConfigurationError, SpecificationError
from repro.sim.network import IPC_PROFILE, LAN_TCP_PROFILE, LinkProfile


def host_of(endpoint: str) -> str:
    """The host part of a ``"host/process"`` endpoint (the whole string if bare)."""
    return endpoint.split("/", 1)[0]


@dataclass(slots=True)
class LinkState:
    """Mutable state of one directed link.

    Attributes
    ----------
    name:
        Human-readable link name, e.g. ``"hosta->hostb"`` (or
        ``"hosta->hosta"`` for the intra-host IPC link).
    profile:
        The delay/loss profile currently governing the link.  Degrading a
        link replaces the profile; healing restores the original.
    up:
        Whether the link carries traffic at all.  ``False`` models a hard
        (possibly one-way) link outage.
    duplicate_probability:
        Probability that a delivered message is delivered a second time
        (with an independently sampled second delay).
    reorder_probability:
        Probability that a message bypasses the per-connection FIFO floor
        and is delayed by an extra uniform draw from ``reorder_window``,
        allowing later messages to overtake it.
    reorder_window:
        Width (seconds) of the extra delay drawn for reordered messages.
    """

    name: str
    profile: LinkProfile
    up: bool = True
    duplicate_probability: float = 0.0
    reorder_probability: float = 0.0
    reorder_window: float = 0.0

    #: The profile the link was created with (what ``heal`` restores).
    default_profile: LinkProfile = field(default=None, repr=False)  # type: ignore[assignment]

    #: Identity tokens of the latest outage / degradation, used by the
    #: auto-undo timers: an expiry only reverts the mutation that armed it,
    #: never a newer one (mirrors the partition tokens).
    down_token: object | None = field(default=None, repr=False, compare=False)
    profile_token: object | None = field(default=None, repr=False, compare=False)
    #: What the pending timed degrade will restore: the profile from
    #: *before* the degrade chain started (overlapping timed degrades must
    #: not snapshot each other's degraded profiles as the restore target).
    restore_profile: LinkProfile | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.default_profile is None:
            self.default_profile = self.profile

    def restore(self) -> None:
        """Bring the link back to its pristine state."""
        self.profile = self.default_profile
        self.up = True
        self.duplicate_probability = 0.0
        self.reorder_probability = 0.0
        self.reorder_window = 0.0
        self.down_token = None
        self.profile_token = None
        self.restore_profile = None


class Partition:
    """One active partition: host groups whose cross-traffic is cut.

    Instances are compared by *identity* — two partitions over the same
    groups are distinct objects — so an auto-heal timer holding one as its
    token can never remove a newer, identical-looking partition installed
    after a heal.
    """

    __slots__ = ("groups",)

    def __init__(self, groups: tuple[frozenset[str], ...]) -> None:
        self.groups = groups

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        rendered = " | ".join("{" + ", ".join(sorted(group)) + "}" for group in self.groups)
        return f"Partition({rendered})"


class Topology:
    """Named directed links between hosts, plus per-host IPC links.

    Links are created lazily with the topology's default profiles (the IPC
    profile for ``host -> same host``, the inter-host profile otherwise), so
    a topology with no explicit configuration behaves exactly like the old
    fully connected network.  Partitions are tracked separately from
    individual link outages: traffic between two hosts flows only when the
    (directed) link is up *and* no active partition separates them.
    """

    def __init__(
        self,
        ipc_profile: LinkProfile = IPC_PROFILE,
        default_profile: LinkProfile = LAN_TCP_PROFILE,
    ) -> None:
        self.ipc_profile = ipc_profile
        self.default_profile = default_profile
        self._links: dict[tuple[str, str], LinkState] = {}
        self._partitions: list[Partition] = []

    # -- links -----------------------------------------------------------------

    def link(self, source_host: str, destination_host: str) -> LinkState:
        """The directed link from one host to another (lazily created)."""
        key = (source_host, destination_host)
        state = self._links.get(key)
        if state is None:
            profile = (
                self.ipc_profile
                if source_host == destination_host
                else self.default_profile
            )
            state = LinkState(
                name=f"{source_host}->{destination_host}", profile=profile
            )
            self._links[key] = state
        return state

    def links(self) -> dict[tuple[str, str], LinkState]:
        """Every link instantiated so far, keyed by (source, destination) host."""
        return dict(self._links)

    def set_profile(
        self,
        source_host: str,
        destination_host: str,
        profile: LinkProfile,
        symmetric: bool = False,
    ) -> None:
        """Pin the profile of one directed link (both directions if symmetric).

        Also becomes the link's *default* profile, i.e. what ``heal``
        restores — use this for static topology configuration, and
        :meth:`LinkState.profile` assignment (via ``degrade``) for runtime
        degradation.
        """
        for src, dst in self._directions(source_host, destination_host, symmetric):
            link = self.link(src, dst)
            link.profile = profile
            link.default_profile = profile

    @staticmethod
    def _directions(
        source_host: str, destination_host: str, symmetric: bool
    ) -> tuple[tuple[str, str], ...]:
        if symmetric and source_host != destination_host:
            return ((source_host, destination_host), (destination_host, source_host))
        return ((source_host, destination_host),)

    def links_for(
        self, source_host: str, destination_host: str, symmetric: bool = True
    ) -> list[LinkState]:
        """The link(s) a mutation addresses: one directed link, or both.

        The public seam the delivery engine's mutation API goes through
        (``symmetric=False`` selects only the ``source -> destination``
        direction, modelling one-way failures).
        """
        return [
            self.link(src, dst)
            for src, dst in self._directions(source_host, destination_host, symmetric)
        ]

    # -- connectivity ----------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> Partition:
        """Cut all traffic between hosts that lie in different groups.

        Hosts not named in any group are unaffected.  Returns the
        :class:`Partition` as an identity token, which
        :meth:`remove_partition` accepts (used for auto-healing after a
        duration).
        """
        frozen = tuple(frozenset(group) for group in groups)
        if len(frozen) < 2:
            raise RuntimeConfigurationError(
                "a partition needs at least two groups of hosts"
            )
        token = Partition(frozen)
        self._partitions.append(token)
        return token

    def remove_partition(self, token: Partition) -> bool:
        """Remove one partition previously installed by :meth:`partition`.

        Matching is by identity: a stale auto-heal timer whose partition
        was already removed (e.g. by a global heal) is a no-op even if an
        identical-looking partition has been installed since.  Returns
        whether the partition was still active.
        """
        for index, active in enumerate(self._partitions):
            if active is token:
                del self._partitions[index]
                return True
        return False

    def clear_partitions(self) -> None:
        """Remove every active partition (link states are left untouched)."""
        self._partitions.clear()

    def heal(self) -> None:
        """Remove every partition and restore every link to pristine state."""
        self._partitions.clear()
        # repro-lint: disable=R003 restore() is per-link and order-insensitive
        for link in self._links.values():
            link.restore()

    def is_partitioned(self, source_host: str, destination_host: str) -> bool:
        """Whether an active partition separates the two hosts."""
        for active in self._partitions:
            source_group = None
            destination_group = None
            for index, group in enumerate(active.groups):
                if source_host in group:
                    source_group = index
                if destination_host in group:
                    destination_group = index
            if (
                source_group is not None
                and destination_group is not None
                and source_group != destination_group
            ):
                return True
        return False

    def blocked_reason(
        self,
        source_host: str,
        destination_host: str,
        link: LinkState | None = None,
    ) -> str | None:
        """Why traffic cannot flow right now (``None`` when it can).

        Checks the directed link's up flag first, then active partitions,
        and draws no randomness — connectivity is a pure function of the
        topology state.  ``link`` lets a caller that already resolved the
        directed link (the per-message hot path) skip the second lookup.
        """
        if link is None:
            link = self.link(source_host, destination_host)
        if not link.up:
            return "link-down"
        if self.is_partitioned(source_host, destination_host):
            return "partitioned"
        return None

    @property
    def partitions(self) -> tuple[tuple[frozenset[str], ...], ...]:
        """The currently active partitions' host groups."""
        return tuple(active.groups for active in self._partitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Topology(links={sorted(self._links)}, "
            f"partitions={len(self._partitions)})"
        )


# ---------------------------------------------------------------------------
# Network fault specifications
# ---------------------------------------------------------------------------


class NetworkFaultKind(enum.Enum):
    """The mutation a network fault performs on the topology."""

    PARTITION = "partition"
    HEAL = "heal"
    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    DEGRADE = "degrade"
    SET_LOSS = "set_loss"
    SET_DUPLICATE = "set_duplicate"
    SET_REORDER = "set_reorder"


#: Kinds that operate on a single (directed) link.
_LINK_KINDS = frozenset(
    {
        NetworkFaultKind.LINK_DOWN,
        NetworkFaultKind.LINK_UP,
        NetworkFaultKind.DEGRADE,
        NetworkFaultKind.SET_LOSS,
        NetworkFaultKind.SET_DUPLICATE,
        NetworkFaultKind.SET_REORDER,
    }
)

#: Kinds that accept a probability argument.
_PROBABILITY_KINDS = frozenset(
    {
        NetworkFaultKind.SET_LOSS,
        NetworkFaultKind.SET_DUPLICATE,
        NetworkFaultKind.SET_REORDER,
    }
)

#: Kinds whose mutation can be automatically undone after a duration.
_DURATION_KINDS = frozenset(
    {
        NetworkFaultKind.PARTITION,
        NetworkFaultKind.LINK_DOWN,
        NetworkFaultKind.DEGRADE,
    }
)


#: Characters (and one literal word) the network-fault token grammar uses
#: as delimiters; host names referenced by a spec must avoid them so the
#: token round-trips losslessly.
_TOKEN_DELIMITERS = ("+", "|", ";", "=", "[", "]", "->", " ")


def _check_token_safe_host(host: str) -> None:
    if not host or host == "one-way" or any(d in host for d in _TOKEN_DELIMITERS):
        raise SpecificationError(
            f"host name {host!r} cannot be referenced by a network fault: "
            "names must be non-empty, must not be the literal 'one-way', and "
            f"must not contain any of {' '.join(_TOKEN_DELIMITERS)!r}"
        )


@dataclass(frozen=True)
class NetworkFaultSpec:
    """One declarative network mutation.

    The same specification is usable two ways: attached to a
    :class:`~repro.core.specs.fault_spec.FaultDefinition` it becomes a
    state-triggered network fault (injected by the fault parser exactly
    like a crash fault), and wrapped in a :class:`ScheduledNetworkFault`
    it fires at a fixed virtual time after experiment start.

    Attributes
    ----------
    kind:
        The mutation to perform.
    groups:
        For ``PARTITION``: the host groups to separate.
    link:
        For link-level kinds: the ``(source_host, destination_host)`` pair.
    symmetric:
        For link-level kinds: whether the mutation applies in both
        directions (``False`` models asymmetric/one-way failures).
    profile:
        For ``DEGRADE``: the replacement link profile.
    probability:
        For ``SET_LOSS`` / ``SET_DUPLICATE`` / ``SET_REORDER``.
    window:
        For ``SET_REORDER``: width of the extra delay for reordered
        messages, in seconds.
    duration:
        Optional, for ``PARTITION`` / ``LINK_DOWN`` / ``DEGRADE`` only:
        automatically undo the mutation (heal the partition, bring the
        link back up, restore the previous profile) this many simulated
        seconds after it is applied; other kinds reject it.  Each expiry
        is token-guarded: it only reverts the mutation that armed it,
        never a newer one.
    """

    kind: NetworkFaultKind
    groups: tuple[tuple[str, ...], ...] = ()
    link: tuple[str, str] | None = None
    symmetric: bool = True
    profile: LinkProfile | None = None
    probability: float | None = None
    window: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.kind is NetworkFaultKind.PARTITION:
            if len(self.groups) < 2:
                raise SpecificationError(
                    "a partition fault needs at least two host groups"
                )
            for group in self.groups:
                for host in group:
                    _check_token_safe_host(host)
        elif self.kind in _LINK_KINDS:
            if self.link is None:
                raise SpecificationError(
                    f"network fault kind {self.kind.value!r} needs a (source, destination) link"
                )
            for host in self.link:
                _check_token_safe_host(host)
        if self.kind is NetworkFaultKind.DEGRADE and self.profile is None:
            raise SpecificationError("a degrade fault needs a replacement LinkProfile")
        if self.kind in _PROBABILITY_KINDS:
            if self.probability is None or not 0.0 <= self.probability <= 1.0:
                raise SpecificationError(
                    f"network fault kind {self.kind.value!r} needs a probability in [0, 1]"
                )
        if self.kind is NetworkFaultKind.SET_REORDER and self.window <= 0.0:
            raise SpecificationError("a reorder fault needs a positive window")
        if self.duration is not None:
            if self.kind not in _DURATION_KINDS:
                raise SpecificationError(
                    f"network fault kind {self.kind.value!r} does not support a "
                    "duration (only partition, link_down, and degrade auto-undo)"
                )
            if self.duration <= 0.0:
                raise SpecificationError("a network fault duration must be positive")

    # -- textual form ------------------------------------------------------------

    def to_token(self) -> str:
        """Render as the single space-free token used in fault-spec lines.

        The token round-trips through :meth:`from_token`, so fault
        specifications carrying network faults keep the parse/format
        symmetry of the textual format (and the token is stable, making it
        safe for store fingerprints and the README scenario table).
        """
        parts: list[str] = []
        if self.kind is NetworkFaultKind.PARTITION:
            parts.append("|".join("+".join(group) for group in self.groups))
        elif self.link is not None:
            parts.append(f"{self.link[0]}->{self.link[1]}")
            if not self.symmetric:
                parts.append("one-way")
        if self.profile is not None:
            parts.append(f"base={self.profile.base_delay!r}")
            parts.append(f"jitter={self.profile.jitter_mean!r}")
            parts.append(f"loss={self.profile.loss_probability!r}")
        if self.probability is not None:
            parts.append(f"p={self.probability!r}")
        if self.kind is NetworkFaultKind.SET_REORDER:
            parts.append(f"window={self.window!r}")
        if self.duration is not None:
            parts.append(f"duration={self.duration!r}")
        body = ";".join(parts)
        return f"network:{self.kind.value}[{body}]" if body else f"network:{self.kind.value}"

    @classmethod
    def from_token(cls, token: str) -> "NetworkFaultSpec":
        """Parse a token produced by :meth:`to_token`."""
        if not token.startswith("network:"):
            raise SpecificationError(f"not a network fault token: {token!r}")
        rest = token[len("network:") :]
        body = ""
        if "[" in rest:
            if not rest.endswith("]"):
                raise SpecificationError(f"malformed network fault token: {token!r}")
            rest, body = rest.split("[", 1)
            body = body[:-1]
        try:
            kind = NetworkFaultKind(rest)
        except ValueError:
            raise SpecificationError(
                f"unknown network fault kind {rest!r} in token {token!r}"
            ) from None
        groups: tuple[tuple[str, ...], ...] = ()
        link: tuple[str, str] | None = None
        symmetric = True
        probability: float | None = None
        window = 0.0
        duration: float | None = None
        profile_parts: dict[str, float] = {}
        for part in filter(None, body.split(";")):
            if part == "one-way":
                symmetric = False
            elif "->" in part and "=" not in part:
                source, _, destination = part.partition("->")
                link = (source, destination)
            elif "=" in part:
                key, _, value = part.partition("=")
                if key in ("base", "jitter", "loss"):
                    profile_parts[key] = float(value)
                elif key == "p":
                    probability = float(value)
                elif key == "window":
                    window = float(value)
                elif key == "duration":
                    duration = float(value)
                else:
                    raise SpecificationError(
                        f"unknown network fault argument {key!r} in token {token!r}"
                    )
            elif kind is NetworkFaultKind.PARTITION:
                groups = tuple(
                    tuple(host for host in group.split("+") if host)
                    for group in part.split("|")
                )
            else:
                raise SpecificationError(
                    f"unexpected network fault argument {part!r} in token {token!r}"
                )
        profile = None
        if profile_parts:
            profile = LinkProfile(
                base_delay=profile_parts.get("base", 0.0),
                jitter_mean=profile_parts.get("jitter", 0.0),
                loss_probability=profile_parts.get("loss", 0.0),
            )
        return cls(
            kind=kind,
            groups=groups,
            link=link,
            symmetric=symmetric,
            profile=profile,
            probability=probability,
            window=window,
            duration=duration,
        )


# ---------------------------------------------------------------------------
# Study-level network configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduledNetworkFault:
    """A network mutation fired at a fixed time after experiment start.

    ``at`` is measured in simulated seconds from the end of the
    pre-experiment synchronization mini-phase (the instant the application
    starts), so schedules are insensitive to the sync phase's duration.
    """

    at: float
    spec: NetworkFaultSpec
    name: str = ""

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise SpecificationError("a scheduled network fault cannot fire before start")

    def describe(self) -> str:
        """One stable line for scenario metadata and fingerprints."""
        label = self.name or "net"
        return f"{label} @{self.at!r}s {self.spec.to_token()}"


@dataclass(frozen=True)
class NetworkConfig:
    """The declarative network model of one study.

    ``link_profiles`` pins profiles for specific directed host pairs (the
    remaining links keep the study's IPC/LAN defaults); ``schedule`` lists
    the timer-driven network faults.  State-triggered network faults live
    on :class:`~repro.core.specs.fault_spec.FaultDefinition` instead, next
    to the crash faults they generalize.  The whole object has a stable
    ``repr`` and is part of the study fingerprint, so archived campaigns
    are invalidated when the network model changes.
    """

    link_profiles: tuple[tuple[str, str, LinkProfile], ...] = ()
    schedule: tuple[ScheduledNetworkFault, ...] = ()

    def __iter__(self) -> Iterator[ScheduledNetworkFault]:
        return iter(self.schedule)

    def describe(self) -> tuple[str, ...]:
        """One line per scheduled fault (for scenario metadata tables)."""
        return tuple(item.describe() for item in self.schedule)
