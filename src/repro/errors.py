"""Exception hierarchy for the Loki reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish specification problems from runtime or
analysis problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SpecificationError(ReproError):
    """A user-provided specification file or object is malformed.

    Raised by the parsers for state-machine specifications, fault
    specifications, node files, daemon files, and study files, as well as by
    the in-memory builders when a specification is inconsistent (for example
    a transition that targets a state missing from the global state list).
    """


class ExpressionError(SpecificationError):
    """A Boolean fault expression or predicate expression is malformed."""


class RuntimeConfigurationError(ReproError):
    """The runtime phase was configured inconsistently.

    Examples: a node references a host that is not part of the machines
    file, two state machines share a nickname, or a design choice that does
    not support dynamic node entry is asked to start a node mid-experiment.
    """


class UnknownScenarioError(ReproError):
    """A scenario name was not found in the scenario registry.

    Raised by :meth:`repro.scenarios.ScenarioRegistry.get`; the message
    lists the known scenario names so a typo is immediately diagnosable.
    """


class RuntimePhaseError(ReproError):
    """An unrecoverable error occurred while executing an experiment."""


class UnknownStateMachineError(RuntimePhaseError):
    """A notification or fault expression referenced an unknown machine."""


class TimelineFormatError(ReproError):
    """A local timeline file could not be parsed."""


class AnalysisError(ReproError):
    """The analysis phase could not complete."""


class ClockSynchronizationError(AnalysisError):
    """Offline clock synchronization failed.

    Raised when there are not enough synchronization messages between a
    machine and the reference machine to bound the clock offset and drift,
    or when the constraint system is infeasible (which indicates corrupted
    timestamps rather than a merely wide bound).
    """


class StoreError(ReproError):
    """A campaign store operation failed.

    Covers structural problems with a campaign directory (missing or
    unreadable manifest, malformed record files) and misuse of store-loaded
    results (for example trying to re-run the simulator from a
    reconstructed study configuration that has no application factories).
    """


class StoreIntegrityError(StoreError):
    """A campaign store's contents do not match what the caller expects.

    Raised when the manifest of an existing campaign directory disagrees
    with the campaign being attached (different campaign name, or a study
    whose configuration fingerprint changed since the records were
    written), or when a strict load encounters corrupt record lines.  A
    fingerprint mismatch means stored experiments were produced by a
    *different* configuration and silently mixing them into a resumed run
    would poison the campaign's measures.
    """


class ProtocolError(ReproError):
    """A distributed-execution wire message was malformed or truncated.

    A frame cut off mid-message is the signature a killed worker (or
    coordinator) leaves on the socket; the peer treats it as a connection
    loss, not as data.
    """


class ExecutionInterrupted(ReproError):
    """A campaign's execution was abandoned before every experiment ran.

    Raised when worker processes die faster than the configured retry
    budget can absorb (a crashed pool worker, an exhausted distributed
    shard lease).  ``pending`` lists the ``(study_name, experiment_index)``
    pairs that had not completed, so the failure names exactly what was
    lost; when a campaign store was attached, everything that *did*
    complete is already on disk and re-running with the same store resumes
    instead of restarting.
    """

    def __init__(
        self, message: str, pending: list[tuple[str, int]] | None = None
    ) -> None:
        super().__init__(message)
        self.pending = list(pending or [])


class NoWorkersError(ExecutionInterrupted):
    """No distributed worker ever connected to the coordinator.

    The distributed backend catches this and degrades to a serial
    in-process run (with a warning) — zero completions have happened when
    it is raised, so the fallback is safe.
    """


class MeasureError(ReproError):
    """A measure specification is invalid or cannot be evaluated."""


class ObservationFunctionError(MeasureError):
    """An observation function was called with invalid arguments."""


class StatisticsError(MeasureError):
    """A statistical estimator could not be computed (e.g. empty sample)."""
