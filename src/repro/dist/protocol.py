"""Length-prefixed JSON message framing for coordinator/worker sockets.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON (one object per frame).  The format is deliberately
transport- and host-agnostic: the coordinator speaks it over asyncio
streams (:func:`read_message` / :func:`write_message`), the synchronous
worker loop speaks it over a plain socket (:class:`MessageChannel`), and
nothing in a frame assumes the peer shares memory — experiment payloads
cross as :func:`repro.store.format.encode_record` strings, whose round
trip is bit-exact by the store's pinned contract.  Running workers on
another host would change only how the connection is established.

Message vocabulary (the ``type`` field):

==============  =========  ====================================================
Type            Direction  Meaning
==============  =========  ====================================================
``hello``       w -> c     Worker ``worker`` is connected and idle.
``assign``      c -> w     Lease of one shard: run experiments ``start`` to
                           ``stop`` (exclusive) of study index ``study``.
``completion``  w -> c     One finished experiment: ``record`` carries the
                           encoded :class:`~repro.core.campaign.ExperimentResult`.
``shard-done``  w -> c     Every experiment of shard ``shard`` was delivered.
``heartbeat``   w -> c     Liveness beacon, sent every heartbeat interval.
``error``       w -> c     An experiment raised; ``message`` is the traceback.
``shutdown``    c -> w     No more shards; the worker exits its loop.
==============  =========  ====================================================
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from typing import Any, Iterator

from repro.errors import ProtocolError

#: Frames above this size indicate corruption (or a runaway payload), not
#: legitimate traffic; both ends refuse them instead of allocating blindly.
MAX_FRAME_BYTES = 1 << 30

_LENGTH = struct.Struct(">I")

# -- worker -> coordinator ----------------------------------------------------
HELLO = "hello"
HEARTBEAT = "heartbeat"
COMPLETION = "completion"
SHARD_DONE = "shard-done"
ERROR = "error"
# -- coordinator -> worker ----------------------------------------------------
ASSIGN = "assign"
SHUTDOWN = "shutdown"


def encode_frame(message: dict[str, Any]) -> bytes:
    """One message as a length-prefixed JSON frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES}); payload corrupt or unbounded"
        )
    return _LENGTH.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict[str, Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"undecodable protocol frame: {error}") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError(f"protocol frame is not a typed message: {message!r}")
    return message


def decode_frames(data: bytes) -> Iterator[dict[str, Any]]:
    """Decode every complete frame in ``data`` (a testing/debugging aid)."""
    offset = 0
    while offset + _LENGTH.size <= len(data):
        (length,) = _LENGTH.unpack_from(data, offset)
        offset += _LENGTH.size
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
        if offset + length > len(data):
            raise ProtocolError("truncated protocol frame")
        yield _decode_payload(data[offset : offset + length])
        offset += length


async def read_message(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """The next message from an asyncio stream, or ``None`` on clean EOF.

    EOF in the middle of a frame — the signature a SIGKILLed worker leaves
    behind — raises :class:`~repro.errors.ProtocolError` so the supervisor
    can distinguish "worker done" from "worker died mid-message".
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection lost inside a frame header") from None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection lost inside a frame payload") from None
    return _decode_payload(payload)


async def write_message(writer: asyncio.StreamWriter, message: dict[str, Any]) -> None:
    """Send one message over an asyncio stream and drain the buffer."""
    writer.write(encode_frame(message))
    await writer.drain()


class MessageChannel:
    """Synchronous framing over a connected socket (the worker's side).

    Sends are serialized by a lock so the heartbeat thread and the
    experiment loop can share the connection without interleaving frames.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._socket = sock
        self._send_lock = threading.Lock()
        self._buffer = b""

    def send(self, message: dict[str, Any]) -> None:
        """Send one message (thread-safe)."""
        frame = encode_frame(message)
        with self._send_lock:
            self._socket.sendall(frame)

    def _read_exactly(self, count: int) -> bytes | None:
        while len(self._buffer) < count:
            chunk = self._socket.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection lost inside a frame")
                return None
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def recv(self) -> dict[str, Any] | None:
        """The next message, or ``None`` on clean EOF."""
        header = self._read_exactly(_LENGTH.size)
        if header is None:
            return None
        (length,) = _LENGTH.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
        payload = self._read_exactly(length)
        if payload is None:
            raise ProtocolError("connection lost inside a frame payload")
        return _decode_payload(payload)

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - close never meaningfully fails
            pass
