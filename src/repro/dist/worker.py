"""The distributed worker process: run assigned shards, stream records back.

A worker is forked from the coordinating process *after* the campaign has
been published in ``_WORKER_STATE`` (exactly like the process-pool
backend), so unpicklable study contents — application factories, often
closures — reach it through copy-on-write process memory; only shard
bounds and encoded experiment records ever cross the socket.  The worker
connects back to the coordinator over localhost, says hello, and then
loops: lease in (``assign``), run each experiment with the engine's
canonical per-index seed derivation, stream each completed experiment out
as an :func:`~repro.store.format.encode_record` string (bit-exact round
trip), acknowledge the lease (``shard-done``), repeat until ``shutdown``.

Liveness is a daemon thread beating every ``heartbeat_interval_s`` on the
shared channel; the experiment loop never has to pause for it, so a
long-running experiment cannot be mistaken for a dead worker while the
thread keeps beating.  All waiting goes through the injected supervision
clock (lint rule R006).

:class:`WorkerOptions` carries the per-worker spawn parameters — and the
chaos seams the fault-injection harness under ``tests/chaos/`` drives:
``heartbeat_interval_s=None`` silences the beacon (a dropped-heartbeat
fault), ``stall_before_work_s`` freezes the worker after hello (a hang),
and ``duplicate_completions`` sends every record twice (a duplicated-
delivery fault, resolved idempotently by the coordinator).  Injecting
faults into the orchestrator itself is how the paper's own methodology
gets applied to this backend.
"""

from __future__ import annotations

import socket
import threading
import traceback
from dataclasses import dataclass
from typing import Any

from repro.dist import protocol
from repro.dist.supervision import SupervisionClock, SystemClock
from repro.errors import ProtocolError
from repro.store.format import encode_record


@dataclass(frozen=True)
class WorkerOptions:
    """Spawn-time parameters of one worker (picklable, crosses the fork).

    ``heartbeat_interval_s=None`` disables the heartbeat thread;
    ``stall_before_work_s`` and ``duplicate_completions`` are chaos seams
    (see the module docstring).
    """

    worker_id: int
    port: int
    heartbeat_interval_s: float | None = 0.5
    stall_before_work_s: float = 0.0
    duplicate_completions: bool = False


class _HeartbeatThread(threading.Thread):
    """Daemon thread beating on the shared channel every interval."""

    def __init__(
        self,
        channel: protocol.MessageChannel,
        worker_id: int,
        interval_s: float,
        clock: SupervisionClock,
    ) -> None:
        super().__init__(name=f"dist-worker-{worker_id}-heartbeat", daemon=True)
        self._channel = channel
        self._worker_id = worker_id
        self._interval_s = interval_s
        self._clock = clock
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._clock.wait(self._stop, self._interval_s):
            try:
                self._channel.send({"type": protocol.HEARTBEAT, "worker": self._worker_id})
            except OSError:
                return  # coordinator is gone; the main loop notices too

    def stop(self) -> None:
        self._stop.set()


def _run_shard(
    channel: protocol.MessageChannel,
    message: dict[str, Any],
    options: WorkerOptions,
) -> None:
    """Run one assigned shard, streaming a record per experiment."""
    from repro.core.execution import _WORKER_STATE

    campaign = _WORKER_STATE["campaign"]
    runner = _WORKER_STATE["runner"]
    shard_id = message["shard"]
    study = campaign.studies[message["study"]]
    for index in range(message["start"], message["stop"]):
        try:
            result = runner.run_experiment_of(study, index)
        except Exception:
            channel.send(
                {
                    "type": protocol.ERROR,
                    "worker": options.worker_id,
                    "shard": shard_id,
                    "study": message["study"],
                    "index": index,
                    "message": traceback.format_exc(),
                }
            )
            raise
        completion = {
            "type": protocol.COMPLETION,
            "worker": options.worker_id,
            "shard": shard_id,
            "study": message["study"],
            "index": index,
            "record": encode_record(result),
        }
        channel.send(completion)
        if options.duplicate_completions:
            channel.send(completion)
    channel.send(
        {"type": protocol.SHARD_DONE, "worker": options.worker_id, "shard": shard_id}
    )


def worker_main(options: WorkerOptions, clock: SupervisionClock | None = None) -> None:
    """Entry point of a forked worker process.

    Exits quietly when the coordinator closes the connection (clean
    shutdown, or this worker was declared dead and superseded — its work
    is being redone elsewhere, so dying silently is the correct move).
    """
    clock = clock or SystemClock()
    try:
        sock = socket.create_connection(("127.0.0.1", options.port), timeout=30.0)
    except OSError:
        return  # coordinator already gone; nothing to do
    sock.settimeout(None)
    channel = protocol.MessageChannel(sock)
    heartbeat: _HeartbeatThread | None = None
    try:
        channel.send({"type": protocol.HELLO, "worker": options.worker_id})
        if options.heartbeat_interval_s is not None:
            heartbeat = _HeartbeatThread(
                channel, options.worker_id, options.heartbeat_interval_s, clock
            )
            heartbeat.start()
        if options.stall_before_work_s:
            stalled = threading.Event()
            clock.wait(stalled, options.stall_before_work_s)
        while True:
            message = channel.recv()
            if message is None or message["type"] == protocol.SHUTDOWN:
                return
            if message["type"] == protocol.ASSIGN:
                _run_shard(channel, message, options)
    except (OSError, ProtocolError):
        return  # connection torn down under us: superseded or shut down
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        channel.close()
