"""Fault-tolerant distributed campaign orchestration.

This package is the fleet-scale execution backend of the campaign engine
(:mod:`repro.core.execution`): a :class:`CampaignCoordinator` shards a
campaign into contiguous seed-range shards (:mod:`repro.dist.shards`),
dispatches them to forked worker processes over a length-prefixed JSON
protocol on localhost sockets (:mod:`repro.dist.protocol` — the wire
format is host-agnostic, so the same messages would cross a LAN), and
supervises the fleet with heartbeats, per-shard leases, retry with
exponential backoff, and dead-worker shard reassignment
(:mod:`repro.dist.supervision`, :mod:`repro.dist.coordinator`).

The design exploits the seed-derivation contract: every experiment's seed
is ``RandomStreams(study.seed).derive(f"experiment:{name}:{i}")``, a pure
function of the study configuration and the experiment index.  A shard can
therefore run on *any* worker, *any* number of times, in *any* order, and
the merged campaign stays bit-identical to a serial run — which is what
makes crash recovery trivial to verify: the chaos harness under
``tests/chaos/`` SIGKILLs workers mid-shard, drops heartbeats, and
duplicates completions, then asserts bit-identical measures and store
fingerprints.

Select the backend through the ordinary engine configuration::

    ExecutionConfig(backend="distributed", workers=4)

or ``ExecutionConfig.distributed(workers=4)``; ``run_and_analyze(...,
store=...)`` then streams every completed experiment into the campaign
store exactly as the serial and pool backends do, so a killed-and-
restarted campaign heals from the store.
"""

from __future__ import annotations

from repro.dist.coordinator import (
    CampaignCoordinator,
    DistributedExecutor,
    NoWorkersError,
    WorkerOptions,
)
from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    MessageChannel,
    decode_frames,
    encode_frame,
    read_message,
    write_message,
)
from repro.dist.shards import ShardSpec, plan_shards
from repro.dist.supervision import (
    FakeClock,
    HeartbeatMonitor,
    RetryPolicy,
    SupervisionClock,
    SystemClock,
)

__all__ = [
    "CampaignCoordinator",
    "DistributedExecutor",
    "FakeClock",
    "HeartbeatMonitor",
    "MAX_FRAME_BYTES",
    "MessageChannel",
    "NoWorkersError",
    "RetryPolicy",
    "ShardSpec",
    "SupervisionClock",
    "SystemClock",
    "WorkerOptions",
    "decode_frames",
    "encode_frame",
    "plan_shards",
    "read_message",
    "write_message",
]
