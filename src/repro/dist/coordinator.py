"""The campaign coordinator: shard dispatch, liveness, and recovery.

:class:`CampaignCoordinator` owns one distributed campaign run.  Its life
cycle is split to keep forking sound:

1. :meth:`bootstrap` runs in the coordinating thread *before any thread
   exists*: it binds the localhost listening socket, then forks the
   worker processes (which inherit the published campaign through
   copy-on-write memory, exactly like the pool backend — the OS backlog
   holds their connections until the server starts accepting).
2. :meth:`run` drives the asyncio supervision loop — on a dedicated
   thread, with completions bridged back to the coordinating thread so
   the engine's completion sink (and therefore the campaign store) keeps
   running in the coordinating process like on every other backend.

Supervision is lease-based.  Every shard is leased to exactly one worker
at a time; a worker is declared dead on socket EOF (a SIGKILL's
signature) or on heartbeat silence past the configured timeout, and its
leased shard is re-queued after an exponential-backoff delay whose
jitter comes from the dedicated supervision RNG stream.  Completions are
resolved idempotently by ``(study, experiment)`` key — a reassigned
shard whose original worker had already delivered part of its range
produces duplicates, and determinism makes dropping them bit-safe.
Degradation is graceful: fewer workers than requested is a warning, zero
workers falls back to the serial backend, and retry exhaustion raises
:class:`~repro.errors.ExecutionInterrupted` naming the lost shard — with
the campaign store (if attached) already holding everything that
completed, so a re-run heals instead of restarting.

:class:`DistributedExecutor` adapts the coordinator to the execution
engine's backend interface; select it with
``ExecutionConfig(backend="distributed")``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import threading
import warnings
from collections import deque
from dataclasses import dataclass, replace
from queue import SimpleQueue
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.core.execution import (
    ExperimentExecutor,
    _fused_task,
    _WORKER_STATE,
)
from repro.dist import protocol
from repro.dist.shards import ShardSpec, plan_shards
from repro.dist.supervision import (
    HeartbeatMonitor,
    RetryPolicy,
    SupervisionClock,
    SystemClock,
    supervision_stream,
)
from repro.dist.worker import WorkerOptions, worker_main
from repro.errors import (
    ExecutionInterrupted,
    NoWorkersError,
    ProtocolError,
    RuntimeConfigurationError,
    RuntimePhaseError,
)
from repro.store.format import decode_record

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.campaign import CampaignConfig
    from repro.core.execution import ExecutionConfig

#: What the coordinator emits for every first-time completion:
#: ``(study_index, experiment_index, encoded_record)``.
CompletionEmitter = Callable[[int, int, str], None]


@dataclass
class WorkerHandle:
    """Everything the coordinator tracks about one worker process."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    options: WorkerOptions
    writer: asyncio.StreamWriter | None = None
    connected: bool = False
    ever_connected: bool = False
    superseded: bool = False
    shutdown_sent: bool = False
    lease: ShardSpec | None = None


class CampaignCoordinator:
    """Supervises one distributed campaign run (see the module docstring).

    Subclass hooks — :meth:`worker_options` and
    :meth:`chaos_on_completion` — are the seams the chaos harness injects
    faults through; production code never overrides them.
    """

    def __init__(
        self,
        campaign: "CampaignConfig",
        shards: Sequence[ShardSpec],
        *,
        workers: int,
        config: "ExecutionConfig",
        clock: SupervisionClock | None = None,
        connect_timeout_s: float = 10.0,
    ) -> None:
        if workers < 1:
            raise NoWorkersError("a distributed campaign needs at least one worker")
        self.campaign = campaign
        self.shards = list(shards)
        self.requested_workers = workers
        self.config = config
        self.clock = clock or SystemClock()
        self.connect_timeout_s = connect_timeout_s
        self.retry = RetryPolicy.from_execution(config)
        self.rng = supervision_stream(campaign)
        self.monitor = HeartbeatMonitor(config.heartbeat_timeout_s, self.clock)
        self.workers: dict[int, WorkerHandle] = {}
        self.port: int | None = None
        self.stats = {
            "completions": 0,
            "duplicates_dropped": 0,
            "reassignments": 0,
            "workers_lost": 0,
        }
        self._listen_socket: socket.socket | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._emit: CompletionEmitter | None = None
        self._ready: deque[ShardSpec] = deque(self.shards)
        self._attempts: dict[int, int] = {}
        self._completed_shards: set[int] = set()
        self._delivered: set[tuple[int, int]] = set()
        self._done: asyncio.Event | None = None
        self._failure: BaseException | None = None
        self._background: set[asyncio.Task] = set()

    # -- chaos / deployment seams ------------------------------------------------------

    def worker_options(self, worker_id: int) -> WorkerOptions:
        """Spawn parameters of one worker (chaos tests override per worker)."""
        assert self.port is not None, "bootstrap() must bind before spawning"
        return WorkerOptions(
            worker_id=worker_id,
            port=self.port,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
        )

    def chaos_on_completion(
        self, worker_id: int, study_index: int, experiment_index: int
    ) -> None:
        """Hook invoked for every accepted completion (chaos tests override)."""

    # -- phase 1: main-thread bootstrap (bind, then fork) ------------------------------

    def bootstrap(self) -> None:
        """Bind the listening socket and fork the worker fleet.

        Must run before any thread is started so the forked children are
        single-threaded snapshots.  Raises
        :class:`~repro.errors.NoWorkersError` when not a single worker
        process could be spawned (the caller falls back to serial).
        """
        listener = socket.create_server(
            ("127.0.0.1", 0), backlog=max(self.requested_workers, 8)
        )
        self._listen_socket = listener
        self.port = listener.getsockname()[1]
        context = multiprocessing.get_context("fork")
        for worker_id in range(self.requested_workers):
            options = self.worker_options(worker_id)
            process = context.Process(
                target=worker_main,
                args=(options,),
                name=f"dist-worker-{worker_id}",
                daemon=True,
            )
            try:
                process.start()
            except OSError as error:  # pragma: no cover - fork exhaustion
                warnings.warn(
                    f"could not spawn distributed worker {worker_id}: {error}"
                )
                continue
            self.workers[worker_id] = WorkerHandle(
                worker_id=worker_id, process=process, options=options
            )
        if not self.workers:  # pragma: no cover - fork exhaustion
            listener.close()
            raise NoWorkersError("no distributed worker process could be spawned")

    # -- phase 2: the supervision loop -------------------------------------------------

    def run(self, emit: CompletionEmitter) -> dict[str, int]:
        """Drive the campaign to completion; returns the supervision stats.

        ``emit`` is called exactly once per experiment, in completion
        order, with the worker's encoded record.
        """
        try:
            asyncio.run(self._run_async(emit))
        finally:
            self.ensure_workers_stopped()
        return dict(self.stats)

    def request_shutdown(self) -> None:
        """Thread-safe abort: stop supervising without raising (idempotent)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._finish)
            except RuntimeError:  # pragma: no cover - loop closed concurrently
                pass

    def ensure_workers_stopped(self) -> None:
        """Join every worker process, escalating to terminate and kill."""
        for handle in self._handles():
            process = handle.process
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - unkillable worker
                process.kill()
                process.join(timeout=1.0)

    async def _run_async(self, emit: CompletionEmitter) -> None:
        assert self._listen_socket is not None, "bootstrap() must run first"
        self._loop = asyncio.get_running_loop()
        self._emit = emit
        self._done = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, sock=self._listen_socket
        )
        supervise = asyncio.ensure_future(self._supervise())
        census = asyncio.ensure_future(self._connection_census())
        try:
            await self._done.wait()
        finally:
            supervise.cancel()
            census.cancel()
            for task in list(self._background):
                task.cancel()
            await self._shutdown_workers()
            server.close()
            await server.wait_closed()
        if self._failure is not None:
            raise self._failure

    # -- connection handling -----------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        handle: WorkerHandle | None = None
        try:
            hello = await protocol.read_message(reader)
            if hello is None or hello.get("type") != protocol.HELLO:
                writer.close()
                return
            handle = self.workers.get(hello.get("worker", -1))
            if handle is None or handle.connected or handle.superseded:
                writer.close()
                return
            handle.writer = writer
            handle.connected = True
            handle.ever_connected = True
            self.monitor.beat(handle.worker_id)
            self._dispatch()
            while True:
                message = await protocol.read_message(reader)
                if message is None:
                    break
                self._handle_message(handle, message)
        except (ProtocolError, ConnectionError, OSError):
            pass  # a torn connection is handled as a worker failure below
        except asyncio.CancelledError:
            pass  # loop teardown cancelled a blocked read: a closed connection
        if handle is not None:
            self._worker_gone(handle, "connection lost")

    def _handle_message(self, handle: WorkerHandle, message: dict) -> None:
        self.monitor.beat(handle.worker_id)
        kind = message["type"]
        if kind == protocol.HEARTBEAT:
            return
        if kind == protocol.COMPLETION:
            self._handle_completion(handle, message)
        elif kind == protocol.SHARD_DONE:
            self._handle_shard_done(handle, message)
        elif kind == protocol.ERROR:
            study = self.campaign.studies[message["study"]]
            self._fail(
                RuntimePhaseError(
                    f"experiment {study.name}:{message['index']} failed on "
                    f"distributed worker {handle.worker_id}:\n{message['message']}"
                )
            )

    def _handle_completion(self, handle: WorkerHandle, message: dict) -> None:
        key = (message["study"], message["index"])
        if key in self._delivered:
            # A reassigned shard's original worker got here first (or a
            # chaotic worker double-sent): determinism makes the copies
            # bit-identical, so first-wins is safe.
            self.stats["duplicates_dropped"] += 1
            return
        self._delivered.add(key)
        self.stats["completions"] += 1
        assert self._emit is not None
        self._emit(key[0], key[1], message["record"])
        self.chaos_on_completion(handle.worker_id, key[0], key[1])

    def _handle_shard_done(self, handle: WorkerHandle, message: dict) -> None:
        shard_id = message["shard"]
        self._completed_shards.add(shard_id)
        self._attempts.pop(shard_id, None)
        if handle.lease is not None and handle.lease.shard_id == shard_id:
            handle.lease = None
        if len(self._completed_shards) == len(self.shards):
            self._finish()
            return
        self._dispatch()

    # -- dispatch and leases -----------------------------------------------------------

    def _dispatch(self) -> None:
        while self._ready:
            shard = self._ready[0]
            if shard.shard_id in self._completed_shards:
                self._ready.popleft()
                continue
            worker = self._idle_worker()
            if worker is None:
                return
            self._ready.popleft()
            worker.lease = shard
            self._spawn(self._send_assignment(worker, shard))

    def _idle_worker(self) -> WorkerHandle | None:
        for handle in self._handles():
            if handle.connected and not handle.superseded and handle.lease is None:
                return handle
        return None

    async def _send_assignment(self, handle: WorkerHandle, shard: ShardSpec) -> None:
        assert handle.writer is not None
        try:
            await protocol.write_message(
                handle.writer,
                {
                    "type": protocol.ASSIGN,
                    "shard": shard.shard_id,
                    "study": shard.study_index,
                    "start": shard.start,
                    "stop": shard.stop,
                },
            )
        except (ConnectionError, OSError):
            self._worker_gone(handle, "assignment send failed")

    def _spawn(self, coroutine) -> None:
        task = asyncio.ensure_future(coroutine)
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    # -- failure handling --------------------------------------------------------------

    def _worker_gone(self, handle: WorkerHandle, reason: str) -> None:
        """A worker's connection ended: clean shutdown or a death."""
        was_connected = handle.connected
        handle.connected = False
        self.monitor.forget(handle.worker_id)
        if handle.shutdown_sent or handle.superseded or self._is_done():
            return
        if was_connected:
            self.stats["workers_lost"] += 1
            self._release_lease(handle, reason)

    def _declare_dead(self, handle: WorkerHandle, reason: str) -> None:
        """Heartbeat expiry: supersede the worker and recover its lease."""
        handle.superseded = True
        handle.connected = False
        self.monitor.forget(handle.worker_id)
        if handle.writer is not None:
            handle.writer.close()
        self.stats["workers_lost"] += 1
        self._release_lease(handle, reason)

    def _release_lease(self, handle: WorkerHandle, reason: str) -> None:
        shard, handle.lease = handle.lease, None
        if shard is not None and shard.shard_id not in self._completed_shards:
            attempt = self._attempts.get(shard.shard_id, 0) + 1
            self._attempts[shard.shard_id] = attempt
            if self.retry.exhausted(attempt):
                self._fail(
                    ExecutionInterrupted(
                        f"distributed worker {handle.worker_id} died ({reason}) "
                        f"and {shard.describe()} exhausted its "
                        f"{self.retry.max_retries} retries",
                        pending=self._pending_tasks(),
                    )
                )
                return
            self.stats["reassignments"] += 1
            self._spawn(
                self._requeue_after(shard, self.retry.delay(attempt, self.rng))
            )
        self._check_fleet_alive()

    async def _requeue_after(self, shard: ShardSpec, delay: float) -> None:
        await self.clock.sleep(delay)
        if shard.shard_id in self._completed_shards or self._is_done():
            return
        self._ready.append(shard)
        self._dispatch()
        self._check_fleet_alive()

    def _check_fleet_alive(self) -> None:
        """Abort when work remains but every worker is gone for good."""
        if self._is_done() or len(self._completed_shards) == len(self.shards):
            return
        handles = self._handles()
        any_ever = any(handle.ever_connected for handle in handles)
        any_live = any(
            handle.connected and not handle.superseded for handle in handles
        )
        if any_ever and not any_live:
            self._fail(
                ExecutionInterrupted(
                    "every distributed worker died with "
                    f"{len(self.shards) - len(self._completed_shards)} shard(s) "
                    "unfinished",
                    pending=self._pending_tasks(),
                )
            )

    async def _supervise(self) -> None:
        """Periodic heartbeat sweep: declare silent workers dead."""
        while True:
            await self.clock.sleep(self.config.heartbeat_interval_s)
            for worker_id in self.monitor.expired():
                self._declare_dead(
                    self.workers[worker_id],
                    f"no heartbeat for over {self.monitor.timeout_s:g}s",
                )

    async def _connection_census(self) -> None:
        """After the connect window: degrade gracefully or give up."""
        await self.clock.sleep(self.connect_timeout_s)
        connected = sum(1 for handle in self._handles() if handle.ever_connected)
        if connected == 0:
            self._fail(
                NoWorkersError(
                    f"none of the {self.requested_workers} distributed workers "
                    f"connected within {self.connect_timeout_s:g}s"
                )
            )
        elif connected < self.requested_workers:
            warnings.warn(
                f"distributed backend requested {self.requested_workers} workers "
                f"but only {connected} connected; proceeding degraded"
            )

    # -- small helpers -----------------------------------------------------------------

    def _handles(self) -> list[WorkerHandle]:
        return [self.workers[worker_id] for worker_id in sorted(self.workers)]

    def _pending_tasks(self) -> list[tuple[str, int]]:
        """The experiments not yet delivered, as (study name, index) pairs."""
        pending: list[tuple[str, int]] = []
        for shard in self.shards:
            study = self.campaign.studies[shard.study_index]
            for index in range(shard.start, shard.stop):
                if (shard.study_index, index) not in self._delivered:
                    pending.append((study.name, index))
        return pending

    def _is_done(self) -> bool:
        return self._done is not None and self._done.is_set()

    def _finish(self) -> None:
        if self._done is not None and not self._done.is_set():
            self._done.set()

    def _fail(self, error: BaseException) -> None:
        if self._failure is None:
            self._failure = error
        self._finish()

    async def _shutdown_workers(self) -> None:
        for handle in self._handles():
            if handle.connected and handle.writer is not None:
                handle.shutdown_sent = True
                try:
                    await protocol.write_message(
                        handle.writer, {"type": protocol.SHUTDOWN}
                    )
                    handle.writer.close()
                except (ConnectionError, OSError):  # pragma: no cover - racing death
                    pass


# ---------------------------------------------------------------------------
# The execution-engine backend
# ---------------------------------------------------------------------------


class DistributedExecutor(ExperimentExecutor):
    """The ``"distributed"`` execution backend.

    Plans contiguous seed-range shards, bootstraps a
    :class:`CampaignCoordinator` (socket bind and worker fork in the
    coordinating thread, supervision loop on a pump thread), and feeds
    the coordinator's completion stream through the engine's shared
    ``_collect`` path — so completion sinks (campaign-store streaming)
    and progress callbacks behave exactly as on the serial and pool
    backends.  Workers run only the runtime phase; for fused
    run-and-analyze execution the analysis phase runs coordinator-side
    on each record as it arrives.

    ``coordinator_class`` is a test seam: the chaos harness substitutes
    coordinator subclasses that inject faults through the supervision
    hooks.
    """

    coordinator_class: type[CampaignCoordinator] = CampaignCoordinator

    #: How long to wait for worker connections before degrading.
    connect_timeout_s: float = 10.0

    def _run(
        self,
        campaign: "CampaignConfig",
        task,
        runner_class: type | None,
        tasks: list[tuple[int, int]] | None = None,
        sink=None,
        done_offsets: Sequence[int] | None = None,
        keep_raw_override: bool | None = None,
    ) -> list[list]:
        from repro.core.execution import DISTRIBUTED, available_backends

        if DISTRIBUTED not in available_backends():
            raise RuntimeConfigurationError(
                "the distributed backend needs the 'fork' multiprocessing start "
                "method, which this platform does not provide; use the serial backend"
            )
        items = self._tasks(campaign) if tasks is None else tasks
        if not items:
            # Fully resumed campaign: nothing to fork for.
            return self._collect(campaign, (), sink=sink, done_offsets=done_offsets)
        fused = task is _fused_task
        keep_raw = (
            self.config.keep_raw_results
            if keep_raw_override is None
            else keep_raw_override
        )
        workers = min(self.config.resolved_workers(), len(items))
        shards = plan_shards(
            items, self.config.resolved_chunk_size(len(items), workers)
        )
        workers = min(workers, len(shards))
        # Publish before bootstrap(): the forked workers inherit the
        # campaign through process memory, like the pool backend.
        self._publish_state(campaign, runner_class, keep_raw_override)
        try:
            coordinator = self.coordinator_class(
                campaign,
                shards,
                workers=workers,
                config=self.config,
                connect_timeout_s=self.connect_timeout_s,
            )
            try:
                coordinator.bootstrap()
                return self._collect(
                    campaign,
                    self._completions(campaign, coordinator, fused, keep_raw),
                    sink=sink,
                    done_offsets=done_offsets,
                )
            except NoWorkersError as error:
                return self._serial_fallback(
                    campaign, task, items, sink, done_offsets, error
                )
        finally:
            _WORKER_STATE.clear()

    def _serial_fallback(
        self,
        campaign: "CampaignConfig",
        task,
        items: list[tuple[int, int]],
        sink,
        done_offsets: Sequence[int] | None,
        error: NoWorkersError,
    ) -> list[list]:
        """Zero workers: degrade to an in-process serial run.

        Safe because :class:`~repro.errors.NoWorkersError` is only raised
        before any completion has been emitted.
        """
        warnings.warn(
            "distributed backend falling back to in-process serial "
            f"execution: {error}"
        )
        return self._collect(
            campaign,
            (task(item) for item in items),
            sink=sink,
            done_offsets=done_offsets,
        )

    def _completions(
        self,
        campaign: "CampaignConfig",
        coordinator: CampaignCoordinator,
        fused: bool,
        keep_raw: bool,
    ) -> Iterator[tuple[int, int, object]]:
        """Bridge the coordinator thread's completions to the caller.

        The supervision loop runs on a pump thread and enqueues encoded
        records; this generator — consumed in the coordinating thread by
        ``_collect`` — decodes each record and (in fused mode) runs its
        analysis phase, so sinks and progress run where they always do.
        """
        queue: SimpleQueue = SimpleQueue()

        def pump() -> None:
            try:
                coordinator.run(
                    lambda study, index, record: queue.put(
                        ("item", study, index, record)
                    )
                )
            except BaseException as error:
                queue.put(("error", error, None, None))
            else:
                queue.put(("done", None, None, None))

        thread = threading.Thread(target=pump, name="dist-coordinator", daemon=True)
        thread.start()
        try:
            while True:
                kind, first, second, third = queue.get()
                if kind == "done":
                    break
                if kind == "error":
                    raise first
                result = decode_record(third)
                yield first, second, self._materialize(
                    campaign, first, result, fused, keep_raw
                )
        finally:
            # Reached on errors *and* when the consumer abandons us
            # (e.g. a sink raised): stop supervising, reap the fleet.
            coordinator.request_shutdown()
            thread.join(timeout=30.0)

    def _materialize(
        self,
        campaign: "CampaignConfig",
        study_index: int,
        result,
        fused: bool,
        keep_raw: bool,
    ):
        """Turn a worker's raw record into what the engine mode expects."""
        if not fused:
            return result
        from repro.pipeline import analyze_experiment

        study = campaign.studies[study_index]
        analyzed = analyze_experiment(result, study.fault_specifications())
        if not keep_raw:
            analyzed.result = replace(result, local_timelines={}, sync_messages=[])
        return analyzed
