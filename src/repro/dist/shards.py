"""Shard planning: contiguous seed-range slices of a campaign's experiments.

A *shard* is the unit of distributed dispatch, lease, retry, and
reassignment: one study's experiments ``start .. stop-1``, i.e. a
contiguous run of experiment indices and therefore — through the
seed-derivation contract ``RandomStreams(study.seed).derive(
f"experiment:{name}:{index}")`` — a contiguous range of the study's seed
sequence.  Because each seed is a pure function of ``(study, index)``,
shards are order-independent and idempotent: any worker may run any shard
any number of times and the merged campaign is bit-identical to a serial
run.  The planner's only obligations are coverage and disjointness —
every pending experiment lands in exactly one shard — which the
property-based partitioner test pins for arbitrary campaign shapes.

Resume makes the pending set gappy (experiments already in the store are
skipped), so the planner first splits each study's pending indices into
maximal consecutive runs, then slices each run into at most
``shard_size`` experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous seed-range shard of a single study.

    ``start``/``stop`` bound the experiment indices (half-open, like a
    ``range``); ``shard_id`` is the campaign-wide dispatch key the wire
    protocol and the lease table use.
    """

    shard_id: int
    study_index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(
                f"shard {self.shard_id} is empty ({self.start}..{self.stop})"
            )

    @property
    def size(self) -> int:
        """How many experiments the shard carries."""
        return self.stop - self.start

    def tasks(self) -> list[tuple[int, int]]:
        """The shard's experiments as the engine's (study, index) task ids."""
        return [(self.study_index, index) for index in range(self.start, self.stop)]

    def describe(self) -> str:
        """Human-readable form for warnings and supervision logs."""
        return f"shard {self.shard_id} (study {self.study_index}, experiments {self.start}..{self.stop - 1})"


def _consecutive_runs(indices: Sequence[int]) -> Iterable[tuple[int, int]]:
    """Maximal runs of consecutive values in sorted ``indices``, half-open."""
    start = previous = indices[0]
    for index in indices[1:]:
        if index != previous + 1:
            yield start, previous + 1
            start = index
        previous = index
    yield start, previous + 1


def plan_shards(
    tasks: Sequence[tuple[int, int]], shard_size: int
) -> list[ShardSpec]:
    """Partition ``(study, experiment)`` tasks into contiguous shards.

    Every task appears in exactly one shard; no shard mixes studies or
    exceeds ``shard_size`` experiments; each shard's index range is
    consecutive in the pending set (so on a fresh campaign it is a literal
    seed-range slice ``[start, stop)``).  Task order within the input is
    irrelevant — shards are planned over the sorted per-study index sets —
    and so is shard *merge* order, by the seed-derivation contract.
    """
    if shard_size < 1:
        raise ValueError(f"shard size must be positive (got {shard_size})")
    by_study: dict[int, list[int]] = {}
    for study_index, experiment_index in tasks:
        by_study.setdefault(study_index, []).append(experiment_index)
    shards: list[ShardSpec] = []
    for study_index in sorted(by_study):
        indices = sorted(set(by_study[study_index]))
        if len(indices) != len(by_study[study_index]):
            duplicates = len(by_study[study_index]) - len(indices)
            raise ValueError(
                f"study {study_index} lists {duplicates} duplicate pending experiment(s)"
            )
        for run_start, run_stop in _consecutive_runs(indices):
            for start in range(run_start, run_stop, shard_size):
                stop = min(start + shard_size, run_stop)
                shards.append(
                    ShardSpec(
                        shard_id=len(shards),
                        study_index=study_index,
                        start=start,
                        stop=stop,
                    )
                )
    return shards
