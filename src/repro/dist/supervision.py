"""Supervision primitives: clocks, heartbeats, leases, retry/backoff.

This is the **only** module of :mod:`repro.dist` that may touch real time
(lint rule R006): everything else — the coordinator's heartbeat ticks and
backoff sleeps, the worker's heartbeat thread, the pool backend's retry
delays — takes time through an injected :class:`SupervisionClock`, so unit
tests drive supervision logic with :class:`FakeClock` instead of sleeping,
and a reviewer can audit every wall-clock dependency in one file.

Wall-clock use here is deliberate and sound: supervision times *real
worker processes* (heartbeat arrival, death detection, retry pacing),
never simulated events, so it cannot leak into any experiment result —
retry jitter is drawn from a dedicated RNG stream derived via
:func:`supervision_stream`, disjoint by construction from every
experiment's seed.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.sim.rng import RandomStream, RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.campaign import CampaignConfig
    from repro.core.execution import ExecutionConfig


class SupervisionClock(Protocol):
    """Time source injected into every supervision consumer."""

    def monotonic(self) -> float:
        """Seconds on a monotonically increasing clock."""
        ...  # pragma: no cover - protocol

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling coroutine for ``seconds``."""
        ...  # pragma: no cover - protocol

    def wait(self, event: threading.Event, seconds: float) -> bool:
        """Block up to ``seconds`` for ``event``; True when it was set."""
        ...  # pragma: no cover - protocol


class SystemClock:
    """The real clock: monotonic time, asyncio sleeps, event waits."""

    def monotonic(self) -> float:
        """Seconds on the process-wide monotonic clock."""
        # repro-lint: disable=R002 supervision times real worker processes, not simulated events
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling coroutine on the running event loop."""
        await asyncio.sleep(seconds)

    def wait(self, event: threading.Event, seconds: float) -> bool:
        """Block the calling thread up to ``seconds`` for ``event``."""
        return event.wait(seconds)


class FakeClock:
    """A manually advanced clock for supervision unit tests.

    ``sleep``/``wait`` advance the clock themselves, so tests of backoff
    pacing and heartbeat expiry run in zero real time; :meth:`advance`
    moves time between probes.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self.sleeps: list[float] = []

    def advance(self, seconds: float) -> None:
        """Move the clock forward."""
        self.now += seconds

    def monotonic(self) -> float:
        """The manually advanced time."""
        return self.now

    async def sleep(self, seconds: float) -> None:
        """Record the request and advance instantly."""
        self.sleeps.append(seconds)
        self.now += seconds

    def wait(self, event: threading.Event, seconds: float) -> bool:
        """Advance instantly; report whether ``event`` was already set."""
        self.sleeps.append(seconds)
        self.now += seconds
        return event.is_set()


def supervision_stream(campaign: "CampaignConfig", purpose: str = "retry-jitter") -> RandomStream:
    """The dedicated supervision RNG stream for one campaign.

    Derived through the public stream API from the first study's master
    seed under a ``dist-supervision`` namespace, so supervision draws
    (retry jitter) are reproducible per configuration yet provably
    disjoint from every experiment's ``experiment:<study>:<index>``
    derivation — scheduling never consumes experiment randomness.
    """
    master = campaign.studies[0].seed if campaign.studies else 0
    return RandomStreams(master).spawn("dist-supervision").stream(purpose)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for shard retries and pool restarts.

    ``delay(attempt, rng)`` for attempts 1, 2, 3, ... grows as
    ``backoff_base_s * 2**(attempt-1)`` capped at ``backoff_cap_s``, then
    stretched by up to ``jitter`` (a fraction) drawn from the supervision
    RNG stream — jitter decorrelates retry storms without ever touching
    experiment randomness.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0 (got {self.max_retries})")
        if self.backoff_base_s <= 0:
            raise ValueError(f"backoff base must be positive (got {self.backoff_base_s})")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be a fraction in [0, 1] (got {self.jitter})")

    @classmethod
    def from_execution(cls, config: "ExecutionConfig") -> "RetryPolicy":
        """The policy the engine's retry knobs select."""
        return cls(
            max_retries=config.max_retries,
            backoff_base_s=config.retry_backoff_base_s,
        )

    def exhausted(self, attempt: int) -> bool:
        """Whether ``attempt`` retries exceed the budget."""
        return attempt > self.max_retries

    def delay(self, attempt: int, rng: RandomStream) -> float:
        """The backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"retry attempts are 1-based (got {attempt})")
        base = min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_cap_s)
        return base * (1.0 + self.jitter * rng.random())


class HeartbeatMonitor:
    """Tracks the last heartbeat of every worker against a timeout.

    Purely clock-driven — :meth:`beat` stamps arrivals, :meth:`expired`
    names the workers silent past the timeout — so the coordinator's
    supervision tick stays a trivial poll and tests drive expiry with a
    :class:`FakeClock`.
    """

    def __init__(self, timeout_s: float, clock: SupervisionClock) -> None:
        if timeout_s <= 0:
            raise ValueError(f"heartbeat timeout must be positive (got {timeout_s})")
        self.timeout_s = timeout_s
        self._clock = clock
        self._beats: dict[int, float] = {}

    def beat(self, worker_id: int) -> None:
        """Record a liveness signal (a heartbeat, hello, or completion)."""
        self._beats[worker_id] = self._clock.monotonic()

    def forget(self, worker_id: int) -> None:
        """Stop watching a worker that disconnected or was declared dead."""
        self._beats.pop(worker_id, None)

    def watched(self) -> tuple[int, ...]:
        """The workers currently being monitored, in id order."""
        return tuple(sorted(self._beats))

    def silence(self, worker_id: int) -> float:
        """Seconds since the worker's last recorded beat."""
        return self._clock.monotonic() - self._beats[worker_id]

    def expired(self) -> list[int]:
        """Workers silent for longer than the timeout, in id order."""
        now = self._clock.monotonic()
        return sorted(
            worker_id
            for worker_id, last in self._beats.items()
            if now - last > self.timeout_s
        )
