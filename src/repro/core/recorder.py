"""The recorder runtime component (Section 3.5.6).

The recorder stamps local state changes and fault injections with the local
hardware clock and appends them to the node's :class:`LocalTimeline`.  It is
deliberately thin — keeping recording cheap is what keeps the runtime's
intrusion low — and all interpretation happens later, in the analysis phase.
"""

from __future__ import annotations

from typing import Callable

from repro.core.timeline import LocalTimeline, TimelineRecord


class Recorder:
    """Records state changes and fault injections on a local timeline."""

    def __init__(
        self,
        timeline: LocalTimeline,
        clock: Callable[[], float],
        host: Callable[[], str] | str,
    ) -> None:
        self._timeline = timeline
        self._clock = clock
        if callable(host):
            self._host = host
        else:
            self._host = lambda fixed=host: fixed

    @property
    def timeline(self) -> LocalTimeline:
        """The local timeline being written."""
        return self._timeline

    def now(self) -> float:
        """Read the local clock used for stamping records."""
        return self._clock()

    def current_host(self) -> str:
        """The host the node is currently executing on."""
        return self._host()

    def record_state_change(
        self, event: str, new_state: str, time: float | None = None
    ) -> TimelineRecord:
        """Record a local state change (stamped now unless ``time`` is given)."""
        return self._timeline.add_state_change(
            event=event,
            new_state=new_state,
            time=self._clock() if time is None else time,
            host=self._host(),
        )

    def record_fault_injection(self, fault: str, time: float | None = None) -> TimelineRecord:
        """Record a fault injection (stamped now unless ``time`` is given)."""
        return self._timeline.add_fault_injection(
            fault=fault,
            time=self._clock() if time is None else time,
            host=self._host(),
        )

    def record_note(self, text: str) -> None:
        """Attach a free-form user message to the timeline."""
        self._timeline.add_note(text)
