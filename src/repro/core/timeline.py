"""Local timelines and the paper's local-timeline file format (Section 3.5.6).

During the runtime phase the recorder of every node appends records to a
*local timeline*: every local state change and every fault injection,
stamped with the local hardware clock.  The analysis phase later projects
the local timelines onto a single global timeline.

The on-disk format follows the paper: the header lists the state machines,
global states, events, and faults together with integer indices, and the
timeline section uses those indices plus 64-bit timestamps split into two
32-bit halves.  Two small extensions (documented in DESIGN.md) are needed
because our substrate supports node restart on a different host:

* ``HOST <name>`` directive lines inside the timeline section record which
  host the following records were produced on, and
* ``NOTE <text>`` lines carry free-form annotations (the "messages that the
  user would want to include" mentioned by the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.specs.fault_spec import (
    FaultDefinition,
    FaultSpecification,
    FaultTrigger,
)
from repro.core.expression import parse_expression
from repro.errors import TimelineFormatError

#: Factor converting local-clock seconds to the integer nanosecond timestamps
#: used by the 64-bit on-disk representation.
_NANOSECONDS = 1_000_000_000


class RecordKind(enum.IntEnum):
    """Numeric record type constants of the local-timeline format."""

    STATE_CHANGE = 0
    FAULT_INJECTION = 1


@dataclass(frozen=True)
class TimelineRecord:
    """One record of a local timeline.

    ``time`` is the local hardware-clock reading in seconds.  ``host`` is
    the host the record was produced on (needed for clock synchronization
    when a node restarts on a different host).  Exactly one of
    ``event``/``new_state`` (for state changes) or ``fault`` (for fault
    injections) is populated, depending on ``kind``.
    """

    kind: RecordKind
    time: float
    host: str
    event: str | None = None
    new_state: str | None = None
    fault: str | None = None
    note: str | None = None

    def is_state_change(self) -> bool:
        """Whether this record is a state change."""
        return self.kind is RecordKind.STATE_CHANGE

    def is_fault_injection(self) -> bool:
        """Whether this record is a fault injection."""
        return self.kind is RecordKind.FAULT_INJECTION


@dataclass
class LocalTimeline:
    """The recorder output of one state machine for one experiment."""

    machine: str
    state_machines: tuple[str, ...] = ()
    global_states: tuple[str, ...] = ()
    events: tuple[str, ...] = ()
    faults: FaultSpecification = field(default_factory=FaultSpecification)
    records: list[TimelineRecord] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_state_change(self, event: str, new_state: str, time: float, host: str) -> TimelineRecord:
        """Append a state-change record and return it."""
        record = TimelineRecord(
            kind=RecordKind.STATE_CHANGE,
            time=time,
            host=host,
            event=event,
            new_state=new_state,
        )
        self.records.append(record)
        return record

    def add_fault_injection(self, fault: str, time: float, host: str) -> TimelineRecord:
        """Append a fault-injection record and return it."""
        record = TimelineRecord(
            kind=RecordKind.FAULT_INJECTION,
            time=time,
            host=host,
            fault=fault,
        )
        self.records.append(record)
        return record

    def add_note(self, text: str) -> None:
        """Attach a free-form user note to the timeline."""
        self.notes.append(text)

    def state_changes(self) -> list[TimelineRecord]:
        """All state-change records in recording order."""
        return [record for record in self.records if record.is_state_change()]

    def fault_injections(self) -> list[TimelineRecord]:
        """All fault-injection records in recording order."""
        return [record for record in self.records if record.is_fault_injection()]

    def hosts(self) -> tuple[str, ...]:
        """Hosts this node executed on, in first-seen order."""
        seen: list[str] = []
        for record in self.records:
            if record.host not in seen:
                seen.append(record.host)
        return tuple(seen)

    def is_empty(self) -> bool:
        """Whether the timeline holds no records."""
        return not self.records

    def final_state(self) -> str | None:
        """The last recorded state, or ``None`` if no state change happened."""
        for record in reversed(self.records):
            if record.is_state_change():
                return record.new_state
        return None


def _split_time(time_seconds: float) -> tuple[int, int]:
    nanoseconds = int(round(time_seconds * _NANOSECONDS))
    if nanoseconds < 0:
        raise TimelineFormatError(f"cannot encode negative timestamp {time_seconds}")
    return nanoseconds >> 32, nanoseconds & 0xFFFFFFFF

def _join_time(high: int, low: int) -> float:
    return ((high << 32) | low) / _NANOSECONDS


def format_local_timeline(timeline: LocalTimeline) -> str:
    """Serialize a local timeline into the paper's file format."""
    lines: list[str] = [timeline.machine]

    lines.append("state_machine_list")
    for index, name in enumerate(timeline.state_machines):
        lines.append(f"{index} {name}")
    lines.append("end_state_machine_list")

    lines.append("global_state_list")
    for index, name in enumerate(timeline.global_states):
        lines.append(f"{index} {name}")
    lines.append("end_global_state_list")

    lines.append("event_list")
    for index, name in enumerate(timeline.events):
        lines.append(f"{index} {name}")
    lines.append("end_event_list")

    lines.append("fault_list")
    for index, fault in enumerate(timeline.faults):
        lines.append(f"{index} {fault.name} {fault.expression.to_text()} {fault.trigger.value}")
    lines.append("end_fault_list")

    lines.append("local_timeline")
    event_index = {name: i for i, name in enumerate(timeline.events)}
    state_index = {name: i for i, name in enumerate(timeline.global_states)}
    fault_index = {fault.name: i for i, fault in enumerate(timeline.faults)}
    current_host: str | None = None
    for record in timeline.records:
        if record.host != current_host:
            lines.append(f"HOST {record.host}")
            current_host = record.host
        high, low = _split_time(record.time)
        if record.is_state_change():
            if record.event not in event_index:
                raise TimelineFormatError(
                    f"{timeline.machine}: event {record.event!r} missing from the event list"
                )
            if record.new_state not in state_index:
                raise TimelineFormatError(
                    f"{timeline.machine}: state {record.new_state!r} missing from the state list"
                )
            lines.append(
                f"{int(RecordKind.STATE_CHANGE)} {event_index[record.event]} "
                f"{state_index[record.new_state]} {high} {low}"
            )
        else:
            if record.fault not in fault_index:
                raise TimelineFormatError(
                    f"{timeline.machine}: fault {record.fault!r} missing from the fault list"
                )
            lines.append(
                f"{int(RecordKind.FAULT_INJECTION)} {fault_index[record.fault]} {high} {low}"
            )
    for note in timeline.notes:
        lines.append(f"NOTE {note}")
    lines.append("end_local_timeline")
    return "\n".join(lines) + "\n"


def parse_local_timeline(text: str) -> LocalTimeline:
    """Parse a local-timeline file back into a :class:`LocalTimeline`."""
    lines = [line.rstrip("\n") for line in text.splitlines()]
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise TimelineFormatError("empty local timeline file")
    index = 0
    machine = lines[index].strip()
    index += 1

    def read_section(start: str, end: str) -> list[str]:
        nonlocal index
        if index >= len(lines) or lines[index].strip() != start:
            found = lines[index].strip() if index < len(lines) else "<end of file>"
            raise TimelineFormatError(f"expected {start!r}, found {found!r}")
        index += 1
        body: list[str] = []
        while index < len(lines) and lines[index].strip() != end:
            body.append(lines[index].strip())
            index += 1
        if index >= len(lines):
            raise TimelineFormatError(f"missing {end!r}")
        index += 1
        return body

    def parse_indexed(body: list[str], section: str) -> tuple[str, ...]:
        names: list[str] = []
        for position, line in enumerate(body):
            tokens = line.split()
            if len(tokens) != 2 or not tokens[0].isdigit():
                raise TimelineFormatError(f"{section}: malformed entry {line!r}")
            if int(tokens[0]) != position:
                raise TimelineFormatError(f"{section}: indices must be consecutive from 0")
            names.append(tokens[1])
        return tuple(names)

    state_machines = parse_indexed(read_section("state_machine_list", "end_state_machine_list"),
                                   "state_machine_list")
    global_states = parse_indexed(read_section("global_state_list", "end_global_state_list"),
                                  "global_state_list")
    events = parse_indexed(read_section("event_list", "end_event_list"), "event_list")

    fault_body = read_section("fault_list", "end_fault_list")
    fault_definitions: list[FaultDefinition] = []
    for position, line in enumerate(fault_body):
        tokens = line.split()
        if len(tokens) < 4 or not tokens[0].isdigit():
            raise TimelineFormatError(f"fault_list: malformed entry {line!r}")
        if int(tokens[0]) != position:
            raise TimelineFormatError("fault_list: indices must be consecutive from 0")
        name = tokens[1]
        trigger = FaultTrigger.from_text(tokens[-1])
        expression = parse_expression(" ".join(tokens[2:-1]))
        fault_definitions.append(FaultDefinition(name=name, expression=expression, trigger=trigger))
    faults = FaultSpecification.from_definitions(fault_definitions)

    timeline_body = read_section("local_timeline", "end_local_timeline")
    timeline = LocalTimeline(
        machine=machine,
        state_machines=state_machines,
        global_states=global_states,
        events=events,
        faults=faults,
    )
    current_host = "unknown"
    for line in timeline_body:
        tokens = line.split()
        if tokens[0] == "HOST":
            if len(tokens) != 2:
                raise TimelineFormatError(f"malformed HOST directive {line!r}")
            current_host = tokens[1]
            continue
        if tokens[0] == "NOTE":
            timeline.add_note(line[len("NOTE "):])
            continue
        kind = int(tokens[0])
        if kind == int(RecordKind.STATE_CHANGE):
            if len(tokens) != 5:
                raise TimelineFormatError(f"malformed STATE_CHANGE record {line!r}")
            event_idx, state_idx, high, low = (int(token) for token in tokens[1:])
            timeline.add_state_change(
                event=events[event_idx],
                new_state=global_states[state_idx],
                time=_join_time(high, low),
                host=current_host,
            )
        elif kind == int(RecordKind.FAULT_INJECTION):
            if len(tokens) != 4:
                raise TimelineFormatError(f"malformed FAULT_INJECTION record {line!r}")
            fault_idx, high, low = (int(token) for token in tokens[1:])
            timeline.add_fault_injection(
                fault=fault_definitions[fault_idx].name,
                time=_join_time(high, low),
                host=current_host,
            )
        else:
            raise TimelineFormatError(f"unknown record type {kind} in line {line!r}")
    return timeline
