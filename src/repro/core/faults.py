"""The fault parser runtime component (Section 3.5.5).

On every change of the partial view of the global state, the fault parser
re-evaluates all Boolean fault expressions.  For each expression whose value
transitions from false to true (the parser is positive-edge-triggered), it
instructs the probe to inject the corresponding fault — subject to the
fault's ``once``/``always`` trigger — and records the injection time
returned by the probe on the local timeline.

Faults carrying a :class:`~repro.sim.topology.NetworkFaultSpec` are
*network faults*: instead of going through the probe into the application,
they are handed to the attached network injector (the runtime wires it to
the experiment's :meth:`~repro.sim.network.NetworkModel.apply`), which
mutates the topology — partitions, link outages, degradation.  Triggering,
``once``/``always`` semantics, and timeline recording are identical to
application faults, so the analysis phase verifies them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.probe import Probe
from repro.core.recorder import Recorder
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification
from repro.errors import RuntimePhaseError


@dataclass(frozen=True)
class InjectionRequest:
    """The outcome of one fault firing: which fault, and when it was injected."""

    fault: FaultDefinition
    injection_time: float


class FaultParser:
    """Evaluates fault expressions against the partial view of global state."""

    def __init__(
        self,
        faults: FaultSpecification,
        probe: Probe | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        self._faults = faults
        self._probe = probe
        self._recorder = recorder
        self._network_injector: Callable[[FaultDefinition], float] | None = None
        self._previous: dict[str, bool] = {fault.name: False for fault in faults}
        self._fired: set[str] = set()
        self.injections: list[InjectionRequest] = []

    @property
    def faults(self) -> FaultSpecification:
        """The fault specification being evaluated."""
        return self._faults

    def attach_probe(self, probe: Probe) -> None:
        """Late-bind the probe (the runtime wires components in two steps)."""
        self._probe = probe

    def attach_recorder(self, recorder: Recorder) -> None:
        """Late-bind the recorder."""
        self._recorder = recorder

    def attach_network_injector(
        self, injector: Callable[[FaultDefinition], float]
    ) -> None:
        """Late-bind the network injector for topology-mutating faults.

        ``injector(fault)`` must apply ``fault.network`` to the
        experiment's network model and return the local-clock time of the
        injection (read *before* the mutation, mirroring the probe).
        """
        self._network_injector = injector

    def expression_values(self, view: Mapping[str, str]) -> dict[str, bool]:
        """Evaluate every fault expression against ``view`` (no side effects)."""
        return {fault.name: fault.evaluate(view) for fault in self._faults}

    def fired(self, fault_name: str) -> bool:
        """Whether a fault has fired at least once in this experiment."""
        return fault_name in self._fired

    def reset(self) -> None:
        """Forget all edge and firing history (used between experiments)."""
        self._previous = {fault.name: False for fault in self._faults}
        self._fired.clear()
        self.injections.clear()

    def on_view_change(self, view: Mapping[str, str]) -> list[InjectionRequest]:
        """Re-evaluate all expressions after a partial-view change.

        Returns the injections performed as a result of this change (also
        accumulated on :attr:`injections`).
        """
        performed: list[InjectionRequest] = []
        for fault in self._faults:
            current = fault.evaluate(view)
            previous = self._previous[fault.name]
            if fault.should_fire(previous, current, fault.name in self._fired):
                self._fired.add(fault.name)
                injection_time = self._inject(fault)
                request = InjectionRequest(fault=fault, injection_time=injection_time)
                performed.append(request)
                self.injections.append(request)
            self._previous[fault.name] = current
        return performed

    def _inject(self, fault: FaultDefinition) -> float:
        if fault.network is not None:
            if self._network_injector is None:
                raise RuntimePhaseError(
                    f"network fault {fault.name!r} fired but no network "
                    "injector is attached to the fault parser"
                )
            injection_time = self._network_injector(fault)
        elif self._probe is None:
            injection_time = self._recorder.now() if self._recorder is not None else 0.0
        else:
            injection_time = self._probe.inject_fault(fault.name)
        if self._recorder is not None:
            self._recorder.record_fault_injection(fault.name, time=injection_time)
        return injection_time
