"""Campaign execution engine: serial, process-pool, and distributed backends.

Loki evaluations need thousands of experiments per study to estimate
correct-injection probabilities and coverage measures, and every experiment
is an independent unit of work: it derives its own seed from the public
:meth:`repro.sim.rng.RandomStreams.derive` API, builds its own
:class:`~repro.sim.environment.Environment`, and never shares state with
its siblings.  That makes experiment-level parallelism embarrassingly
available, and this module supplies it behind a small engine:

* :class:`ExecutionConfig` selects a backend (``"serial"``,
  ``"process-pool"``, or ``"distributed"``), a worker count, a chunk
  size, and the fault-tolerance knobs (retry budget, backoff base,
  heartbeat cadence);
* :class:`SerialExecutor` runs experiments in-process in index order
  (bit-identical to the historical ``CampaignRunner.run`` loop);
* :class:`ProcessPoolExecutor` fans experiments out across a
  ``concurrent.futures`` fork pool, surviving worker crashes by retrying
  the lost chunks within the configured budget;
* :class:`~repro.dist.coordinator.DistributedExecutor` (backend
  ``"distributed"``) shards the campaign across supervised worker
  processes behind a sockets-based coordinator with heartbeats, lease
  reassignment, and idempotent completion resolution — see
  :mod:`repro.dist`.

Each worker re-derives its experiment seed from the study seed and
experiment index, so scheduling order cannot change any outcome: all
backends produce identical per-experiment seeds, timelines, and measure
values — even across crashes, retries, and duplicated deliveries.

The engine exposes two entry points.  :meth:`ExperimentExecutor.run_campaign`
performs only the runtime phase and returns a full
:class:`~repro.core.campaign.CampaignResult` (raw timelines included).
:meth:`ExperimentExecutor.run_and_analyze` fuses the analysis phase into
the workers via :func:`run_and_analyze_experiment`, and — uniformly on
*every* backend, so the backends stay structurally interchangeable — the
large ``LocalTimeline`` / sync-message payloads are reduced to analyzed
summaries once analysis has consumed them (before they would cross a
process boundary); set ``ExecutionConfig(keep_raw_results=True)`` to
retain them.

Both entry points accept an optional :class:`~repro.store.CampaignStore`.
With a store attached the engine streams every completed experiment's
payload to disk *as it finishes* — through a completion sink invoked in
the coordinating process on every backend — and, on a later run of the
same campaign, loads the experiments whose records already exist (matching
configuration fingerprint and derived seed) instead of re-running them.
That turns any campaign into a durable, resumable, analyze-many artifact;
see :mod:`repro.store`.

The process-pool backend requires the ``fork`` start method (study
configurations carry application factories — often closures — that cannot
be pickled; forked workers inherit them through process memory instead).
On platforms without ``fork`` the backend raises
:class:`~repro.errors.RuntimeConfigurationError`; use
:func:`available_backends` to pick dynamically.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import warnings
from concurrent import futures as _futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.errors import ExecutionInterrupted, RuntimeConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.campaign import (
        CampaignConfig,
        CampaignResult,
        ExperimentResult,
        StudyConfig,
        StudyResult,
    )
    from repro.pipeline import AnalyzedExperiment, CampaignAnalysis
    from repro.store import CampaignStore

#: Backend name: run every experiment in the calling process, in order.
SERIAL = "serial"

#: Backend name: fan experiments out across a ``multiprocessing`` fork pool.
PROCESS_POOL = "process-pool"

#: Backend name: shard the campaign across supervised worker processes
#: behind the fault-tolerant coordinator in :mod:`repro.dist`.
DISTRIBUTED = "distributed"

#: Callback signature for progress streaming: ``(study_name, done, total)``.
ProgressCallback = Callable[[str, int, int], None]

#: Callback signature for completion sinks: ``(study_index, experiment_index,
#: value)``, invoked in the coordinating process for every finished task as
#: it completes — before progress is reported — on every backend.  This is
#: the seam the campaign store streams through: each completed experiment is
#: persisted (and its raw payload released) the moment it arrives, instead
#: of accumulating until the campaign ends.
CompletionSink = Callable[[int, int, object], None]


def available_backends() -> tuple[str, ...]:
    """The execution backends usable on this platform."""
    if "fork" in multiprocessing.get_all_start_methods():
        return (SERIAL, PROCESS_POOL, DISTRIBUTED)
    return (SERIAL,)


@dataclass(frozen=True)
class ExecutionConfig:
    """How a campaign's experiments are executed.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"process-pool"``, or ``"distributed"``.
    workers:
        Worker processes for the pool and distributed backends; ``None``
        uses the machine's CPU count.  Ignored by the serial backend.
    chunk_size:
        How many experiments each pool task carries.  Larger chunks
        amortize IPC overhead for campaigns of many fast experiments.
        ``None`` (the default) picks ``max(1, tasks // (4 * workers))``
        automatically — about four waves of chunks per worker, so large
        campaigns stop paying per-task IPC overhead while load stays
        balanced; explicit values are honored unchanged.
    keep_raw_results:
        Fused run-and-analyze execution normally strips the raw
        ``local_timelines`` / ``sync_messages`` payloads from each analyzed
        experiment once the analysis phase has consumed them (they dominate
        the data volume of large campaigns).  Set ``True`` to keep them.
    progress:
        Optional callback invoked after every finished experiment with
        ``(study_name, completed_in_study, total_in_study)``.  Never
        pickled: it runs in the coordinating process only.
    max_retries:
        How many times the pool and distributed backends re-attempt work
        lost to a crashed worker (a broken pool, a dead shard lease)
        before giving up with
        :class:`~repro.errors.ExecutionInterrupted`.  ``0`` disables
        retries; determinism makes every retry bit-safe.
    retry_backoff_base_s:
        First-retry backoff delay; successive retries double it (with
        jitter from the dedicated supervision RNG stream).
    heartbeat_interval_s:
        How often distributed workers beat, and how often the
        coordinator sweeps for silence.
    heartbeat_timeout_s:
        Silence span after which the coordinator declares a distributed
        worker dead and reassigns its shard.  Must exceed the interval.
    """

    backend: str = SERIAL
    workers: int | None = None
    chunk_size: int | None = None
    keep_raw_results: bool = False
    progress: ProgressCallback | None = field(default=None, compare=False)
    max_retries: int = 2
    retry_backoff_base_s: float = 0.05
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 2.0

    def __post_init__(self) -> None:
        if self.backend not in (SERIAL, PROCESS_POOL, DISTRIBUTED):
            raise RuntimeConfigurationError(
                f"unknown execution backend {self.backend!r}; "
                f"expected {SERIAL!r}, {PROCESS_POOL!r}, or {DISTRIBUTED!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise RuntimeConfigurationError(
                f"execution needs at least one worker (got {self.workers})"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise RuntimeConfigurationError(
                f"execution chunk size must be positive (got {self.chunk_size})"
            )
        if self.max_retries < 0:
            raise RuntimeConfigurationError(
                f"max_retries must be >= 0 (got {self.max_retries})"
            )
        if self.retry_backoff_base_s <= 0:
            raise RuntimeConfigurationError(
                f"retry backoff base must be positive (got {self.retry_backoff_base_s})"
            )
        if self.heartbeat_interval_s <= 0:
            raise RuntimeConfigurationError(
                f"heartbeat interval must be positive (got {self.heartbeat_interval_s})"
            )
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise RuntimeConfigurationError(
                f"heartbeat timeout ({self.heartbeat_timeout_s}) must exceed the "
                f"heartbeat interval ({self.heartbeat_interval_s}), or every "
                "in-flight worker would look dead between beats"
            )

    @staticmethod
    def serial(**kwargs) -> "ExecutionConfig":
        """A serial-backend configuration."""
        return ExecutionConfig(backend=SERIAL, **kwargs)

    @staticmethod
    def process_pool(workers: int | None = None, **kwargs) -> "ExecutionConfig":
        """A process-pool configuration with ``workers`` processes."""
        return ExecutionConfig(backend=PROCESS_POOL, workers=workers, **kwargs)

    @staticmethod
    def distributed(workers: int | None = None, **kwargs) -> "ExecutionConfig":
        """A distributed-backend configuration with ``workers`` processes."""
        return ExecutionConfig(backend=DISTRIBUTED, workers=workers, **kwargs)

    def resolved_workers(self) -> int:
        """The concrete worker count the pool backend will use."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1

    def resolved_chunk_size(self, task_count: int, workers: int) -> int:
        """The concrete pool chunk size for a campaign of ``task_count`` tasks.

        An explicit ``chunk_size`` is honored as-is; the ``None`` default
        aims for roughly four chunks per worker so per-task IPC overhead
        is amortized without starving the pool of work to balance.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, task_count // (4 * max(workers, 1)))


# ---------------------------------------------------------------------------
# Task functions
# ---------------------------------------------------------------------------
#
# A task is identified by (study_index, experiment_index) — a pair of small
# picklable integers.  The campaign configuration itself never crosses the
# process boundary: the pool is created with the fork start method after
# the configuration has been published in ``_WORKER_STATE``, so workers
# inherit it through copy-on-write process memory.  This is what lets
# studies carry arbitrary (unpicklable) application factories.

_WORKER_STATE: dict = {}


def run_and_analyze_experiment(
    study: "StudyConfig",
    index: int,
    *,
    keep_raw_results: bool = True,
    runner_class: type | None = None,
) -> "AnalyzedExperiment":
    """Run one experiment and immediately run its analysis phase.

    This is the fused runtime+analysis task the execution engine ships to
    workers: fusing means only the analyzed summary — clock bounds, global
    timeline, verification verdicts — needs to travel back to the
    coordinating process.  With ``keep_raw_results=False`` the raw
    ``local_timelines`` and ``sync_messages`` payloads are dropped from the
    returned experiment once analysis has consumed them.  ``runner_class``
    selects the :class:`~repro.core.campaign.CampaignRunner` (sub)class
    whose ``run_experiment`` performs the run.
    """
    from repro.core.campaign import CampaignRunner
    from repro.pipeline import analyze_experiment

    runner = runner_class or CampaignRunner
    result = runner.run_experiment_of(study, index)
    analyzed = analyze_experiment(result, study.fault_specifications())
    if not keep_raw_results:
        analyzed.result = replace(result, local_timelines={}, sync_messages=[])
    return analyzed


def _runtime_task(task: tuple[int, int]) -> tuple[int, int, "ExperimentResult"]:
    study_index, experiment_index = task
    study = _WORKER_STATE["campaign"].studies[study_index]
    result = _WORKER_STATE["runner"].run_experiment_of(study, experiment_index)
    return study_index, experiment_index, result


def _fused_task(task: tuple[int, int]) -> tuple[int, int, "AnalyzedExperiment"]:
    study_index, experiment_index = task
    study = _WORKER_STATE["campaign"].studies[study_index]
    analyzed = run_and_analyze_experiment(
        study,
        experiment_index,
        keep_raw_results=_WORKER_STATE["keep_raw_results"],
        runner_class=_WORKER_STATE["runner"],
    )
    return study_index, experiment_index, analyzed


def _chunk_task(task, chunk: list[tuple[int, int]]) -> list:
    """One pool submission: a chunk of tasks, completed together."""
    return [task(item) for item in chunk]


def _describe_tasks(
    campaign: "CampaignConfig", tasks: Sequence[tuple[int, int]], limit: int = 5
) -> str:
    """Name the first few ``(study, index)`` tasks for error messages."""
    names = [
        f"{campaign.studies[study_index].name}:{experiment_index}"
        for study_index, experiment_index in tasks[:limit]
    ]
    suffix = f", ... (+{len(tasks) - limit} more)" if len(tasks) > limit else ""
    return ", ".join(names) + suffix


def _resume_hint(store: "CampaignStore") -> str:
    """What a crashed campaign's operator should do next."""
    return (
        f"completed experiments are already persisted in the campaign store at "
        f"{store.path}; re-running the same campaign with this store attached "
        "resumes from them instead of restarting"
    )


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class ExperimentExecutor:
    """Base class of the pluggable execution backends."""

    def __init__(self, config: ExecutionConfig) -> None:
        self.config = config

    # -- public API --------------------------------------------------------------------
    #
    # ``runner_class`` lets CampaignRunner subclasses (instrumented or
    # otherwise specialized runners) keep their run_experiment override in
    # the dispatch path; it defaults to the stock CampaignRunner.

    def run_campaign(
        self,
        campaign: "CampaignConfig",
        runner_class: type | None = None,
        store: "CampaignStore | None" = None,
    ) -> "CampaignResult":
        """Runtime phase only: every experiment of every study.

        With a ``store``, every completed experiment is streamed to disk as
        it finishes, and experiments whose records already exist (matching
        configuration fingerprint and seed) are loaded instead of re-run.
        """
        from repro.core.campaign import CampaignResult

        if store is None:
            slots = self._run(campaign, _runtime_task, runner_class)
        else:
            cached, pending, offsets = self._partition_cached(campaign, store)

            def sink(study_index: int, experiment_index: int, result) -> None:
                store.append(result)

            try:
                slots = self._run(
                    campaign, _runtime_task, runner_class,
                    tasks=pending, sink=sink, done_offsets=offsets,
                )
            except ExecutionInterrupted as error:
                error.add_note(_resume_hint(store))
                raise
            for (study_index, experiment_index), result in cached.items():
                slots[study_index][experiment_index] = result
        result = CampaignResult(config=campaign)
        for study, experiments in zip(campaign.studies, slots):
            result.studies[study.name] = self._study_result(study, experiments)
        return result

    def run_study(
        self, study: "StudyConfig", runner_class: type | None = None
    ) -> "StudyResult":
        """Runtime phase of a single study outside a campaign."""
        from repro.core.campaign import CampaignConfig

        campaign = CampaignConfig(name=f"campaign-{study.name}", studies=[study])
        slots = self._run(campaign, _runtime_task, runner_class)
        return self._study_result(study, slots[0])

    def run_and_analyze(
        self,
        campaign: "CampaignConfig",
        runner_class: type | None = None,
        store: "CampaignStore | None" = None,
    ) -> "CampaignAnalysis":
        """Fused runtime + analysis phases for a whole campaign.

        With a ``store``, the campaign becomes durable and resumable:

        * experiments whose records already exist in the store (with the
          study's configuration fingerprint and the engine's derived seed)
          are **loaded and analyzed from disk** — the simulator never runs
          for them — and the rest execute normally;
        * every freshly completed experiment's raw payload is appended to
          the store the moment it reaches the coordinator, then released
          (unless ``keep_raw_results``), so memory stays flat while the
          disk accumulates the run-once/analyze-many archive.

        Workers keep their raw payloads only when a store needs them; the
        returned analysis is slimmed identically on every backend, so
        attaching a store never changes any analyzed value.
        """
        from repro.core.campaign import CampaignResult
        from repro.pipeline import CampaignAnalysis, StudyAnalysis, analyze_experiment

        if store is None:
            slots = self._run(campaign, _fused_task, runner_class)
        else:
            cached, pending, offsets = self._partition_cached(campaign, store)
            keep_raw = self.config.keep_raw_results

            def sink(study_index: int, experiment_index: int, analyzed) -> None:
                store.append(analyzed.result)
                if not keep_raw:
                    analyzed.result = replace(
                        analyzed.result, local_timelines={}, sync_messages=[]
                    )

            # Workers must keep raw payloads so the coordinator can persist
            # them; the sink above re-applies the configured slimming.
            try:
                slots = self._run(
                    campaign, _fused_task, runner_class,
                    tasks=pending, sink=sink, done_offsets=offsets,
                    keep_raw_override=True,
                )
            except ExecutionInterrupted as error:
                error.add_note(_resume_hint(store))
                raise
            # Analyze the cached records in the coordinator, releasing each
            # raw payload as soon as its analysis (and slimming) is done so
            # the resume path does not hold the whole archive in memory.
            while cached:
                (study_index, experiment_index), result = cached.popitem()
                study = campaign.studies[study_index]
                analyzed = analyze_experiment(result, study.fault_specifications())
                if not keep_raw:
                    analyzed.result = replace(
                        analyzed.result, local_timelines={}, sync_messages=[]
                    )
                slots[study_index][experiment_index] = analyzed
        campaign_result = CampaignResult(config=campaign)
        analysis = CampaignAnalysis(campaign=campaign_result)
        for study, analyzed in zip(campaign.studies, slots):
            study_result = self._study_result(
                study, [experiment.result for experiment in analyzed]
            )
            campaign_result.studies[study.name] = study_result
            analysis.studies[study.name] = StudyAnalysis(
                study=study_result, experiments=list(analyzed)
            )
        return analysis

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _study_result(study: "StudyConfig", experiments: Sequence) -> "StudyResult":
        from repro.core.campaign import StudyResult

        missing = [index for index, value in enumerate(experiments) if value is None]
        if missing:  # pragma: no cover - defensive: a worker died mid-campaign
            raise RuntimeConfigurationError(
                f"study {study.name!r} lost experiments {missing} during execution"
            )
        return StudyResult(config=study, experiments=list(experiments))

    @staticmethod
    def _tasks(campaign: "CampaignConfig") -> list[tuple[int, int]]:
        return [
            (study_index, experiment_index)
            for study_index, study in enumerate(campaign.studies)
            for experiment_index in range(study.experiments)
        ]

    @staticmethod
    def _partition_cached(
        campaign: "CampaignConfig", store: "CampaignStore"
    ) -> tuple[dict[tuple[int, int], "ExperimentResult"], list[tuple[int, int]], list[int]]:
        """Split a campaign into store-cached and still-pending experiments.

        Attaches the store (creating or fingerprint-validating the
        manifest), then returns ``(cached, pending, done_offsets)``:
        records that may be reused keyed by task id, the tasks that must
        actually run, and the per-study count of reused records (so
        progress reporting counts skipped experiments as already done).

        The cached records are decoded eagerly (seed validation needs the
        payload), so peak memory on resume is proportional to the reused
        portion of the archive; callers release each record as they consume
        it.  A two-pass streaming reader that validates seeds first and
        re-decodes lazily would trade that peak for double decode cost —
        the right move once archives outgrow memory (sharded campaigns).
        """
        store.attach(campaign)
        cached: dict[tuple[int, int], "ExperimentResult"] = {}
        offsets = [0] * len(campaign.studies)
        for study_index, study in enumerate(campaign.studies):
            for experiment_index, result in store.resumable_records(study).items():
                if 0 <= experiment_index < study.experiments:
                    cached[(study_index, experiment_index)] = result
                    offsets[study_index] += 1
        pending = [
            task for task in ExperimentExecutor._tasks(campaign) if task not in cached
        ]
        return cached, pending, offsets

    def _collect(
        self,
        campaign: "CampaignConfig",
        completions: Iterable[tuple[int, int, object]],
        sink: CompletionSink | None = None,
        done_offsets: Sequence[int] | None = None,
    ) -> list[list]:
        """Slot streamed completions into per-study index-ordered lists.

        ``sink`` is invoked for every completion as it arrives (before the
        progress callback) — the streaming seam the campaign store writes
        through.  ``done_offsets`` pre-counts experiments satisfied from
        the store so progress reports completed-of-total over the whole
        study, not just the freshly executed remainder.
        """
        slots: list[list] = [[None] * study.experiments for study in campaign.studies]
        done = list(done_offsets) if done_offsets is not None else [0] * len(campaign.studies)
        progress = self.config.progress
        for study_index, experiment_index, value in completions:
            slots[study_index][experiment_index] = value
            if sink is not None:
                sink(study_index, experiment_index, value)
            done[study_index] += 1
            if progress is not None:
                study = campaign.studies[study_index]
                progress(study.name, done[study_index], study.experiments)
        return slots

    def _publish_state(
        self,
        campaign: "CampaignConfig",
        runner_class: type | None,
        keep_raw_override: bool | None = None,
    ) -> None:
        from repro.core.campaign import CampaignRunner

        _WORKER_STATE["campaign"] = campaign
        _WORKER_STATE["keep_raw_results"] = (
            self.config.keep_raw_results if keep_raw_override is None else keep_raw_override
        )
        _WORKER_STATE["runner"] = runner_class or CampaignRunner

    def _run(
        self,
        campaign: "CampaignConfig",
        task,
        runner_class: type | None,
        tasks: list[tuple[int, int]] | None = None,
        sink: CompletionSink | None = None,
        done_offsets: Sequence[int] | None = None,
        keep_raw_override: bool | None = None,
    ) -> list[list]:
        raise NotImplementedError


class SerialExecutor(ExperimentExecutor):
    """Run every experiment in the calling process, in index order."""

    def _run(
        self,
        campaign: "CampaignConfig",
        task,
        runner_class: type | None,
        tasks: list[tuple[int, int]] | None = None,
        sink: CompletionSink | None = None,
        done_offsets: Sequence[int] | None = None,
        keep_raw_override: bool | None = None,
    ) -> list[list]:
        self._publish_state(campaign, runner_class, keep_raw_override)
        items = self._tasks(campaign) if tasks is None else tasks
        try:
            return self._collect(
                campaign,
                (task(item) for item in items),
                sink=sink,
                done_offsets=done_offsets,
            )
        finally:
            _WORKER_STATE.clear()


class ProcessPoolExecutor(ExperimentExecutor):
    """Fan experiments out across a ``concurrent.futures`` fork pool.

    Determinism is preserved by construction: every experiment derives its
    seed from ``RandomStreams(study.seed).derive(f"experiment:{name}:{i}")``
    inside the worker and runs in a private environment, so neither the
    number of workers nor the completion order can alter any result, and
    completions are re-slotted by experiment index before aggregation.

    A crashed worker (OOM-killed, segfaulted, SIGKILLed) breaks the whole
    pool; instead of surfacing the raw ``BrokenProcessPool`` traceback and
    abandoning the campaign, the executor keeps every chunk that finished,
    rebuilds a fresh pool, and retries the lost chunks — up to the
    configured ``max_retries``, with exponential backoff — before giving
    up with :class:`~repro.errors.ExecutionInterrupted` naming the lost
    experiments (and, when a campaign store is attached, how to resume).
    Determinism makes re-running a lost chunk bit-safe.
    """

    def _run(
        self,
        campaign: "CampaignConfig",
        task,
        runner_class: type | None,
        tasks: list[tuple[int, int]] | None = None,
        sink: CompletionSink | None = None,
        done_offsets: Sequence[int] | None = None,
        keep_raw_override: bool | None = None,
    ) -> list[list]:
        if PROCESS_POOL not in available_backends():
            raise RuntimeConfigurationError(
                "the process-pool backend needs the 'fork' multiprocessing start "
                "method, which this platform does not provide; use the serial backend"
            )
        items = self._tasks(campaign) if tasks is None else tasks
        if not items:
            # Fully resumed campaign: nothing to fork for.
            return self._collect(campaign, (), sink=sink, done_offsets=done_offsets)
        # Publish the campaign (and runner class) before forking: workers
        # inherit them through process memory, so unpicklable study contents
        # never cross the process boundary (only (study, experiment) index
        # pairs do).
        self._publish_state(campaign, runner_class, keep_raw_override)
        try:
            return self._collect(
                campaign,
                self._pool_completions(campaign, task, items),
                sink=sink,
                done_offsets=done_offsets,
            )
        finally:
            _WORKER_STATE.clear()

    def _pool_completions(
        self, campaign: "CampaignConfig", task, items: list[tuple[int, int]]
    ) -> Iterator[tuple[int, int, object]]:
        """Stream completions, surviving broken pools within the retry budget.

        Work is submitted in chunks; a chunk either completes atomically
        or is still pending when the pool breaks, so the retry set is
        exactly the unfinished chunks — nothing finished is re-run, and
        nothing pending is lost.
        """
        from repro.dist.supervision import RetryPolicy, SystemClock, supervision_stream

        policy = RetryPolicy.from_execution(self.config)
        rng = supervision_stream(campaign, "pool-retry-jitter")
        clock = SystemClock()
        context = multiprocessing.get_context("fork")
        pending = list(items)
        attempt = 0
        while pending:
            workers = min(self.config.resolved_workers(), len(pending))
            chunk_size = self.config.resolved_chunk_size(len(pending), workers)
            chunks = [
                pending[offset:offset + chunk_size]
                for offset in range(0, len(pending), chunk_size)
            ]
            finished = [False] * len(chunks)
            broken: BrokenProcessPool | None = None
            pool = _futures.ProcessPoolExecutor(max_workers=workers, mp_context=context)
            try:
                submitted = [pool.submit(_chunk_task, task, chunk) for chunk in chunks]
                positions = {future: index for index, future in enumerate(submitted)}
                for future in _futures.as_completed(submitted):
                    try:
                        completions = future.result()
                    except BrokenProcessPool as error:
                        # The pool marks every unfinished future broken at
                        # once; keep draining so finished chunks still yield.
                        broken = error
                        continue
                    finished[positions[future]] = True
                    yield from completions
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            if broken is None:
                return
            pending = [
                item
                for index, chunk in enumerate(chunks)
                if not finished[index]
                for item in chunk
            ]
            attempt += 1
            if policy.exhausted(attempt):
                raise ExecutionInterrupted(
                    f"a process-pool worker died and {len(pending)} experiment(s) "
                    f"were still unfinished after {policy.max_retries} retries: "
                    f"{_describe_tasks(campaign, pending)}",
                    pending=[
                        (campaign.studies[study_index].name, experiment_index)
                        for study_index, experiment_index in pending
                    ],
                ) from broken
            warnings.warn(
                f"a process-pool worker died with {len(pending)} experiment(s) "
                f"in flight ({_describe_tasks(campaign, pending)}); rebuilding "
                f"the pool (retry {attempt} of {policy.max_retries})"
            )
            clock.wait(threading.Event(), policy.delay(attempt, rng))


_EXECUTORS = {
    SERIAL: SerialExecutor,
    PROCESS_POOL: ProcessPoolExecutor,
}


def build_executor(config: ExecutionConfig | None) -> ExperimentExecutor:
    """Instantiate the executor class selected by ``config``."""
    config = config or ExecutionConfig()
    if config.backend == DISTRIBUTED:
        # Imported lazily: repro.dist builds on this module.
        from repro.dist.coordinator import DistributedExecutor

        return DistributedExecutor(config)
    return _EXECUTORS[config.backend](config)
