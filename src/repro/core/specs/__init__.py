"""Specification objects and parsers for the Loki input files.

Loki is driven by a small family of text files (Chapter 3 and Chapter 5):

* the *state machine specification* — one per state machine — describing
  states, events, transitions, and per-state notify lists;
* the *fault specification* — Boolean fault expressions with once/always
  triggers;
* the *node file* — which state machines to start at the beginning of every
  experiment and on which hosts;
* the *daemon startup* and *daemon contact* files used by the local daemons;
* the *machines file* and per-state-machine *study files* used by the
  campaign execution commands of Section 5.6.

This package provides dataclasses for each of these plus parsers and
formatters that round-trip the paper's textual formats.
"""

from repro.core.specs.fault_spec import (
    FaultDefinition,
    FaultSpecification,
    FaultTrigger,
    format_fault_specification,
    parse_fault_specification,
)
from repro.core.specs.files import (
    DaemonContactEntry,
    DaemonStartupEntry,
    NodeFileEntry,
    StudyFile,
    format_daemon_contact_file,
    format_daemon_startup_file,
    format_machines_file,
    format_node_file,
    format_study_file,
    parse_daemon_contact_file,
    parse_daemon_startup_file,
    parse_machines_file,
    parse_node_file,
    parse_study_file,
)
from repro.core.specs.state_machine import (
    RESERVED_EVENTS,
    RESERVED_STATES,
    StateMachineSpecification,
    StateSpecification,
    format_state_machine_specification,
    parse_state_machine_specification,
)

__all__ = [
    "DaemonContactEntry",
    "DaemonStartupEntry",
    "FaultDefinition",
    "FaultSpecification",
    "FaultTrigger",
    "NodeFileEntry",
    "RESERVED_EVENTS",
    "RESERVED_STATES",
    "StateMachineSpecification",
    "StateSpecification",
    "StudyFile",
    "format_daemon_contact_file",
    "format_daemon_startup_file",
    "format_fault_specification",
    "format_machines_file",
    "format_node_file",
    "format_state_machine_specification",
    "format_study_file",
    "parse_daemon_contact_file",
    "parse_daemon_startup_file",
    "parse_fault_specification",
    "parse_machines_file",
    "parse_node_file",
    "parse_state_machine_specification",
    "parse_study_file",
]
