"""State-machine specifications and their textual format (Section 3.5.3).

A state-machine specification describes the execution of one component of
the distributed system at the level of abstraction needed for fault
injection: the list of global states, the list of local events of this
machine, and — per state — the list of remote state machines to notify on
entry plus the event-to-next-state transitions.

The textual format is the one given in the paper::

    global_state_list
    <list_of_states>
    end_global_state_list
    event_list
    <list_of_events>
    end_event_list

    state <state> [notify <nickname> ... <nickname>]
    <event> <next_state>
    ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import SpecificationError

#: State names with special meaning to the runtime (Section 3.5.7).
RESERVED_STATES = frozenset({"BEGIN", "EXIT", "CRASH", "RESTART"})

#: Event names with special meaning to the runtime (Section 3.5.7).
RESERVED_EVENTS = frozenset({"CRASH", "RESTART", "default"})

#: The state every state machine is in before its first probe notification.
INITIAL_STATE = "BEGIN"

#: Wildcard event: matches any event with no explicit transition in a state.
DEFAULT_EVENT = "default"


@dataclass(frozen=True)
class StateSpecification:
    """One state of a state-machine specification.

    Attributes
    ----------
    name:
        The state's name.
    notify:
        Nicknames of the remote state machines to notify when this machine
        enters the state (the ``notify`` clause).
    transitions:
        Mapping from local event name to the next state.
    """

    name: str
    notify: tuple[str, ...] = ()
    transitions: Mapping[str, str] = field(default_factory=dict)

    def next_state(self, event: str) -> str | None:
        """The state reached when ``event`` occurs here, or ``None``.

        Falls back to the reserved ``default`` wildcard transition when the
        event has no explicit entry.
        """
        if event in self.transitions:
            return self.transitions[event]
        return self.transitions.get(DEFAULT_EVENT)


@dataclass(frozen=True)
class StateMachineSpecification:
    """A complete state-machine specification for one node."""

    name: str
    global_states: tuple[str, ...]
    events: tuple[str, ...]
    states: Mapping[str, StateSpecification]

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check internal consistency; raise :class:`SpecificationError` if broken."""
        if not self.name:
            raise SpecificationError("state machine nickname cannot be empty")
        if len(set(self.global_states)) != len(self.global_states):
            raise SpecificationError(f"{self.name}: duplicate entries in global_state_list")
        if len(set(self.events)) != len(self.events):
            raise SpecificationError(f"{self.name}: duplicate entries in event_list")
        known_states = set(self.global_states) | RESERVED_STATES
        known_events = set(self.events) | RESERVED_EVENTS
        for state_name, state in self.states.items():
            if state_name != state.name:
                raise SpecificationError(
                    f"{self.name}: state mapping key {state_name!r} != state name {state.name!r}"
                )
            if state_name not in known_states:
                raise SpecificationError(
                    f"{self.name}: state {state_name!r} is not in the global_state_list"
                )
            for event, target in state.transitions.items():
                if event not in known_events:
                    raise SpecificationError(
                        f"{self.name}: transition on unknown event {event!r} in state {state_name!r}"
                    )
                if target not in known_states:
                    raise SpecificationError(
                        f"{self.name}: transition to unknown state {target!r} in state {state_name!r}"
                    )

    def state(self, name: str) -> StateSpecification | None:
        """Look up one state's specification (``None`` if not described)."""
        return self.states.get(name)

    def notify_list(self, state: str) -> tuple[str, ...]:
        """Remote machines to notify when entering ``state``."""
        spec = self.states.get(state)
        return spec.notify if spec is not None else ()

    def transition(self, state: str, event: str) -> str | None:
        """The next state from ``state`` on ``event``, or ``None`` if undefined."""
        spec = self.states.get(state)
        if spec is None:
            return None
        return spec.next_state(event)

    def reachable_states(self, initial: str) -> frozenset[str]:
        """All states reachable from ``initial`` following declared transitions."""
        seen: set[str] = set()
        frontier = [initial]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            spec = self.states.get(current)
            if spec is None:
                continue
            frontier.extend(spec.transitions.values())
        return frozenset(seen)


def parse_state_machine_specification(text: str, name: str) -> StateMachineSpecification:
    """Parse the textual state-machine specification format.

    Parameters
    ----------
    text:
        The specification file contents.
    name:
        The nickname of the state machine the specification belongs to (the
        file format itself does not embed it).
    """
    lines = [line.strip() for line in text.splitlines()]
    lines = [line for line in lines if line and not line.startswith("#")]
    index = 0

    def expect(keyword: str) -> None:
        nonlocal index
        if index >= len(lines) or lines[index] != keyword:
            found = lines[index] if index < len(lines) else "<end of file>"
            raise SpecificationError(f"{name}: expected {keyword!r} but found {found!r}")
        index += 1

    def read_until(terminator: str) -> list[str]:
        nonlocal index
        collected: list[str] = []
        while index < len(lines) and lines[index] != terminator:
            collected.append(lines[index])
            index += 1
        if index >= len(lines):
            raise SpecificationError(f"{name}: missing {terminator!r}")
        index += 1
        return collected

    expect("global_state_list")
    global_states = read_until("end_global_state_list")
    expect("event_list")
    events = read_until("end_event_list")

    states: dict[str, StateSpecification] = {}
    current_state: str | None = None
    current_notify: tuple[str, ...] = ()
    current_transitions: dict[str, str] = {}

    def flush() -> None:
        nonlocal current_state, current_notify, current_transitions
        if current_state is None:
            return
        if current_state in states:
            raise SpecificationError(f"{name}: state {current_state!r} defined twice")
        states[current_state] = StateSpecification(
            name=current_state,
            notify=current_notify,
            transitions=dict(current_transitions),
        )
        current_state = None
        current_notify = ()
        current_transitions = {}

    while index < len(lines):
        line = lines[index]
        index += 1
        tokens = line.split()
        if tokens[0] == "state":
            flush()
            if len(tokens) < 2:
                raise SpecificationError(f"{name}: 'state' line without a state name: {line!r}")
            current_state = tokens[1]
            if len(tokens) > 2:
                if tokens[2] != "notify":
                    raise SpecificationError(
                        f"{name}: expected 'notify' after state name in {line!r}"
                    )
                current_notify = tuple(token.rstrip(",") for token in tokens[3:])
            else:
                current_notify = ()
        else:
            if current_state is None:
                raise SpecificationError(f"{name}: transition line outside a state block: {line!r}")
            if len(tokens) != 2:
                raise SpecificationError(
                    f"{name}: transition lines must be '<event> <next_state>', got {line!r}"
                )
            event, target = tokens
            if event in current_transitions:
                raise SpecificationError(
                    f"{name}: duplicate transition for event {event!r} in state {current_state!r}"
                )
            current_transitions[event] = target
    flush()

    return StateMachineSpecification(
        name=name,
        global_states=tuple(global_states),
        events=tuple(events),
        states=states,
    )


def format_state_machine_specification(spec: StateMachineSpecification) -> str:
    """Render a specification back into the paper's textual format."""
    lines: list[str] = ["global_state_list"]
    lines.extend(spec.global_states)
    lines.append("end_global_state_list")
    lines.append("event_list")
    lines.extend(spec.events)
    lines.append("end_event_list")
    lines.append("")
    for state_name in spec.states:
        state = spec.states[state_name]
        header = f"state {state.name}"
        if state.notify:
            header += " notify " + " ".join(state.notify)
        else:
            header += " notify"
        lines.append(header)
        for event, target in state.transitions.items():
            lines.append(f"{event} {target}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def build_specification(
    name: str,
    global_states: Iterable[str],
    events: Iterable[str],
    states: Iterable[StateSpecification],
) -> StateMachineSpecification:
    """Convenience constructor from iterables (used by the example apps)."""
    return StateMachineSpecification(
        name=name,
        global_states=tuple(global_states),
        events=tuple(events),
        states={state.name: state for state in states},
    )
