"""Fault specifications (Section 3.5.5).

Each entry of a fault specification has the form::

    <FaultName> <BooleanFaultExpression> <once|always>

for example::

    F1 ((SM1:ELECT) & (SM2:FOLLOW)) always

The fault ``F1`` is injected whenever the Boolean expression transitions
from false to true because of a change in the partial view of the global
state.  ``once`` restricts the injection to the first such transition of
the experiment; ``always`` injects on every such transition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.expression import Expression, parse_expression
from repro.errors import SpecificationError


class FaultTrigger(enum.Enum):
    """Whether a fault fires on the first matching transition or on every one."""

    ONCE = "once"
    ALWAYS = "always"

    @classmethod
    def from_text(cls, text: str) -> "FaultTrigger":
        """Parse the ``once``/``always`` keyword (case-insensitive)."""
        normalized = text.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise SpecificationError(f"fault trigger must be 'once' or 'always', got {text!r}")


@dataclass(frozen=True)
class FaultDefinition:
    """One fault: a name, a Boolean expression, and a trigger mode."""

    name: str
    expression: Expression
    trigger: FaultTrigger = FaultTrigger.ALWAYS

    def should_fire(self, previous: bool, current: bool, already_fired: bool) -> bool:
        """Positive-edge-triggered firing rule of the fault parser.

        The fault fires only when the expression value transitions from
        false to true, and — for ``once`` faults — only if it has not fired
        before in this experiment.
        """
        if previous or not current:
            return False
        if self.trigger is FaultTrigger.ONCE and already_fired:
            return False
        return True

    def evaluate(self, view: Mapping[str, str]) -> bool:
        """Evaluate the fault expression against a partial view."""
        return self.expression.evaluate(view)

    def machines(self) -> frozenset[str]:
        """State machines referenced by the fault expression."""
        return self.expression.machines()

    def to_text(self) -> str:
        """Render as one fault-specification line."""
        return f"{self.name} {self.expression.to_text()} {self.trigger.value}"


@dataclass(frozen=True)
class FaultSpecification:
    """An ordered collection of fault definitions for one state machine."""

    faults: tuple[FaultDefinition, ...] = ()

    def __post_init__(self) -> None:
        names = [fault.name for fault in self.faults]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate fault names in specification: {names}")

    def __iter__(self) -> Iterator[FaultDefinition]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def names(self) -> tuple[str, ...]:
        """Fault names in specification order."""
        return tuple(fault.name for fault in self.faults)

    def get(self, name: str) -> FaultDefinition | None:
        """Look up a fault by name."""
        for fault in self.faults:
            if fault.name == name:
                return fault
        return None

    def machines(self) -> frozenset[str]:
        """All state machines referenced by any fault expression."""
        result: frozenset[str] = frozenset()
        for fault in self.faults:
            result |= fault.machines()
        return result

    def describe(self) -> tuple[str, ...]:
        """One human-readable specification line per fault.

        Used by the scenario registry to derive fault metadata (and the
        README scenario table) straight from the built studies.
        """
        return tuple(fault.to_text() for fault in self.faults)

    @classmethod
    def from_definitions(cls, definitions: Iterable[FaultDefinition]) -> "FaultSpecification":
        """Build a specification from an iterable of definitions."""
        return cls(faults=tuple(definitions))


def parse_fault_specification(text: str) -> FaultSpecification:
    """Parse a fault-specification file into a :class:`FaultSpecification`.

    One fault per non-empty, non-comment line: the fault name, then the
    Boolean expression, then ``once`` or ``always``.
    """
    definitions: list[FaultDefinition] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) < 3:
            raise SpecificationError(
                f"fault specification line {line_number} must be "
                f"'<name> <expression> <once|always>': {line!r}"
            )
        name = tokens[0]
        trigger = FaultTrigger.from_text(tokens[-1])
        expression_text = " ".join(tokens[1:-1])
        expression = parse_expression(expression_text)
        definitions.append(FaultDefinition(name=name, expression=expression, trigger=trigger))
    return FaultSpecification.from_definitions(definitions)


def format_fault_specification(specification: FaultSpecification) -> str:
    """Render a fault specification back into the textual format."""
    return "\n".join(fault.to_text() for fault in specification.faults) + "\n"
