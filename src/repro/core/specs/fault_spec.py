"""Fault specifications (Section 3.5.5).

Each entry of a fault specification has the form::

    <FaultName> <BooleanFaultExpression> <once|always>

for example::

    F1 ((SM1:ELECT) & (SM2:FOLLOW)) always

The fault ``F1`` is injected whenever the Boolean expression transitions
from false to true because of a change in the partial view of the global
state.  ``once`` restricts the injection to the first such transition of
the experiment; ``always`` injects on every such transition.

A fault may carry a *network* action instead of the default probe
injection: an optional trailing ``network:<kind>[...]`` token (see
:class:`~repro.sim.topology.NetworkFaultSpec`) turns the fault into a
topology mutation — a partition, an (possibly one-way) link outage, a
degradation, or a loss/duplication/reordering change — applied by the
fault parser under exactly the same positive-edge-triggered rule as crash
faults::

    NP1 ((coordinator:PREPARE) & (part1:VOTED)) once network:partition[hosta|hostb+hostc;duration=0.08]
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.expression import Expression, parse_expression
from repro.errors import SpecificationError
from repro.sim.topology import NetworkFaultSpec


class FaultTrigger(enum.Enum):
    """Whether a fault fires on the first matching transition or on every one."""

    ONCE = "once"
    ALWAYS = "always"

    @classmethod
    def from_text(cls, text: str) -> "FaultTrigger":
        """Parse the ``once``/``always`` keyword (case-insensitive)."""
        normalized = text.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise SpecificationError(f"fault trigger must be 'once' or 'always', got {text!r}")


@dataclass(frozen=True)
class FaultDefinition:
    """One fault: a name, a Boolean expression, and a trigger mode.

    ``network`` selects the fault's *effect*: ``None`` (the default)
    injects through the probe into the application, while a
    :class:`~repro.sim.topology.NetworkFaultSpec` mutates the network
    topology instead.  Triggering is identical for both.
    """

    name: str
    expression: Expression
    trigger: FaultTrigger = FaultTrigger.ALWAYS
    network: NetworkFaultSpec | None = None

    def should_fire(self, previous: bool, current: bool, already_fired: bool) -> bool:
        """Positive-edge-triggered firing rule of the fault parser.

        The fault fires only when the expression value transitions from
        false to true, and — for ``once`` faults — only if it has not fired
        before in this experiment.
        """
        if previous or not current:
            return False
        if self.trigger is FaultTrigger.ONCE and already_fired:
            return False
        return True

    def evaluate(self, view: Mapping[str, str]) -> bool:
        """Evaluate the fault expression against a partial view."""
        return self.expression.evaluate(view)

    def machines(self) -> frozenset[str]:
        """State machines referenced by the fault expression."""
        return self.expression.machines()

    def to_text(self) -> str:
        """Render as one fault-specification line."""
        line = f"{self.name} {self.expression.to_text()} {self.trigger.value}"
        if self.network is not None:
            line += f" {self.network.to_token()}"
        return line


@dataclass(frozen=True)
class FaultSpecification:
    """An ordered collection of fault definitions for one state machine."""

    faults: tuple[FaultDefinition, ...] = ()

    def __post_init__(self) -> None:
        names = [fault.name for fault in self.faults]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate fault names in specification: {names}")

    def __iter__(self) -> Iterator[FaultDefinition]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def names(self) -> tuple[str, ...]:
        """Fault names in specification order."""
        return tuple(fault.name for fault in self.faults)

    def get(self, name: str) -> FaultDefinition | None:
        """Look up a fault by name."""
        for fault in self.faults:
            if fault.name == name:
                return fault
        return None

    def machines(self) -> frozenset[str]:
        """All state machines referenced by any fault expression."""
        result: frozenset[str] = frozenset()
        for fault in self.faults:
            result |= fault.machines()
        return result

    def describe(self) -> tuple[str, ...]:
        """One human-readable specification line per fault.

        Used by the scenario registry to derive fault metadata (and the
        README scenario table) straight from the built studies.
        """
        return tuple(fault.to_text() for fault in self.faults)

    @classmethod
    def from_definitions(cls, definitions: Iterable[FaultDefinition]) -> "FaultSpecification":
        """Build a specification from an iterable of definitions."""
        return cls(faults=tuple(definitions))


def network_fault(
    name: str,
    expression: Expression | str,
    spec: NetworkFaultSpec,
    trigger: FaultTrigger = FaultTrigger.ONCE,
) -> FaultDefinition:
    """Build a state-triggered network fault.

    ``expression`` may be an :class:`~repro.core.expression.Expression` or
    its textual form.  The returned definition fires under the standard
    positive-edge rule and, instead of injecting into the application,
    applies ``spec`` to the experiment's network model.
    """
    if isinstance(expression, str):
        expression = parse_expression(expression)
    return FaultDefinition(name=name, expression=expression, trigger=trigger, network=spec)


def parse_fault_specification(text: str) -> FaultSpecification:
    """Parse a fault-specification file into a :class:`FaultSpecification`.

    One fault per non-empty, non-comment line: the fault name, then the
    Boolean expression, then ``once`` or ``always``, then optionally a
    ``network:<kind>[...]`` token marking the fault as a network fault.
    """
    definitions: list[FaultDefinition] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        network: NetworkFaultSpec | None = None
        if tokens and tokens[-1].startswith("network:"):
            network = NetworkFaultSpec.from_token(tokens[-1])
            tokens = tokens[:-1]
        if len(tokens) < 3:
            raise SpecificationError(
                f"fault specification line {line_number} must be "
                f"'<name> <expression> <once|always> [network:<kind>[...]]': {line!r}"
            )
        name = tokens[0]
        trigger = FaultTrigger.from_text(tokens[-1])
        expression_text = " ".join(tokens[1:-1])
        expression = parse_expression(expression_text)
        definitions.append(
            FaultDefinition(
                name=name, expression=expression, trigger=trigger, network=network
            )
        )
    return FaultSpecification.from_definitions(definitions)


def format_fault_specification(specification: FaultSpecification) -> str:
    """Render a fault specification back into the textual format."""
    return "\n".join(fault.to_text() for fault in specification.faults) + "\n"
