"""Campaign-execution support files (Sections 3.5.1, 3.5.2, and 5.6).

These are the small text files used by the central and local daemons to
start experiments:

* the **node file** — one line per state machine, ``<SM NickName>
  [<HostName>]``; machines with a host name are started at the beginning of
  every experiment, the others only enter dynamically;
* the **daemon startup file** — ``<HostName> <PortNumber>`` for each local
  daemon;
* the **daemon contact file** — ``<HostName> <SharedMemoryID>
  <SemaphoreID>`` written by the local daemons for the state-machine
  transports;
* the **machines file** — one host name per line;
* the **study file** — the per-state-machine description of one study
  (nickname, node file, specification files, executable, arguments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecificationError


@dataclass(frozen=True)
class NodeFileEntry:
    """One node-file line: a state machine and its optional start-up host."""

    nickname: str
    host: str | None = None

    @property
    def starts_at_beginning(self) -> bool:
        """Machines with a host are started at the beginning of an experiment."""
        return self.host is not None

    def to_text(self) -> str:
        """Render as one node-file line."""
        return self.nickname if self.host is None else f"{self.nickname} {self.host}"


def parse_node_file(text: str) -> tuple[NodeFileEntry, ...]:
    """Parse a node file into entries (one per state machine)."""
    entries: list[NodeFileEntry] = []
    seen: set[str] = set()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) > 2:
            raise SpecificationError(
                f"node file line {line_number} must be '<nickname> [<host>]': {line!r}"
            )
        nickname = tokens[0]
        if nickname in seen:
            raise SpecificationError(f"node file lists state machine {nickname!r} twice")
        seen.add(nickname)
        host = tokens[1] if len(tokens) == 2 else None
        entries.append(NodeFileEntry(nickname=nickname, host=host))
    return tuple(entries)


def format_node_file(entries: tuple[NodeFileEntry, ...] | list[NodeFileEntry]) -> str:
    """Render node-file entries back into the textual format."""
    return "\n".join(entry.to_text() for entry in entries) + "\n"


@dataclass(frozen=True)
class DaemonStartupEntry:
    """One daemon-startup-file line: the port of the local daemon on a host."""

    host: str
    port: int

    def to_text(self) -> str:
        """Render as one daemon-startup-file line."""
        return f"{self.host} {self.port}"


def parse_daemon_startup_file(text: str) -> tuple[DaemonStartupEntry, ...]:
    """Parse the daemon startup file (``<HostName> <PortNumber>`` per line)."""
    entries: list[DaemonStartupEntry] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) != 2:
            raise SpecificationError(
                f"daemon startup file line {line_number} must be '<host> <port>': {line!r}"
            )
        try:
            port = int(tokens[1])
        except ValueError:
            raise SpecificationError(
                f"daemon startup file line {line_number}: port must be an integer: {line!r}"
            ) from None
        entries.append(DaemonStartupEntry(host=tokens[0], port=port))
    return tuple(entries)


def format_daemon_startup_file(entries) -> str:
    """Render daemon-startup entries back into the textual format."""
    return "\n".join(entry.to_text() for entry in entries) + "\n"


@dataclass(frozen=True)
class DaemonContactEntry:
    """One daemon-contact-file line: how to reach the local daemon on a host."""

    host: str
    shared_memory_id: int
    semaphore_id: int

    def to_text(self) -> str:
        """Render as one daemon-contact-file line."""
        return f"{self.host} {self.shared_memory_id} {self.semaphore_id}"


def parse_daemon_contact_file(text: str) -> tuple[DaemonContactEntry, ...]:
    """Parse the daemon contact file (``<host> <shm id> <sem id>`` per line)."""
    entries: list[DaemonContactEntry] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) != 3:
            raise SpecificationError(
                f"daemon contact file line {line_number} must be "
                f"'<host> <shared memory id> <semaphore id>': {line!r}"
            )
        try:
            shared_memory_id = int(tokens[1])
            semaphore_id = int(tokens[2])
        except ValueError:
            raise SpecificationError(
                f"daemon contact file line {line_number}: identifiers must be integers: {line!r}"
            ) from None
        entries.append(
            DaemonContactEntry(
                host=tokens[0],
                shared_memory_id=shared_memory_id,
                semaphore_id=semaphore_id,
            )
        )
    return tuple(entries)


def format_daemon_contact_file(entries) -> str:
    """Render daemon-contact entries back into the textual format."""
    return "\n".join(entry.to_text() for entry in entries) + "\n"


def parse_machines_file(text: str) -> tuple[str, ...]:
    """Parse the machines file: one host name per line."""
    hosts: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line in hosts:
            raise SpecificationError(f"machines file lists host {line!r} twice")
        hosts.append(line)
    return tuple(hosts)


def format_machines_file(hosts) -> str:
    """Render a machines file from an iterable of host names."""
    return "\n".join(hosts) + "\n"


@dataclass(frozen=True)
class StudyFile:
    """The per-state-machine study file of Section 5.6.

    Attributes mirror the paper's format: nickname, node file path,
    state-machine specification file path, fault specification file path,
    the instrumented application executable path, and the application
    arguments (which cannot change between experiments of a study).
    """

    nickname: str
    node_file: str
    state_machine_specification_file: str
    fault_specification_file: str
    executable: str
    arguments: tuple[str, ...] = field(default_factory=tuple)

    def to_text(self) -> str:
        """Render as a study file."""
        lines = [
            self.nickname,
            self.node_file,
            self.state_machine_specification_file,
            self.fault_specification_file,
            self.executable,
            " ".join(self.arguments),
        ]
        return "\n".join(lines) + "\n"


def parse_study_file(text: str) -> StudyFile:
    """Parse a study file (six lines; the last one may be empty)."""
    lines = [line.rstrip() for line in text.splitlines()]
    # Drop trailing blank lines but preserve an intentionally empty argument line.
    while len(lines) > 6 and not lines[-1]:
        lines.pop()
    if len(lines) < 5:
        raise SpecificationError(
            "study file must contain nickname, node file, state machine specification, "
            f"fault specification, and executable lines; got {len(lines)} lines"
        )
    arguments: tuple[str, ...] = ()
    if len(lines) >= 6 and lines[5].strip():
        arguments = tuple(lines[5].split())
    return StudyFile(
        nickname=lines[0].strip(),
        node_file=lines[1].strip(),
        state_machine_specification_file=lines[2].strip(),
        fault_specification_file=lines[3].strip(),
        executable=lines[4].strip(),
        arguments=arguments,
    )


def format_study_file(study_file: StudyFile) -> str:
    """Render a :class:`StudyFile` back into the textual format."""
    return study_file.to_text()
