"""Boolean fault expressions over ``(StateMachine:State)`` atoms.

Section 3.5.5 defines the fault-specification expression language: atoms of
the form ``(SM:STATE)`` combined with AND (``&``), OR (``|``), and NOT
(``~``) operators, for example::

    ((SM1:ELECT) & (SM2:FOLLOW))

An expression is evaluated against a *partial view of the global state*,
i.e. a mapping from state-machine nickname to that machine's last known
state.  A machine missing from the view (because it has not started or has
not yet notified) makes its atoms evaluate to false.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import ExpressionError


class Expression(ABC):
    """Abstract Boolean expression over state-machine states."""

    @abstractmethod
    def evaluate(self, view: Mapping[str, str]) -> bool:
        """Evaluate against a partial view of the global state."""

    @abstractmethod
    def machines(self) -> frozenset[str]:
        """Nicknames of every state machine the expression references."""

    @abstractmethod
    def atoms(self) -> frozenset["StateAtom"]:
        """Every ``(machine, state)`` atom appearing in the expression."""

    @abstractmethod
    def to_text(self) -> str:
        """Render in the paper's textual syntax (round-trips with the parser)."""

    def __str__(self) -> str:
        return self.to_text()


@dataclass(frozen=True)
class StateAtom(Expression):
    """The atom ``(machine:state)``: true when ``machine`` is in ``state``."""

    machine: str
    state: str

    def evaluate(self, view: Mapping[str, str]) -> bool:
        return view.get(self.machine) == self.state

    def machines(self) -> frozenset[str]:
        return frozenset({self.machine})

    def atoms(self) -> frozenset["StateAtom"]:
        return frozenset({self})

    def to_text(self) -> str:
        return f"({self.machine}:{self.state})"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def evaluate(self, view: Mapping[str, str]) -> bool:
        return not self.operand.evaluate(view)

    def machines(self) -> frozenset[str]:
        return self.operand.machines()

    def atoms(self) -> frozenset[StateAtom]:
        return self.operand.atoms()

    def to_text(self) -> str:
        return f"~{self.operand.to_text()}"


@dataclass(frozen=True)
class And(Expression):
    """Logical conjunction of two operands."""

    left: Expression
    right: Expression

    def evaluate(self, view: Mapping[str, str]) -> bool:
        return self.left.evaluate(view) and self.right.evaluate(view)

    def machines(self) -> frozenset[str]:
        return self.left.machines() | self.right.machines()

    def atoms(self) -> frozenset[StateAtom]:
        return self.left.atoms() | self.right.atoms()

    def to_text(self) -> str:
        return f"({self.left.to_text()} & {self.right.to_text()})"


@dataclass(frozen=True)
class Or(Expression):
    """Logical disjunction of two operands."""

    left: Expression
    right: Expression

    def evaluate(self, view: Mapping[str, str]) -> bool:
        return self.left.evaluate(view) or self.right.evaluate(view)

    def machines(self) -> frozenset[str]:
        return self.left.machines() | self.right.machines()

    def atoms(self) -> frozenset[StateAtom]:
        return self.left.atoms() | self.right.atoms()

    def to_text(self) -> str:
        return f"({self.left.to_text()} | {self.right.to_text()})"


def conjunction(operands: list[Expression]) -> Expression:
    """Build a left-associated AND of all operands (at least one required)."""
    if not operands:
        raise ExpressionError("conjunction requires at least one operand")
    result = operands[0]
    for operand in operands[1:]:
        result = And(result, operand)
    return result


def disjunction(operands: list[Expression]) -> Expression:
    """Build a left-associated OR of all operands (at least one required)."""
    if not operands:
        raise ExpressionError("disjunction requires at least one operand")
    result = operands[0]
    for operand in operands[1:]:
        result = Or(result, operand)
    return result


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<lparen>\() |
    (?P<rparen>\)) |
    (?P<and>&) |
    (?P<or>\|) |
    (?P<not>~) |
    (?P<atom>[A-Za-z_][\w.\-]*\s*:\s*[A-Za-z_][\w.\-]*) |
    (?P<ws>\s+) |
    (?P<error>.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    for match in _TOKEN_PATTERN.finditer(text):
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "error":
            raise ExpressionError(
                f"unexpected character {match.group()!r} at position {match.start()} in {text!r}"
            )
        yield _Token(kind, match.group(), match.start())


class _Parser:
    """Recursive-descent parser: ``or`` has lowest precedence, then ``and``, then ``not``."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._index = 0

    def parse(self) -> Expression:
        if not self._tokens:
            raise ExpressionError("empty fault expression")
        expression = self._parse_or()
        if self._index != len(self._tokens):
            token = self._tokens[self._index]
            raise ExpressionError(
                f"unexpected token {token.text!r} at position {token.position} in {self._text!r}"
            )
        return expression

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ExpressionError(f"unexpected end of expression in {self._text!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise ExpressionError(
                f"expected {kind} but found {token.text!r} at position {token.position} "
                f"in {self._text!r}"
            )
        return token

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while True:
            token = self._peek()
            if token is None or token.kind != "or":
                return left
            self._advance()
            left = Or(left, self._parse_and())

    def _parse_and(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token is None or token.kind != "and":
                return left
            self._advance()
            left = And(left, self._parse_unary())

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token is None:
            raise ExpressionError(f"unexpected end of expression in {self._text!r}")
        if token.kind == "not":
            self._advance()
            return Not(self._parse_unary())
        if token.kind == "lparen":
            self._advance()
            inner = self._parse_or()
            self._expect("rparen")
            return inner
        if token.kind == "atom":
            self._advance()
            machine, _, state = token.text.partition(":")
            return StateAtom(machine.strip(), state.strip())
        raise ExpressionError(
            f"unexpected token {token.text!r} at position {token.position} in {self._text!r}"
        )


def parse_expression(text: str) -> Expression:
    """Parse the paper's fault-expression syntax into an :class:`Expression`.

    Examples
    --------
    >>> parse_expression("((SM1:ELECT) & (SM2:FOLLOW))").evaluate(
    ...     {"SM1": "ELECT", "SM2": "FOLLOW"})
    True
    """
    return _Parser(text).parse()
