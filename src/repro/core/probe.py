"""The probe: the system-dependent part of the Loki runtime (Section 3.5.7).

The probe is written by the user while instrumenting the system under
study.  It has exactly two jobs:

* notify the state machine of local events occurring in the application
  (:meth:`Probe.notify_event`), and
* perform the actual fault injection when the fault parser asks for it
  (:meth:`Probe.inject_fault`), returning the local time of injection.

The example applications in :mod:`repro.apps` each ship a concrete probe;
:class:`CallbackProbe` is a convenience wrapper for tests and small scripts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from repro.errors import RuntimePhaseError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.statemachine import StateMachine


class Probe(ABC):
    """Base class for application probes."""

    def __init__(self) -> None:
        self._state_machine: "StateMachine | None" = None

    def attach(self, state_machine: "StateMachine") -> None:
        """Bind the probe to the node's state machine (done by the runtime)."""
        self._state_machine = state_machine

    @property
    def state_machine(self) -> "StateMachine":
        """The state machine this probe notifies."""
        if self._state_machine is None:
            raise RuntimePhaseError("probe is not attached to a state machine")
        return self._state_machine

    def notify_event(self, name: str) -> None:
        """Notify the state machine of a local event.

        The very first notification is interpreted as the node's initial
        state rather than an event (Section 3.5.7).
        """
        self.state_machine.notify_event(name)

    @abstractmethod
    def inject_fault(self, fault_name: str) -> float:
        """Perform the actual injection of ``fault_name``.

        Must return the local-clock time at which the fault was injected;
        the fault parser hands this time to the recorder.
        """

    def notify_on_crash(self) -> None:
        """Tell the runtime the node is crashing (overridden signal handler)."""
        self.state_machine.notify_on_crash()

    def notify_on_exit(self) -> None:
        """Tell the runtime the node is exiting cleanly."""
        self.state_machine.notify_on_exit()


class CallbackProbe(Probe):
    """A probe whose injection behaviour is a plain callable.

    Parameters
    ----------
    injector:
        Called as ``injector(fault_name)`` to perform the injection.  If it
        returns a number, that is used as the injection time; otherwise the
        state machine's clock is read after the callable returns.
    """

    def __init__(self, injector: Callable[[str], float | None] | None = None) -> None:
        super().__init__()
        self._injector = injector
        self.injected: list[tuple[str, float]] = []

    def inject_fault(self, fault_name: str) -> float:
        result: float | None = None
        if self._injector is not None:
            result = self._injector(fault_name)
        time = float(result) if result is not None else self.state_machine.read_clock()
        self.injected.append((fault_name, time))
        return time
