"""Campaigns, studies, and experiments (Section 2.2.3) and their execution.

The fault-injection process is organized into *campaigns*, each made of
*studies*, each made of repeated *experiments*.  A study fixes the state
machine specifications, fault specifications, node placement, runtime
design, and application arguments; an experiment is one run of the
distributed application with the study's fault injections.

:class:`CampaignRunner` executes campaigns on the simulated substrate: for
every experiment it builds a fresh environment (hosts with their own clocks
and schedulers), runs the pre-experiment synchronization mini-phase, starts
the daemons and the state machines named in the node file, lets the
experiment run to completion (or timeout), runs the post-experiment
synchronization mini-phase, and collects the local timelines and timestamp
records for the analysis phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable

from repro.analysis.clock_sync import SyncMessageRecord
from repro.core.runtime.context import (
    ExperimentContext,
    NodeDefinition,
    RestartPolicy,
    WatchdogConfig,
)
from repro.core.execution import ExecutionConfig, build_executor
from repro.core.runtime.daemons import CentralDaemonProcess, LocalDaemonProcess
from repro.core.runtime.designs import DaemonPlacement, RuntimeDesign
from repro.core.runtime.syncphase import SyncPhaseConfig, run_sync_phase
from repro.core.specs.fault_spec import FaultSpecification
from repro.core.timeline import LocalTimeline
from repro.errors import RuntimeConfigurationError
from repro.sim.clock import ClockParameters
from repro.sim.environment import Environment
from repro.sim.host import SchedulerConfig
from repro.sim.network import IPC_PROFILE, LAN_TCP_PROFILE, LinkProfile
from repro.sim.rng import RandomStreams
from repro.sim.topology import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.store import CampaignStore


@dataclass(frozen=True)
class HostConfig:
    """One host of the experiment testbed.

    ``clock=None`` asks the runner to draw a realistic offset/drift for the
    host from the experiment seed (so that the offline clock
    synchronization has something to estimate); ``scheduler=None`` uses the
    study's default scheduler.
    """

    name: str
    clock: ClockParameters | None = None
    scheduler: SchedulerConfig | None = None


@dataclass(frozen=True)
class ClockGenerationConfig:
    """How random host clocks are drawn when a host does not pin its clock."""

    max_offset: float = 0.005
    max_drift_ppm: float = 100.0
    granularity: float = 0.0


@dataclass
class StudyConfig:
    """One study: fixed specifications, placement, and runtime parameters.

    ``max_events`` is the hard backstop against applications that generate
    unbounded numbers of events inside the experiment timeout; hitting it
    marks the experiment aborted (it is not usable data).  ``execution``
    optionally overrides the campaign's execution backend when the study is
    run on its own (:func:`run_single_study`).
    """

    name: str
    hosts: list[HostConfig]
    nodes: list[NodeDefinition]
    experiments: int = 10
    design: RuntimeDesign = field(default_factory=RuntimeDesign.enhanced)
    experiment_timeout: float = 5.0
    restart_policy: RestartPolicy = field(default_factory=RestartPolicy)
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    sync: SyncPhaseConfig = field(default_factory=SyncPhaseConfig)
    default_scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    clock_generation: ClockGenerationConfig = field(default_factory=ClockGenerationConfig)
    ipc_profile: LinkProfile = IPC_PROFILE
    lan_profile: LinkProfile = LAN_TCP_PROFILE
    network: NetworkConfig = field(default_factory=NetworkConfig)
    seed: int = 0
    weight: float = 1.0
    max_events: int = 5_000_000
    execution: ExecutionConfig | None = None

    def __post_init__(self) -> None:
        if self.max_events < 1:
            raise RuntimeConfigurationError(
                f"study {self.name!r} needs a positive event cap (got {self.max_events})"
            )
        if not self.hosts:
            raise RuntimeConfigurationError(f"study {self.name!r} has no hosts")
        if not self.nodes:
            raise RuntimeConfigurationError(f"study {self.name!r} has no nodes")
        nicknames = [node.nickname for node in self.nodes]
        if len(set(nicknames)) != len(nicknames):
            raise RuntimeConfigurationError(
                f"study {self.name!r} has duplicate state machine nicknames: {nicknames}"
            )
        host_names = [host.name for host in self.hosts]
        if len(set(host_names)) != len(host_names):
            raise RuntimeConfigurationError(
                f"study {self.name!r} has duplicate host names: {host_names}"
            )

    @property
    def host_names(self) -> tuple[str, ...]:
        """The machines file of the study."""
        return tuple(host.name for host in self.hosts)

    def node_definitions(self) -> dict[str, NodeDefinition]:
        """Node definitions keyed by nickname."""
        return {node.nickname: node for node in self.nodes}

    def fault_specifications(self) -> dict[str, FaultSpecification]:
        """Fault specification of every state machine, keyed by nickname."""
        return {node.nickname: node.faults for node in self.nodes}

    def with_experiments(self, experiments: int) -> "StudyConfig":
        """A copy of the study with a different experiment count."""
        return replace(self, experiments=experiments)

    def with_seed(self, seed: int) -> "StudyConfig":
        """A copy of the study with a different master seed."""
        return replace(self, seed=seed)


@dataclass
class CampaignConfig:
    """A campaign: a named collection of studies over one system.

    ``execution`` selects the default execution backend for the campaign's
    experiments (see :mod:`repro.core.execution`); it can be overridden per
    call via ``CampaignRunner.run(execution=...)``.
    """

    name: str
    studies: list[StudyConfig]
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        names = [study.name for study in self.studies]
        if len(set(names)) != len(names):
            raise RuntimeConfigurationError(f"campaign {self.name!r} has duplicate study names")

    def study(self, name: str) -> StudyConfig:
        """Look up a study by name."""
        for study in self.studies:
            if study.name == name:
                return study
        raise RuntimeConfigurationError(f"campaign {self.name!r} has no study named {name!r}")


@dataclass
class ExperimentResult:
    """Everything collected from one experiment run."""

    study: str
    index: int
    seed: int
    local_timelines: dict[str, LocalTimeline]
    sync_messages: list[SyncMessageRecord]
    hosts: tuple[str, ...]
    reference_host: str
    host_clock_parameters: dict[str, ClockParameters]
    completed: bool
    aborted: bool
    abort_reason: str | None
    duration: float
    stats: dict[str, int]

    @property
    def machines(self) -> tuple[str, ...]:
        """Nicknames of the machines that produced timelines."""
        return tuple(self.local_timelines)


@dataclass
class StudyResult:
    """The experiments of one study."""

    config: StudyConfig
    experiments: list[ExperimentResult] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The study's name."""
        return self.config.name

    def completed_experiments(self) -> list[ExperimentResult]:
        """Experiments that ran to completion (not aborted or timed out)."""
        return [experiment for experiment in self.experiments if experiment.completed]


@dataclass
class CampaignResult:
    """The results of every study of a campaign."""

    config: CampaignConfig
    studies: dict[str, StudyResult] = field(default_factory=dict)

    def study(self, name: str) -> StudyResult:
        """Look up a study's results by name."""
        return self.studies[name]

    def all_experiments(self) -> list[ExperimentResult]:
        """Every experiment of every study."""
        experiments: list[ExperimentResult] = []
        # repro-lint: disable=R003 studies dict is filled in config order, which is stable
        for study in self.studies.values():
            experiments.extend(study.experiments)
        return experiments


class CampaignRunner:
    """Executes campaigns (the runtime phase) on the simulated substrate.

    The runner owns the per-experiment mechanics (environment construction,
    sync mini-phases, daemon spawning, timeline collection) and delegates
    *scheduling* of the experiments — serial or fanned out across a process
    pool — to the execution engine of :mod:`repro.core.execution`.
    """

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config

    def run(
        self,
        execution: ExecutionConfig | None = None,
        store: "CampaignStore | None" = None,
    ) -> CampaignResult:
        """Run every experiment of every study of the campaign.

        ``execution`` overrides the campaign's configured backend for this
        call; results are identical for every backend and worker count.
        ``store`` streams completed experiments into a
        :class:`~repro.store.CampaignStore` as they finish and skips
        experiments whose records already exist there (see
        :mod:`repro.store`).
        """
        return build_executor(execution or self.config.execution).run_campaign(
            self.config, runner_class=type(self), store=store
        )

    def run_study(
        self, study: StudyConfig, execution: ExecutionConfig | None = None
    ) -> StudyResult:
        """Run every experiment of one study."""
        chosen = execution or study.execution or self.config.execution
        return build_executor(chosen).run_study(study, runner_class=type(self))

    # -- one experiment ----------------------------------------------------------------

    @classmethod
    def run_experiment_of(cls, study: StudyConfig, index: int) -> ExperimentResult:
        """Run one experiment of ``study`` outside any campaign.

        This is the unit of work the execution engine dispatches to
        workers; it depends only on the study configuration and the
        experiment index, which is what makes experiment-level parallelism
        safe.
        """
        campaign = CampaignConfig(name=f"campaign-{study.name}", studies=[study])
        return cls(campaign).run_experiment(study, index)

    def run_experiment(self, study: StudyConfig, index: int) -> ExperimentResult:
        """Run a single experiment of a study and collect its raw results."""
        seed = self._experiment_seed(study, index)
        environment = Environment(
            seed=seed,
            default_scheduler=study.default_scheduler,
            ipc_profile=study.ipc_profile,
            lan_profile=study.lan_profile,
            network=study.network,
        )
        clock_parameters = self._build_hosts(environment, study, seed)
        reference = max(
            sorted(clock_parameters), key=lambda host: clock_parameters[host].rate
        )

        context = ExperimentContext(
            environment=environment,
            design=study.design,
            node_definitions=study.node_definitions(),
            hosts=study.host_names,
            restart_policy=study.restart_policy,
            watchdog=study.watchdog,
            experiment_timeout=study.experiment_timeout,
        )

        sync_messages: list[SyncMessageRecord] = []
        sync_messages.extend(
            run_sync_phase(environment, reference, study.host_names, study.sync)
        )

        start_time = environment.kernel.now
        # Timer-driven network faults fire at fixed offsets from experiment
        # start (after the pre-experiment sync mini-phase); they mutate the
        # topology without consuming any randomness, so studies without a
        # schedule are bit-identical to pre-topology runs.
        for scheduled in study.network.schedule:
            environment.kernel.schedule(
                scheduled.at, environment.network.apply, scheduled.spec, scheduled.name
            )
        self._spawn_daemons(environment, context)
        environment.spawn(CentralDaemonProcess(context), study.host_names[0])
        self._run_until_complete(environment, context, study)
        duration = environment.kernel.now - start_time

        sync_messages.extend(
            run_sync_phase(environment, reference, study.host_names, study.sync)
        )

        return ExperimentResult(
            study=study.name,
            index=index,
            seed=seed,
            local_timelines=context.timeline_store.timelines(),
            sync_messages=sync_messages,
            hosts=study.host_names,
            reference_host=reference,
            host_clock_parameters=clock_parameters,
            completed=context.experiment_complete and not context.experiment_aborted,
            aborted=context.experiment_aborted,
            abort_reason=context.abort_reason,
            duration=duration,
            stats=dict(context.stats),
        )

    # -- helpers --------------------------------------------------------------------------

    @staticmethod
    def _experiment_seed(study: StudyConfig, index: int) -> int:
        # Public stream API on purpose: serial and pooled workers both
        # re-derive this value independently, so the seed sequence is part
        # of the library's compatibility contract (pinned by tests).
        return RandomStreams(study.seed).derive(f"experiment:{study.name}:{index}")

    @staticmethod
    def _build_hosts(
        environment: Environment, study: StudyConfig, seed: int
    ) -> dict[str, ClockParameters]:
        clock_rng = RandomStreams(seed).stream("host-clocks")
        generation = study.clock_generation
        parameters: dict[str, ClockParameters] = {}
        for host in study.hosts:
            if host.clock is not None:
                clock = host.clock
            else:
                offset = clock_rng.uniform(-generation.max_offset, generation.max_offset)
                drift = clock_rng.uniform(-generation.max_drift_ppm, generation.max_drift_ppm)
                clock = ClockParameters(
                    offset=offset,
                    rate=1.0 + drift * 1e-6,
                    granularity=generation.granularity,
                )
            parameters[host.name] = clock
            environment.add_host(host.name, clock=clock, scheduler=host.scheduler)
        return parameters

    @staticmethod
    def _spawn_daemons(environment: Environment, context: ExperimentContext) -> None:
        design = context.design
        if design.placement is DaemonPlacement.CENTRALIZED:
            environment.spawn(
                LocalDaemonProcess(context, context.hosts[0]), context.hosts[0]
            )
        elif design.placement is DaemonPlacement.PARTIALLY_DISTRIBUTED:
            for host in context.hosts:
                environment.spawn(LocalDaemonProcess(context, host), host)
        else:
            for nickname in context.node_definitions:
                host = context.daemon_host_for(nickname)
                environment.spawn(
                    LocalDaemonProcess(context, host, served_machine=nickname), host
                )

    @staticmethod
    def _run_until_complete(
        environment: Environment, context: ExperimentContext, study: StudyConfig
    ) -> None:
        # The central daemon's timeout timer guarantees eventual completion;
        # the study's event cap is a backstop against runaway applications
        # that generate unbounded numbers of events within the timeout.
        # Hitting the cap means the run is truncated mid-flight, so it is
        # recorded as aborted rather than returned as (half-run) data.
        processed = 0
        while not context.experiment_complete and processed < study.max_events:
            if not environment.kernel.step():
                break
            processed += 1
        if not context.experiment_complete and processed >= study.max_events:
            context.mark_aborted(f"event cap reached ({study.max_events} events)")


def run_campaign(
    config: CampaignConfig,
    execution: ExecutionConfig | None = None,
    store: "CampaignStore | None" = None,
) -> CampaignResult:
    """Convenience wrapper: run a whole campaign with default settings.

    ``store`` makes the run durable and resumable; see :mod:`repro.store`.
    """
    return CampaignRunner(config).run(execution, store=store)


def run_single_study(
    study: StudyConfig, execution: ExecutionConfig | None = None
) -> StudyResult:
    """Convenience wrapper: run one study outside a campaign."""
    return build_executor(execution or study.execution).run_study(study)


def merge_study_results(results: Iterable[StudyResult]) -> list[ExperimentResult]:
    """Flatten several study results into one experiment list."""
    experiments: list[ExperimentResult] = []
    for result in results:
        experiments.extend(result.experiments)
    return experiments
