"""The state machine runtime component (Section 3.5.3).

One state machine is attached to every node.  It tracks the node's local
state (driven by probe event notifications and the state-machine
specification) and the partial view of the global state (driven by remote
state notifications delivered through the state-machine transport).  On
every change of the partial view it informs the fault parser, and on every
local state change it notifies the remote machines listed in the new
state's ``notify`` clause.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.faults import FaultParser
from repro.core.recorder import Recorder
from repro.core.specs.state_machine import (
    DEFAULT_EVENT,
    INITIAL_STATE,
    StateMachineSpecification,
)
from repro.errors import RuntimePhaseError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.runtime.transport import StateMachineTransport

#: Reserved names used when recording crash and restart transitions.
CRASH_STATE = "CRASH"
CRASH_EVENT = "CRASH"
RESTART_EVENT = "RESTART"
EXIT_STATE = "EXIT"


class StateMachine:
    """Tracks the local state and the partial view of the global state."""

    def __init__(
        self,
        spec: StateMachineSpecification,
        recorder: Recorder,
        transport: "StateMachineTransport | None" = None,
        fault_parser: FaultParser | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._spec = spec
        self._recorder = recorder
        self._transport = transport
        self._fault_parser = fault_parser
        self._clock = clock or recorder.now
        self._current_state = INITIAL_STATE
        self._initialized = False
        self._exited = False
        self._crashed = False
        self._view: dict[str, str] = {spec.name: INITIAL_STATE}
        self.ignored_events: list[tuple[str, str]] = []

    # -- basic accessors -----------------------------------------------------

    @property
    def name(self) -> str:
        """The state machine's unique nickname."""
        return self._spec.name

    @property
    def spec(self) -> StateMachineSpecification:
        """The specification this machine follows."""
        return self._spec

    @property
    def recorder(self) -> Recorder:
        """The recorder writing this machine's local timeline."""
        return self._recorder

    @property
    def current_state(self) -> str:
        """The machine's current local state."""
        return self._current_state

    @property
    def initialized(self) -> bool:
        """Whether the first probe notification (initial state) has arrived."""
        return self._initialized

    @property
    def exited(self) -> bool:
        """Whether the machine has exited cleanly."""
        return self._exited

    @property
    def crashed(self) -> bool:
        """Whether the machine has recorded a crash."""
        return self._crashed

    @property
    def partial_view(self) -> Mapping[str, str]:
        """The current partial view of the global state (read-only copy)."""
        return dict(self._view)

    def read_clock(self) -> float:
        """Read the local clock used for stamping this machine's records."""
        return self._clock()

    def attach_transport(self, transport: "StateMachineTransport") -> None:
        """Late-bind the state-machine transport."""
        self._transport = transport

    def attach_fault_parser(self, fault_parser: FaultParser) -> None:
        """Late-bind the fault parser."""
        self._fault_parser = fault_parser

    # -- probe interface -------------------------------------------------------

    def notify_event(self, name: str, time: float | None = None) -> None:
        """Handle a local event notification from the probe.

        The first notification sets the machine's initial state (its
        argument is a state name); every subsequent notification is a local
        event driving a transition per the specification.  Events with no
        transition from the current state (and no ``default`` wildcard) are
        ignored and remembered in :attr:`ignored_events`.
        """
        if self._exited or self._crashed:
            raise RuntimePhaseError(
                f"state machine {self.name!r} received event {name!r} after termination"
            )
        timestamp = self._clock() if time is None else time
        if not self._initialized:
            self._initialized = True
            self._enter_state(name, event=DEFAULT_EVENT, time=timestamp)
            return
        next_state = self._spec.transition(self._current_state, name)
        if next_state is None:
            self.ignored_events.append((self._current_state, name))
            return
        self._enter_state(next_state, event=name, time=timestamp)

    def notify_on_crash(self, time: float | None = None) -> None:
        """Record a crash transition (called from the node's signal handler)."""
        if self._crashed or self._exited:
            return
        timestamp = self._clock() if time is None else time
        self._crashed = True
        self._enter_state(CRASH_STATE, event=CRASH_EVENT, time=timestamp, terminal=True)
        if self._transport is not None:
            self._transport.notify_crash(self.name)

    def notify_on_exit(self, time: float | None = None) -> None:
        """Tell the runtime the node is exiting cleanly."""
        if self._crashed or self._exited:
            return
        self._exited = True
        if self._transport is not None:
            self._transport.notify_exit(self.name)

    # -- transport interface ---------------------------------------------------

    def receive_remote_state(self, machine: str, state: str) -> None:
        """Handle a state notification from a remote state machine."""
        if machine == self.name:
            return
        if self._view.get(machine) == state:
            return
        self._view[machine] = state
        self._notify_fault_parser()

    def bulk_update_view(self, states: Mapping[str, str]) -> None:
        """Install several remote states at once (used on node restart)."""
        changed = False
        for machine, state in states.items():
            if machine == self.name:
                continue
            if self._view.get(machine) != state:
                self._view[machine] = state
                changed = True
        if changed:
            self._notify_fault_parser()

    # -- internals ---------------------------------------------------------------

    def _enter_state(self, new_state: str, event: str, time: float, terminal: bool = False) -> None:
        self._current_state = new_state
        self._view[self.name] = new_state
        self._recorder.record_state_change(event=event, new_state=new_state, time=time)
        notify_targets = self._spec.notify_list(new_state)
        if notify_targets and self._transport is not None:
            self._transport.send_state_notification(self.name, notify_targets, new_state)
        if not terminal:
            self._notify_fault_parser()

    def _notify_fault_parser(self) -> None:
        if self._fault_parser is not None:
            self._fault_parser.on_view_change(dict(self._view))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StateMachine({self.name!r}, state={self._current_state!r})"
