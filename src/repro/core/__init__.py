"""The Loki fault injector core.

This package contains the paper's primary contribution: the specification
formats (state-machine and fault specifications, node/daemon/study files),
the runtime components attached to every node (state machine, state-machine
transport, fault parser, recorder, probe), the daemon-based runtime
architectures of Chapter 3, and the campaign/study/experiment orchestration
of Chapter 2.
"""

from repro.core.expression import And, Expression, Not, Or, StateAtom, parse_expression
from repro.core.faults import FaultParser, InjectionRequest
from repro.core.probe import CallbackProbe, Probe
from repro.core.recorder import Recorder
from repro.core.specs import (
    DaemonContactEntry,
    DaemonStartupEntry,
    FaultDefinition,
    FaultSpecification,
    FaultTrigger,
    NodeFileEntry,
    StateMachineSpecification,
    StateSpecification,
    StudyFile,
    format_fault_specification,
    format_node_file,
    format_state_machine_specification,
    parse_fault_specification,
    parse_machines_file,
    parse_node_file,
    parse_state_machine_specification,
)
from repro.core.statemachine import StateMachine
from repro.core.timeline import (
    LocalTimeline,
    RecordKind,
    TimelineRecord,
    format_local_timeline,
    parse_local_timeline,
)

__all__ = [
    "And",
    "CallbackProbe",
    "DaemonContactEntry",
    "DaemonStartupEntry",
    "Expression",
    "FaultDefinition",
    "FaultParser",
    "FaultSpecification",
    "FaultTrigger",
    "InjectionRequest",
    "LocalTimeline",
    "NodeFileEntry",
    "Not",
    "Or",
    "Probe",
    "Recorder",
    "RecordKind",
    "StateAtom",
    "StateMachine",
    "StateMachineSpecification",
    "StateSpecification",
    "StudyFile",
    "TimelineRecord",
    "format_fault_specification",
    "format_local_timeline",
    "format_node_file",
    "format_state_machine_specification",
    "parse_expression",
    "parse_fault_specification",
    "parse_local_timeline",
    "parse_machines_file",
    "parse_node_file",
    "parse_state_machine_specification",
]
