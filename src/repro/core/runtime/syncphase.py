"""Synchronization-message mini-phases (Sections 2.3 and 2.5).

Before and after every experiment, the campaign runner exchanges a burst of
small timestamped messages between the reference machine and every other
machine.  Each message contributes a half-plane constraint to the offline
clock-synchronization algorithm, so bidirectional traffic both *before and
after* the experiment is what makes the drift (``beta``) bounds tight.

The messages are kept outside the experiment itself so they do not intrude
on the application (the paper's ``getstamps`` tool runs separately from the
system under study).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.clock_sync import SyncMessageRecord
from repro.sim.environment import Environment


@dataclass(frozen=True)
class SyncPhaseConfig:
    """Parameters of one synchronization-message mini-phase.

    Attributes
    ----------
    messages_per_phase:
        Number of message *pairs* (one in each direction) exchanged between
        the reference host and every other host.
    interval:
        Spacing between successive message pairs, in seconds.
    dedicated_receiver:
        When true (the default), the receiving timestamp process is assumed
        to be blocked waiting for the message and wakes up after only a
        context switch, as the paper's ``getstamps`` tool does; when false,
        the full OS scheduling delay of a busy host is charged, which
        widens the resulting clock bounds considerably.
    """

    messages_per_phase: int = 25
    interval: float = 0.001
    dedicated_receiver: bool = True


def run_sync_phase(
    environment: Environment,
    reference: str,
    hosts: tuple[str, ...],
    config: SyncPhaseConfig | None = None,
) -> list[SyncMessageRecord]:
    """Exchange synchronization messages and return the timestamp records.

    The exchange is simulated directly on the network/host models (no Loki
    processes are involved): each message records the sender's clock at
    transmission and the receiver's clock at reception, after the sampled
    LAN delay plus the receiver's OS scheduling delay — exactly the
    quantities a real ``getstamps`` run would log.
    """
    config = config or SyncPhaseConfig()
    records: list[SyncMessageRecord] = []
    kernel = environment.kernel
    lan = environment.lan_profile
    rng = environment.streams.stream("sync-phase")

    def exchange(sender: str, receiver: str) -> None:
        send_clock = environment.read_clock(sender)
        receiver_host = environment.host(receiver)
        if config.dedicated_receiver:
            wakeup = receiver_host.scheduler.context_switch_cost
        else:
            wakeup = receiver_host.scheduling_delay()
        delay = lan.sample_delay(rng) + wakeup
        kernel.schedule(delay, record_reception, sender, receiver, send_clock)

    def record_reception(sender: str, receiver: str, send_clock: float) -> None:
        records.append(
            SyncMessageRecord(
                sender=sender,
                receiver=receiver,
                send_time=send_clock,
                receive_time=environment.read_clock(receiver),
            )
        )

    others = [host for host in hosts if host != reference]
    for round_index in range(config.messages_per_phase):
        when = round_index * config.interval
        for host in others:
            kernel.schedule(when, exchange, reference, host)
            kernel.schedule(when + config.interval / 2.0, exchange, host, reference)

    phase_end = kernel.now + config.messages_per_phase * config.interval + 0.010
    environment.run(until=phase_end)
    return records
