"""Application-side interface of a Loki node.

The paper's probe is application code: the user instruments the system
under study (renames ``main`` to ``appMain``, inserts ``notifyEvent``
calls, and implements ``injectFault``).  In this reproduction an
application is an object implementing :class:`LokiApplication`; the
:class:`NodeContext` it receives plays the role of the instrumented
process: it exposes ``notify_event``, message passing to the other
components, timers, the local clock, and crash/exit.

:class:`ApplicationProbe` adapts a :class:`LokiApplication` to the
:class:`~repro.core.probe.Probe` interface expected by the fault parser.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.probe import Probe
from repro.sim.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.runtime.node import LokiNodeProcess


class LokiApplication:
    """Base class for instrumented applications (the system under study)."""

    def on_start(self, ctx: "NodeContext") -> None:
        """Called when the node starts for the first time (``appMain``)."""

    def on_restart(self, ctx: "NodeContext") -> None:
        """Called when the node is restarted after a crash.

        The default simply runs :meth:`on_start` again; applications that
        distinguish restart (as the leader-election example does) override
        this.
        """
        self.on_start(ctx)

    def on_message(self, ctx: "NodeContext", source: str, payload: Any) -> None:
        """Called for every application-level message received by the node."""

    def on_fault(self, ctx: "NodeContext", fault_name: str) -> None:
        """Perform the actual injection of ``fault_name``.

        The default injection crashes the process, which is the behaviour
        assumed for the Chapter 5 coverage evaluation; applications with
        richer fault models override this.
        """
        ctx.crash(reason=f"fault {fault_name}")

    def on_kill(self, ctx: "NodeContext") -> None:
        """Called just before the central daemon forcibly kills the node."""


class NodeContext:
    """Facilities a :class:`LokiApplication` can use from inside its node."""

    def __init__(self, node: "LokiNodeProcess") -> None:
        self._node = node

    # -- identity --------------------------------------------------------------

    @property
    def nickname(self) -> str:
        """The node's state-machine nickname (also its process name)."""
        return self._node.name

    @property
    def host_name(self) -> str:
        """The host the node is currently running on."""
        return self._node.host.name

    @property
    def is_restart(self) -> bool:
        """Whether this execution is a restart of a previously crashed node."""
        return self._node.is_restart

    @property
    def arguments(self) -> tuple[str, ...]:
        """The application arguments from the study file."""
        return self._node.definition.arguments

    @property
    def random(self) -> RandomStream:
        """A per-node deterministic random stream for application use.

        The stream is derived from the experiment seed by the node's
        :class:`~repro.sim.rng.RandomStreams` factory — never ambient
        :mod:`random` state — so application draws are reproducible.
        """
        return self._node.application_rng

    @property
    def alive(self) -> bool:
        """Whether the node process is still running."""
        return self._node.alive

    @property
    def current_state(self) -> str:
        """The node's current local state as tracked by the state machine."""
        return self._node.state_machine.current_state

    @property
    def partial_view(self) -> dict[str, str]:
        """The node's partial view of the global state (nickname to state)."""
        return dict(self._node.state_machine.partial_view)

    # -- Loki instrumentation ----------------------------------------------------

    def notify_event(self, name: str) -> None:
        """Send a local event notification to the state machine."""
        self._node.probe.notify_event(name)

    def note(self, text: str) -> None:
        """Attach a free-form note to the node's local timeline.

        Notes ride along with the timeline through both store codecs, so
        protocol-level facts that are richer than a state name (terms,
        commit indices, read versions) survive into offline analysis; the
        protocol-invariant harness in ``tests/protocol`` replays them.
        """
        self._node.recorder.record_note(text)

    def local_time(self) -> float:
        """Read the local hardware clock."""
        return self._node.local_clock()

    # -- interaction with the rest of the system ---------------------------------

    def send(self, destination: str, payload: Any, tag: str = "") -> None:
        """Send an application-level message to another node by nickname."""
        self._node.send_application_message(destination, payload, tag)

    def peers(self) -> tuple[str, ...]:
        """Nicknames of every state machine defined for the study (incl. self)."""
        return tuple(self._node.context.node_definitions)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule an application callback ``delay`` seconds from now."""
        self._node.set_timer(delay, callback, *args)

    # -- lifecycle ----------------------------------------------------------------

    def exit(self) -> None:
        """Terminate the node cleanly."""
        self._node.exit()

    def crash(self, reason: str = "application crash") -> None:
        """Crash the node (the default effect of an injected fault)."""
        self._node.crash(reason=reason)


class ApplicationProbe(Probe):
    """Adapts a :class:`LokiApplication` to the runtime's probe interface.

    The injection time reported to the fault parser is read *before* the
    application's fault handler runs, so that an injection whose effect is
    an immediate crash is still stamped inside the state that triggered it.
    """

    def __init__(self, application: LokiApplication, ctx: NodeContext) -> None:
        super().__init__()
        self._application = application
        self._ctx = ctx
        self.injected: list[tuple[str, float]] = []

    def inject_fault(self, fault_name: str) -> float:
        injection_time = self._ctx.local_time()
        self.injected.append((fault_name, injection_time))
        self._application.on_fault(self._ctx, fault_name)
        return injection_time
