"""Shared per-experiment state: node definitions, timelines, policies.

The :class:`ExperimentContext` is created by the campaign runner for every
experiment and handed to the central daemon, the local daemons, and every
node.  It owns the in-memory :class:`TimelineStore` (the analogue of the
NFS-mounted timeline files of the paper), the node definitions needed to
spawn state machines dynamically, the restart policy, and the counters used
by the design-choice ablation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.specs.fault_spec import FaultSpecification
from repro.core.specs.files import NodeFileEntry
from repro.core.specs.state_machine import (
    RESERVED_EVENTS,
    RESERVED_STATES,
    StateMachineSpecification,
)
from repro.core.runtime.designs import RuntimeDesign
from repro.core.timeline import LocalTimeline
from repro.errors import RuntimeConfigurationError
from repro.sim.environment import Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.runtime.application import LokiApplication
    from repro.core.runtime.node import LokiNodeProcess


@dataclass(frozen=True)
class NodeDefinition:
    """Everything needed to start (or restart) one state machine."""

    nickname: str
    specification: StateMachineSpecification
    faults: FaultSpecification
    application_factory: Callable[[], "LokiApplication"]
    start_host: str | None = None
    arguments: tuple[str, ...] = ()

    def node_file_entry(self) -> NodeFileEntry:
        """The node-file line corresponding to this definition."""
        return NodeFileEntry(nickname=self.nickname, host=self.start_host)


@dataclass(frozen=True)
class RestartPolicy:
    """Whether and how the central daemon restarts crashed nodes.

    ``restart_host`` selects where the node comes back up: ``"same"`` keeps
    it on the host it crashed on, ``"next"`` moves it to the next host of
    the machines file (exercising restart-on-a-different-host), and a
    concrete host name pins it.  ``success_probability`` models an imperfect
    recovery mechanism: each restart attempt independently succeeds with
    this probability, which gives the Chapter 5 coverage measure a known
    ground truth to estimate.
    """

    enabled: bool = False
    delay: float = 0.050
    max_restarts: int = 1
    restart_host: str = "same"
    success_probability: float = 1.0

    def choose_host(self, crashed_host: str, hosts: tuple[str, ...]) -> str:
        """Pick the host a crashed node should restart on."""
        if self.restart_host == "same":
            return crashed_host
        if self.restart_host == "next":
            if crashed_host in hosts and len(hosts) > 1:
                index = hosts.index(crashed_host)
                return hosts[(index + 1) % len(hosts)]
            return crashed_host
        if self.restart_host in hosts:
            return self.restart_host
        raise RuntimeConfigurationError(
            f"restart host {self.restart_host!r} is not in the machines file {hosts}"
        )


@dataclass(frozen=True)
class WatchdogConfig:
    """Local-daemon watchdog parameters (Section 3.6.2)."""

    interval: float = 0.100
    timeout: float = 0.350
    enabled: bool = True


class TimelineStore:
    """In-memory analogue of the NFS-mounted local timeline files.

    A restarted node finds its previous timeline here, which is how the
    runtime distinguishes a new node from a restarted one (Section 3.6.3).
    """

    def __init__(self) -> None:
        self._timelines: dict[str, LocalTimeline] = {}

    def has(self, machine: str) -> bool:
        """Whether a timeline already exists for ``machine``."""
        return machine in self._timelines

    def get(self, machine: str) -> LocalTimeline | None:
        """The timeline for ``machine`` if it exists."""
        return self._timelines.get(machine)

    def get_or_create(
        self,
        machine: str,
        all_machines: tuple[str, ...],
        specification: StateMachineSpecification,
        faults: FaultSpecification,
    ) -> LocalTimeline:
        """Return the existing timeline for ``machine`` or create a fresh one."""
        if machine in self._timelines:
            return self._timelines[machine]
        global_states = list(specification.global_states)
        for reserved in sorted(RESERVED_STATES):
            if reserved not in global_states:
                global_states.append(reserved)
        events = list(specification.events)
        for reserved in sorted(RESERVED_EVENTS):
            if reserved not in events:
                events.append(reserved)
        timeline = LocalTimeline(
            machine=machine,
            state_machines=tuple(all_machines),
            global_states=tuple(global_states),
            events=tuple(events),
            faults=faults,
        )
        self._timelines[machine] = timeline
        return timeline

    def timelines(self) -> dict[str, LocalTimeline]:
        """A copy of the nickname-to-timeline mapping."""
        return dict(self._timelines)

    def __len__(self) -> int:
        return len(self._timelines)


@dataclass
class ExperimentContext:
    """Everything shared across the runtime components of one experiment."""

    environment: Environment
    design: RuntimeDesign
    node_definitions: dict[str, NodeDefinition]
    hosts: tuple[str, ...]
    restart_policy: RestartPolicy = field(default_factory=RestartPolicy)
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    experiment_timeout: float = 10.0
    timeline_store: TimelineStore = field(default_factory=TimelineStore)
    stats: Counter = field(default_factory=Counter)

    # Mutable experiment status flags maintained by the central daemon.
    experiment_complete: bool = False
    experiment_aborted: bool = False
    abort_reason: str | None = None

    def __post_init__(self) -> None:
        for nickname, definition in self.node_definitions.items():
            if nickname != definition.nickname:
                raise RuntimeConfigurationError(
                    f"node definition key {nickname!r} does not match nickname "
                    f"{definition.nickname!r}"
                )
            if definition.start_host is not None and definition.start_host not in self.hosts:
                raise RuntimeConfigurationError(
                    f"node {nickname!r} starts on unknown host {definition.start_host!r}"
                )

    # -- naming -------------------------------------------------------------------

    @property
    def machine_names(self) -> tuple[str, ...]:
        """Nicknames of every state machine defined for the study."""
        return tuple(self.node_definitions)

    def daemon_name(self, host: str, machine: str | None = None) -> str:
        """Process name of the daemon serving ``machine`` on ``host``."""
        return self.design.daemon_name(host, machine)

    def daemon_names(self) -> tuple[str, ...]:
        """Process names of every routing daemon of the chosen design."""
        names: list[str] = []
        from repro.core.runtime.designs import DaemonPlacement

        if self.design.placement is DaemonPlacement.CENTRALIZED:
            names.append(self.design.daemon_name(self.hosts[0]))
        elif self.design.placement is DaemonPlacement.PARTIALLY_DISTRIBUTED:
            names.extend(self.design.daemon_name(host) for host in self.hosts)
        else:
            names.extend(
                self.design.daemon_name(self.daemon_host_for(nickname), nickname)
                for nickname in self.node_definitions
            )
        return tuple(names)

    def daemon_host_for(self, machine: str) -> str:
        """The host a fully-distributed daemon for ``machine`` lives on."""
        definition = self.node_definitions[machine]
        return definition.start_host or self.hosts[0]

    # -- node management ------------------------------------------------------------

    def node_file_entries(self) -> tuple[NodeFileEntry, ...]:
        """The node file used by the central daemon at experiment start."""
        # repro-lint: disable=R003 definition order comes from the study config and is stable
        return tuple(defn.node_file_entry() for defn in self.node_definitions.values())

    def spawn_node(self, nickname: str, host: str, is_restart: bool | None = None) -> "LokiNodeProcess":
        """Create and start the node process for ``nickname`` on ``host``."""
        from repro.core.runtime.node import LokiNodeProcess

        definition = self.node_definitions.get(nickname)
        if definition is None:
            raise RuntimeConfigurationError(f"unknown state machine {nickname!r}")
        existing = self.timeline_store.get(nickname)
        if is_restart is None:
            is_restart = existing is not None and not existing.is_empty()
        node = LokiNodeProcess(definition=definition, context=self, is_restart=is_restart)
        self.environment.spawn(node, host)
        self.stats["nodes_spawned"] += 1
        if is_restart:
            self.stats["nodes_restarted"] += 1
        return node

    def mark_complete(self) -> None:
        """Flag the experiment as complete (set by the central daemon)."""
        self.experiment_complete = True

    def mark_aborted(self, reason: str) -> None:
        """Flag the experiment as aborted (timeout or daemon failure)."""
        self.experiment_aborted = True
        self.abort_reason = reason
        self.experiment_complete = True
