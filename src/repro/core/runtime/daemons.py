"""The central and local daemons of the enhanced runtime (Sections 3.5.1-3.5.2).

* The **local daemon** (one per host in the partially distributed design,
  one global router in the centralized design, one per node in the fully
  distributed design) services the state machines attached to it: it routes
  state notifications, watches its machines with a watchdog, writes crash
  events for machines that die silently, announces node locations to the
  other daemons, and performs the local experiment-completion check.

* The **central daemon** manages each experiment: it starts the state
  machines listed in the node file, enforces the experiment timeout,
  restarts crashed nodes according to the restart policy (possibly on a
  different host), and declares the experiment complete when no state
  machines are executing anywhere.
"""

from __future__ import annotations

from repro.core.runtime import messages as msg
from repro.core.runtime.context import ExperimentContext
from repro.core.runtime.designs import CENTRAL_DAEMON_NAME
from repro.sim.network import NetworkMessage
from repro.sim.process import SimProcess

#: Reserved state/event used when a daemon records a crash it detected itself.
_CRASH = "CRASH"


class LocalDaemonProcess(SimProcess):
    """Routing, watchdog, and bookkeeping daemon serving a set of nodes."""

    def __init__(
        self,
        context: ExperimentContext,
        host_name: str,
        served_machine: str | None = None,
    ) -> None:
        super().__init__(context.daemon_name(host_name, served_machine))
        self.context = context
        self.served_machine = served_machine
        self._local: dict[str, dict] = {}
        self._locations: dict[str, str] = {}
        self._dead: set[str] = set()
        self._watchdog_sequence = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        for peer in self.peer_daemons():
            self.send(peer, msg.DaemonHello(host=self.host.name))
        self.send(CENTRAL_DAEMON_NAME, msg.DaemonHello(host=self.host.name))
        if self.context.watchdog.enabled:
            self.set_timer(self.context.watchdog.interval, self._watchdog_tick)

    def peer_daemons(self) -> tuple[str, ...]:
        """Names of every other routing daemon in the experiment."""
        return tuple(name for name in self.context.daemon_names() if name != self.name)

    # -- message handling --------------------------------------------------------

    def receive(self, message: NetworkMessage) -> None:
        payload = message.payload
        if isinstance(payload, msg.RegisterNode):
            self._handle_register(payload)
        elif isinstance(payload, msg.RouteStateNotification):
            self._route(payload.source, payload.targets, payload.state)
        elif isinstance(payload, msg.DeliverStateNotification):
            for target in payload.targets:
                self._deliver_local(target, payload.source, payload.state)
        elif isinstance(payload, msg.CrashNotification):
            if payload.machine in self._local:
                self._handle_local_crash(payload.machine, self_reported=payload.self_reported)
            else:
                self._dead.add(payload.machine)
        elif isinstance(payload, msg.ExitNotification):
            if payload.machine in self._local:
                self._handle_local_exit(payload.machine)
            else:
                self._dead.add(payload.machine)
        elif isinstance(payload, msg.NodeLocation):
            self._locations[payload.machine] = payload.host
            self._dead.discard(payload.machine)
        elif isinstance(payload, msg.StartStateMachine):
            self.context.spawn_node(
                payload.machine,
                host=self.host.name,
                is_restart=True if payload.is_restart else None,
            )
        elif isinstance(payload, msg.KillStateMachine):
            self._kill(payload.machine)
        elif isinstance(payload, msg.KillAllStateMachines):
            for machine, info in list(self._local.items()):
                if info["alive"]:
                    self._kill(machine)
        elif isinstance(payload, msg.WatchdogAck):
            info = self._local.get(payload.machine)
            if info is not None:
                info["last_ack"] = self.local_clock()
        elif isinstance(payload, msg.StateUpdateRequest):
            self._handle_state_update_request(message, payload)
        elif isinstance(payload, msg.DaemonHello):
            pass
        else:
            self.context.stats["daemon_unknown_messages"] += 1

    # -- registration and routing --------------------------------------------------

    def _handle_register(self, payload: msg.RegisterNode) -> None:
        self._local[payload.machine] = {"alive": True, "last_ack": self.local_clock()}
        self._locations[payload.machine] = payload.host
        self._dead.discard(payload.machine)
        self.context.stats["registrations"] += 1
        announcement = msg.NodeLocation(
            machine=payload.machine, host=payload.host, is_restart=payload.is_restart
        )
        for peer in self.peer_daemons():
            self.send(peer, announcement)
        self.send(CENTRAL_DAEMON_NAME, announcement)

    def _route(self, source: str, targets: tuple[str, ...], state: str) -> None:
        self.context.stats["notifications_routed"] += 1
        remote_groups: dict[str, list[str]] = {}
        for target in targets:
            if target in self._dead:
                self.context.stats["notifications_to_dead"] += 1
                continue
            host = self._locations.get(target)
            if host is None:
                self.context.stats["notifications_unknown_target"] += 1
                continue
            daemon = self.context.daemon_name(host, target)
            if daemon == self.name:
                self._deliver_local(target, source, state)
            else:
                remote_groups.setdefault(daemon, []).append(target)
        for daemon, group in remote_groups.items():
            self.context.stats["daemon_forwards"] += 1
            self.send(
                daemon,
                msg.DeliverStateNotification(source=source, targets=tuple(group), state=state),
            )

    def _deliver_local(self, target: str, source: str, state: str) -> None:
        if target in self._dead:
            self.context.stats["notifications_to_dead"] += 1
            return
        self.context.stats["notifications_delivered"] += 1
        self.send(target, msg.StateNotification(source=source, state=state))

    def _handle_state_update_request(
        self, message: NetworkMessage, payload: msg.StateUpdateRequest
    ) -> None:
        sender = message.source.split("/", 1)[-1]
        from_peer_daemon = sender in self.context.daemon_names()
        if not from_peer_daemon:
            for peer in self.peer_daemons():
                self.send(peer, payload)
        for machine, info in self._local.items():
            if info["alive"] and machine != payload.requester:
                self.send(machine, payload)

    # -- crash, exit, and watchdog ----------------------------------------------------

    def _handle_local_crash(self, machine: str, self_reported: bool) -> None:
        info = self._local.get(machine)
        if info is None or not info["alive"]:
            return
        info["alive"] = False
        self._dead.add(machine)
        self.context.stats["crashes_detected"] += 1
        if not self_reported:
            self.context.stats["watchdog_crash_detections"] += 1
        timeline = self.context.timeline_store.get(machine)
        if timeline is not None and timeline.final_state() != _CRASH:
            timeline.add_state_change(
                event=_CRASH, new_state=_CRASH, time=self.local_clock(), host=self.host.name
            )
        notification = msg.CrashNotification(
            machine=machine, host=self.host.name, self_reported=self_reported
        )
        for peer in self.peer_daemons():
            self.send(peer, notification)
        self.send(CENTRAL_DAEMON_NAME, notification)
        self._check_local_end()

    def _handle_local_exit(self, machine: str) -> None:
        info = self._local.get(machine)
        if info is None or not info["alive"]:
            return
        info["alive"] = False
        self._dead.add(machine)
        self.context.stats["exits_observed"] += 1
        notification = msg.ExitNotification(machine=machine, host=self.host.name)
        for peer in self.peer_daemons():
            self.send(peer, notification)
        self.send(CENTRAL_DAEMON_NAME, notification)
        self._check_local_end()

    def _check_local_end(self) -> None:
        if self._local and not any(info["alive"] for info in self._local.values()):
            self.send(CENTRAL_DAEMON_NAME, msg.ExperimentEndNotification(host=self.host.name))

    def _kill(self, machine: str) -> None:
        process = self.context.environment.process(machine)
        if process is None or not process.alive:
            return
        kill = getattr(process, "kill", None)
        if callable(kill):
            kill()
        else:
            process.crash(reason="killed by daemon")
        self.context.stats["machines_killed"] += 1

    def _watchdog_tick(self) -> None:
        if not self.alive:
            return
        now = self.local_clock()
        timeout = self.context.watchdog.timeout
        self._watchdog_sequence += 1
        for machine, info in list(self._local.items()):
            if not info["alive"]:
                continue
            process = self.context.environment.process(machine)
            process_dead = process is None or not process.alive
            if process_dead or now - info["last_ack"] > timeout:
                self._handle_local_crash(machine, self_reported=False)
            else:
                self.send(machine, msg.WatchdogPing(sequence=self._watchdog_sequence))
        self.set_timer(self.context.watchdog.interval, self._watchdog_tick)


class CentralDaemonProcess(SimProcess):
    """Experiment manager: start-up, timeout, restart policy, completion."""

    def __init__(self, context: ExperimentContext) -> None:
        super().__init__(CENTRAL_DAEMON_NAME)
        self.context = context
        self._seen: set[str] = set()
        # Registration and termination *counts* per machine: notification
        # messages can overtake each other on the network (a crash report may
        # arrive before the registration announcement it refers to), so
        # liveness is derived from the difference of the two counters rather
        # than from message order.
        self._registrations: dict[str, int] = {}
        self._terminations: dict[str, int] = {}
        self._pending_restarts: set[str] = set()
        self._restart_counts: dict[str, int] = {}
        self._end_reports: set[str] = set()
        self.timed_out = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self.set_timer(self.context.experiment_timeout, self._on_timeout)
        self.context.environment.add_termination_listener(self._on_process_terminated)
        for entry in self.context.node_file_entries():
            if entry.host is None:
                continue
            daemon = self.context.daemon_name(entry.host, entry.nickname)
            self.send(daemon, msg.StartStateMachine(machine=entry.nickname))

    # -- message handling -----------------------------------------------------------

    def receive(self, message: NetworkMessage) -> None:
        payload = message.payload
        if isinstance(payload, msg.NodeLocation):
            self._seen.add(payload.machine)
            self._registrations[payload.machine] = self._registrations.get(payload.machine, 0) + 1
            self._pending_restarts.discard(payload.machine)
            self._check_complete()
        elif isinstance(payload, msg.CrashNotification):
            self._seen.add(payload.machine)
            self._terminations[payload.machine] = self._terminations.get(payload.machine, 0) + 1
            self._maybe_restart(payload.machine, payload.host)
            self._check_complete()
        elif isinstance(payload, msg.ExitNotification):
            self._seen.add(payload.machine)
            self._terminations[payload.machine] = self._terminations.get(payload.machine, 0) + 1
            self._check_complete()
        elif isinstance(payload, msg.ExperimentEndNotification):
            self._end_reports.add(payload.host)
            self._check_complete()
        elif isinstance(payload, (msg.DaemonHello, msg.WatchdogAck)):
            pass
        else:
            self.context.stats["central_unknown_messages"] += 1

    # -- completion, restart, timeout --------------------------------------------------

    def _live_machines(self) -> list[str]:
        machines = set(self._registrations) | set(self._terminations)
        return [
            machine
            for machine in machines
            if self._registrations.get(machine, 0) > self._terminations.get(machine, 0)
        ]

    def _check_complete(self) -> None:
        if self.context.experiment_complete:
            return
        # Every machine the node file starts at the beginning must have
        # registered at least once before the experiment can be considered
        # over; otherwise an early crash report that overtook the other
        # registrations could end the experiment prematurely.
        for entry in self.context.node_file_entries():
            if entry.host is not None and self._registrations.get(entry.nickname, 0) == 0:
                return
        if self._seen and not self._live_machines() and not self._pending_restarts:
            self.context.mark_complete()

    def _maybe_restart(self, machine: str, crashed_host: str) -> None:
        policy = self.context.restart_policy
        if not policy.enabled:
            return
        count = self._restart_counts.get(machine, 0)
        if count >= policy.max_restarts:
            return
        if policy.success_probability < 1.0:
            rng = self.context.environment.streams.stream("restart-policy")
            if rng.random() >= policy.success_probability:
                self.context.stats["restarts_failed"] += 1
                return
        self._restart_counts[machine] = count + 1
        self._pending_restarts.add(machine)
        host = policy.choose_host(crashed_host, self.context.hosts)
        self.set_timer(policy.delay, self._do_restart, machine, host)

    def _do_restart(self, machine: str, host: str) -> None:
        if self.context.experiment_complete or not self.alive:
            self._pending_restarts.discard(machine)
            return
        daemon = self.context.daemon_name(host, machine)
        self.send(daemon, msg.StartStateMachine(machine=machine, is_restart=True))
        self.context.stats["restarts_requested"] += 1

    def _on_timeout(self) -> None:
        if self.context.experiment_complete:
            return
        self.timed_out = True
        self.context.stats["experiment_timeouts"] += 1
        for daemon in self.context.daemon_names():
            self.send(daemon, msg.KillAllStateMachines())
        self.context.mark_aborted("experiment timeout")

    def _on_process_terminated(self, process, crashed: bool) -> None:
        if not crashed or self.context.experiment_complete:
            return
        if process.name in self.context.daemon_names():
            # A local daemon crashed: abnormality, abort the experiment
            # (host crash and reboot support is future work in the paper).
            for daemon in self.context.daemon_names():
                if daemon != process.name:
                    self.send(daemon, msg.KillAllStateMachines())
            self.context.mark_aborted(f"daemon {process.name} crashed")
