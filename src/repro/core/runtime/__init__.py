"""The Loki runtime architectures of Chapter 3.

This package contains everything that executes during the runtime phase of
an experiment: the node process that glues the application to the Loki
components, the state-machine transports, the local and central daemons of
the enhanced (partially distributed) architecture, the alternative design
choices of Section 3.4 used by the ablation benchmark, and the
synchronization-message mini-phases run before and after every experiment.
"""

from repro.core.runtime.application import ApplicationProbe, LokiApplication, NodeContext
from repro.core.runtime.context import ExperimentContext, TimelineStore
from repro.core.runtime.daemons import CentralDaemonProcess, LocalDaemonProcess
from repro.core.runtime.designs import CommunicationMode, DaemonPlacement, RuntimeDesign
from repro.core.runtime.node import LokiNodeProcess
from repro.core.runtime.transport import (
    DaemonRoutedTransport,
    DirectTransport,
    LoopbackTransport,
    StateMachineTransport,
)

__all__ = [
    "ApplicationProbe",
    "CentralDaemonProcess",
    "CommunicationMode",
    "DaemonPlacement",
    "DaemonRoutedTransport",
    "DirectTransport",
    "ExperimentContext",
    "LocalDaemonProcess",
    "LokiApplication",
    "LokiNodeProcess",
    "LoopbackTransport",
    "NodeContext",
    "RuntimeDesign",
    "StateMachineTransport",
    "TimelineStore",
]
