"""Message payloads exchanged by the Loki runtime components.

All runtime traffic — state notifications between state machines, daemon
control messages, watchdog pings, and experiment-management messages — is
carried by the simulated network as instances of the dataclasses below.
Keeping them as small immutable records makes the traffic easy to assert on
in tests and easy to count in the design-choice ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RegisterNode:
    """A node's state-machine transport registering with its daemon."""

    machine: str
    host: str
    is_restart: bool = False


@dataclass(frozen=True)
class StateNotification:
    """A state-change notification delivered to one recipient machine."""

    source: str
    state: str


@dataclass(frozen=True)
class RouteStateNotification:
    """A node asking its daemon to route a notification to several machines."""

    source: str
    targets: tuple[str, ...]
    state: str


@dataclass(frozen=True)
class DeliverStateNotification:
    """Daemon-to-daemon forwarding of a notification (one per recipient host)."""

    source: str
    targets: tuple[str, ...]
    state: str


@dataclass(frozen=True)
class CrashNotification:
    """A node crashed; ``self_reported`` distinguishes the signal-handler path."""

    machine: str
    host: str
    self_reported: bool = True


@dataclass(frozen=True)
class ExitNotification:
    """A node exited cleanly."""

    machine: str
    host: str


@dataclass(frozen=True)
class NodeLocation:
    """Daemon-to-daemon announcement of where a state machine is running."""

    machine: str
    host: str
    is_restart: bool = False


@dataclass(frozen=True)
class StartStateMachine:
    """Central daemon instructing a local daemon to start a state machine."""

    machine: str
    is_restart: bool = False


@dataclass(frozen=True)
class KillStateMachine:
    """Central daemon instructing a local daemon to kill one state machine."""

    machine: str


@dataclass(frozen=True)
class KillAllStateMachines:
    """Central daemon instructing a local daemon to kill every local machine."""


@dataclass(frozen=True)
class ExperimentEndNotification:
    """A local daemon telling the central daemon its local check found the end."""

    host: str


@dataclass(frozen=True)
class WatchdogPing:
    """Local daemon probing one of its state machines."""

    sequence: int


@dataclass(frozen=True)
class WatchdogAck:
    """A state machine answering a watchdog ping."""

    machine: str
    sequence: int


@dataclass(frozen=True)
class StateUpdateRequest:
    """A restarted node asking every machine for its current state."""

    requester: str


@dataclass(frozen=True)
class StateUpdateReply:
    """A machine answering a :class:`StateUpdateRequest` with its current state."""

    machine: str
    state: str


@dataclass(frozen=True)
class DaemonHello:
    """Local daemons introducing themselves to each other and to the central daemon."""

    host: str


@dataclass(frozen=True)
class ConnectionSetup:
    """Connection-establishment handshake (counted by the entry/exit ablation)."""

    source: str
    destination: str
    acknowledgement: bool = False


@dataclass(frozen=True)
class ApplicationMessage:
    """An application-level message between two nodes of the system under study."""

    source: str
    payload: object = None
    tag: str = ""
    metadata: dict = field(default_factory=dict)
