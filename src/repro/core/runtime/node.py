"""The Loki node: application plus attached runtime (Section 2.2.2).

A :class:`LokiNodeProcess` is one component of the distributed system under
study together with its Loki runtime: the state machine, state-machine
transport, fault parser, recorder, and probe.  The process name equals the
state machine's nickname, so application messages and Loki notifications
can both be addressed by nickname.
"""

from __future__ import annotations

from typing import Any

from repro.core.faults import FaultParser
from repro.core.recorder import Recorder
from repro.core.runtime import messages as msg
from repro.core.runtime.application import ApplicationProbe, NodeContext
from repro.core.runtime.context import ExperimentContext, NodeDefinition
from repro.core.runtime.designs import CommunicationMode
from repro.core.runtime.transport import DaemonRoutedTransport, DirectTransport
from repro.core.statemachine import StateMachine
from repro.sim.network import NetworkMessage
from repro.sim.process import SimProcess
from repro.sim.rng import RandomStream


class LokiNodeProcess(SimProcess):
    """One node of the system under study with the Loki runtime attached."""

    def __init__(
        self,
        definition: NodeDefinition,
        context: ExperimentContext,
        is_restart: bool = False,
    ) -> None:
        super().__init__(definition.nickname)
        self.definition = definition
        self.context = context
        self.is_restart = is_restart
        self.application = definition.application_factory()
        # The application's stream is derived from the experiment seed by
        # the environment's RandomStreams factory (named per node and per
        # start/restart generation), never from ambient random state.
        self.application_rng: RandomStream = context.environment.streams.stream(
            f"app:{definition.nickname}:{'restart' if is_restart else 'start'}"
        )
        self.state_machine: StateMachine | None = None
        self.probe: ApplicationProbe | None = None
        self.fault_parser: FaultParser | None = None
        self.recorder: Recorder | None = None
        self.transport = None
        self.node_context: NodeContext | None = None
        self._killed_by_daemon = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Assemble the runtime components and run the application's main."""
        timeline = self.context.timeline_store.get_or_create(
            machine=self.name,
            all_machines=self.context.machine_names,
            specification=self.definition.specification,
            faults=self.definition.faults,
        )
        self.recorder = Recorder(timeline, clock=self.local_clock, host=lambda: self.host.name)
        self.fault_parser = FaultParser(self.definition.faults, recorder=self.recorder)
        self.state_machine = StateMachine(
            spec=self.definition.specification,
            recorder=self.recorder,
            fault_parser=self.fault_parser,
            clock=self.local_clock,
        )
        self.transport = self._build_transport()
        self.state_machine.attach_transport(self.transport)
        self.node_context = NodeContext(self)
        self.probe = ApplicationProbe(self.application, self.node_context)
        self.probe.attach(self.state_machine)
        self.fault_parser.attach_probe(self.probe)
        self.fault_parser.attach_network_injector(self._inject_network_fault)

        daemon = self.context.daemon_name(self.host.name, self.name)
        self.send(daemon, msg.RegisterNode(machine=self.name, host=self.host.name,
                                           is_restart=self.is_restart))
        self.context.stats["connection_setups"] += 1

        if self.is_restart:
            self.recorder.record_note(
                f"RESTART on host {self.host.name} at local time {self.local_clock():.9f}"
            )
            # Obtain state updates from all other machines (Section 3.6.3).
            self.send(daemon, msg.StateUpdateRequest(requester=self.name))
            self.application.on_restart(self.node_context)
        else:
            self.application.on_start(self.node_context)

    def _build_transport(self):
        daemon = self.context.daemon_name(self.host.name, self.name)
        if self.context.design.communication is CommunicationMode.VIA_DAEMON:
            return DaemonRoutedTransport(
                send=self.send, machine=self.name, host=self.host.name, daemon=daemon
            )
        return DirectTransport(
            send=self.send, machine=self.name, host=self.host.name, daemon=daemon
        )

    def _inject_network_fault(self, fault) -> float:
        """Apply a topology-mutating fault (the network analogue of the probe).

        The injection time is read before the mutation so it is stamped
        inside the global state that triggered the fault, exactly like
        :class:`~repro.core.runtime.application.ApplicationProbe`.
        """
        injection_time = self.local_clock()
        self.context.environment.network.apply(fault.network, label=fault.name)
        self.context.stats["network_faults_injected"] += 1
        return injection_time

    def on_crash(self, reason: str) -> None:
        """Signal-handler analogue: record the crash before the process dies."""
        if self.state_machine is not None and not self.state_machine.crashed:
            self.state_machine.notify_on_crash()

    def on_exit(self) -> None:
        """Clean-exit hook: inform the daemon so the watchdog does not fire."""
        if self.state_machine is not None and not self.state_machine.exited:
            self.state_machine.notify_on_exit()

    def kill(self) -> None:
        """Forcible termination by the central daemon (experiment abort)."""
        if not self.alive:
            return
        self._killed_by_daemon = True
        if self.node_context is not None:
            self.application.on_kill(self.node_context)
        if self.alive:
            self.crash(reason="killed by daemon")

    # -- messaging ----------------------------------------------------------------

    def send_application_message(self, destination: str, payload: Any, tag: str = "") -> None:
        """Send an application-level message to another node."""
        self.send(destination, msg.ApplicationMessage(source=self.name, payload=payload, tag=tag))
        self.context.stats["application_messages"] += 1

    def receive(self, message: NetworkMessage) -> None:
        """Dispatch a delivered message to the runtime or the application."""
        payload = message.payload
        if isinstance(payload, msg.StateNotification):
            self.state_machine.receive_remote_state(payload.source, payload.state)
        elif isinstance(payload, msg.StateUpdateRequest):
            if payload.requester != self.name:
                self.send(
                    payload.requester,
                    msg.StateUpdateReply(machine=self.name,
                                         state=self.state_machine.current_state),
                )
        elif isinstance(payload, msg.StateUpdateReply):
            self.state_machine.receive_remote_state(payload.machine, payload.state)
        elif isinstance(payload, msg.WatchdogPing):
            daemon = self.context.daemon_name(self.host.name, self.name)
            self.send(daemon, msg.WatchdogAck(machine=self.name, sequence=payload.sequence))
        elif isinstance(payload, msg.ApplicationMessage):
            self.application.on_message(self.node_context, payload.source, payload.payload)
        else:
            self.context.stats["node_unknown_messages"] += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = self.state_machine.current_state if self.state_machine else "?"
        return f"LokiNodeProcess({self.name!r}, state={state!r}, alive={self.alive})"
