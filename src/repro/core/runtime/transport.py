"""State-machine transports (Section 3.5.4).

The state machine asks its transport to deliver state notifications to the
machines named in the new state's ``notify`` clause.  Two families of
transports exist, matching the communication modes of the design space:

* :class:`DaemonRoutedTransport` — the notification is handed to the node's
  daemon, which routes it towards the recipients (the enhanced runtime);
* :class:`DirectTransport` — the node sends one message straight to every
  recipient node (the original runtime and the "direct" design variants).

:class:`LoopbackTransport` delivers synchronously inside one process and is
used by unit tests and by single-process demonstrations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from repro.core.runtime import messages as msg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.statemachine import StateMachine


class StateMachineTransport(ABC):
    """Interface between a state machine and the notification fabric."""

    @abstractmethod
    def send_state_notification(self, source: str, targets: tuple[str, ...], state: str) -> None:
        """Deliver ``source``'s new ``state`` to every machine in ``targets``."""

    @abstractmethod
    def notify_crash(self, machine: str) -> None:
        """Announce that ``machine`` crashed (self-reported path)."""

    @abstractmethod
    def notify_exit(self, machine: str) -> None:
        """Announce that ``machine`` exited cleanly."""


class LoopbackTransport(StateMachineTransport):
    """Synchronous in-process delivery between registered state machines.

    Useful in unit tests and in the measure-layer examples where the full
    daemon fabric would only add noise.  Registration and delivery happen
    immediately, with no modelled delay.
    """

    def __init__(self) -> None:
        self._machines: dict[str, "StateMachine"] = {}
        self.crashes: list[str] = []
        self.exits: list[str] = []

    def register(self, machine: "StateMachine") -> None:
        """Make a state machine reachable through this transport."""
        self._machines[machine.name] = machine
        machine.attach_transport(self)

    def send_state_notification(self, source: str, targets: tuple[str, ...], state: str) -> None:
        for target in targets:
            recipient = self._machines.get(target)
            if recipient is not None:
                recipient.receive_remote_state(source, state)

    def notify_crash(self, machine: str) -> None:
        self.crashes.append(machine)

    def notify_exit(self, machine: str) -> None:
        self.exits.append(machine)


class NodeTransportBase(StateMachineTransport):
    """Common plumbing for transports attached to a :class:`LokiNodeProcess`."""

    def __init__(self, send: Callable[[str, object], None], machine: str, host: str) -> None:
        self._send = send
        self._machine = machine
        self._host = host
        self.notifications_sent = 0

    def _dispatch(self, destination: str, payload: object) -> None:
        self._send(destination, payload)


class DaemonRoutedTransport(NodeTransportBase):
    """Notifications are handed to the node's daemon for routing."""

    def __init__(
        self,
        send: Callable[[str, object], None],
        machine: str,
        host: str,
        daemon: str,
    ) -> None:
        super().__init__(send, machine, host)
        self._daemon = daemon

    @property
    def daemon(self) -> str:
        """Process name of the daemon this transport is connected to."""
        return self._daemon

    def send_state_notification(self, source: str, targets: tuple[str, ...], state: str) -> None:
        if not targets:
            return
        self.notifications_sent += 1
        self._dispatch(
            self._daemon,
            msg.RouteStateNotification(source=source, targets=tuple(targets), state=state),
        )

    def notify_crash(self, machine: str) -> None:
        self._dispatch(
            self._daemon,
            msg.CrashNotification(machine=machine, host=self._host, self_reported=True),
        )

    def notify_exit(self, machine: str) -> None:
        self._dispatch(self._daemon, msg.ExitNotification(machine=machine, host=self._host))


class DirectTransport(NodeTransportBase):
    """Notifications are sent directly to every recipient state machine.

    The daemon is still informed of crashes and exits so that experiment
    completion and crash bookkeeping keep working, matching the original
    runtime where the daemon-equivalent bookkeeping lived in the GUI.
    """

    def __init__(
        self,
        send: Callable[[str, object], None],
        machine: str,
        host: str,
        daemon: str,
    ) -> None:
        super().__init__(send, machine, host)
        self._daemon = daemon

    def send_state_notification(self, source: str, targets: tuple[str, ...], state: str) -> None:
        for target in targets:
            self.notifications_sent += 1
            self._dispatch(target, msg.StateNotification(source=source, state=state))

    def notify_crash(self, machine: str) -> None:
        self._dispatch(
            self._daemon,
            msg.CrashNotification(machine=machine, host=self._host, self_reported=True),
        )

    def notify_exit(self, machine: str) -> None:
        self._dispatch(self._daemon, msg.ExitNotification(machine=machine, host=self._host))
