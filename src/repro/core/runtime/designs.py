"""The runtime design choices of Section 3.4.

Three high-level designs were considered for the enhanced runtime,
distinguished by how many daemons exist and which nodes each one serves:

* **centralized** — a single global daemon serves every node over TCP/IP;
* **partially distributed** — one daemon per host, serving the nodes on
  that host over IPC (the design chosen for the enhanced runtime);
* **fully distributed** — one daemon per node, attached over IPC.

Orthogonally, state machines either exchange notifications *through the
daemons* or *directly* with each other.  The enhanced Loki runtime is the
partially distributed design with communication through the daemons; the
other combinations are implemented so the design comparison can be
reproduced quantitatively (benchmark ``TAB-3.4``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DaemonPlacement(enum.Enum):
    """How many daemons the design uses and what each one serves."""

    CENTRALIZED = "centralized"
    PARTIALLY_DISTRIBUTED = "partially_distributed"
    FULLY_DISTRIBUTED = "fully_distributed"


class CommunicationMode(enum.Enum):
    """Whether notifications travel through daemons or directly between nodes."""

    VIA_DAEMON = "via_daemon"
    DIRECT = "direct"


@dataclass(frozen=True)
class RuntimeDesign:
    """One point of the Section 3.4 design space."""

    placement: DaemonPlacement
    communication: CommunicationMode

    # -- the named designs discussed in the paper -----------------------------

    @classmethod
    def enhanced(cls) -> "RuntimeDesign":
        """The design chosen for the enhanced runtime (Section 3.5)."""
        return cls(DaemonPlacement.PARTIALLY_DISTRIBUTED, CommunicationMode.VIA_DAEMON)

    @classmethod
    def original(cls) -> "RuntimeDesign":
        """The original runtime: static membership, direct TCP between machines."""
        return cls(DaemonPlacement.PARTIALLY_DISTRIBUTED, CommunicationMode.DIRECT)

    @classmethod
    def all_designs(cls) -> tuple["RuntimeDesign", ...]:
        """Every placement/communication combination, for the ablation."""
        return tuple(
            cls(placement, communication)
            for placement in DaemonPlacement
            for communication in CommunicationMode
        )

    # -- properties the runtime and the ablation rely on -----------------------

    @property
    def via_daemon(self) -> bool:
        """Whether notifications are routed through daemons."""
        return self.communication is CommunicationMode.VIA_DAEMON

    @property
    def supports_dynamic_hosts(self) -> bool:
        """Whether new hosts can join during an experiment (centralized only)."""
        return self.placement is DaemonPlacement.CENTRALIZED

    @property
    def supports_dynamic_nodes(self) -> bool:
        """Whether nodes may enter/exit dynamically and restart on other hosts.

        The fully distributed design has a static node list, so a crashed
        node can only restart on the same host; the paper rejects it for
        that reason.
        """
        return self.placement is not DaemonPlacement.FULLY_DISTRIBUTED

    def daemon_name(self, host: str, machine: str | None = None) -> str:
        """The process name of the daemon serving ``machine`` on ``host``."""
        if self.placement is DaemonPlacement.CENTRALIZED:
            return CENTRAL_ROUTER_NAME
        if self.placement is DaemonPlacement.FULLY_DISTRIBUTED:
            if machine is None:
                raise ValueError("fully distributed design requires a machine name")
            return f"lokid.{machine}"
        return f"lokid@{host}"

    def describe(self) -> str:
        """Human-readable name used in benchmark output."""
        return f"{self.placement.value}/{self.communication.value}"

    def __str__(self) -> str:
        return self.describe()


#: Process name of the central daemon (experiment manager).
CENTRAL_DAEMON_NAME = "loki-central"

#: Process name of the single routing daemon of the centralized design.  The
#: experiment-managing central daemon is a separate process in every design,
#: so the centralized design's global router gets its own name.
CENTRAL_ROUTER_NAME = "lokid-global"
