"""A SWIM-style gossip failure detector.

Each member periodically pings one peer (randomized round-robin); a
missing direct ack falls back to indirect probing via *ping-req* proxies,
and a peer that stays silent is first *suspected* (gossiped, refutable by
an ``alive`` message from the accused) and, after a suspicion timeout,
*confirmed* dead (``@swim-confirm`` note, terminal).  The
protocol-invariant harness replays the notes to assert the detector's
crash-variant safety property — a confirmed-dead member really crashed —
and the partition scenario measures the classic SWIM trade-off the Loki
paper's measure machinery was built for: the number of *false* confirms
produced by a network partition of a given length (no member crashed, so
every confirmation is a false positive).

There is no dedicated "broken" flag: misconfiguring the detector with an
ack timeout below the network round trip (see
``tests/protocol/test_invariants_selftest.py``) makes every ping fail and
every member get confirmed dead while provably alive, which is how the
confirmed-dead checker is shown to be falsifiable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.protocol_notes import protocol_note
from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)
from repro.sim.topology import NetworkConfig

#: The default four-member group (two members share ``hosta``).
SWIM_MACHINES = ("m1", "m2", "m3", "m4")

SWIM_STATES = ("BEGIN", "INIT", "ACTIVE", "SUSPECTING", "CONFIRMING", "CRASH", "EXIT")
SWIM_EVENTS = (
    "INIT_DONE",
    "SUSPECT",
    "CLEAR",
    "CONFIRM",
    "CONFIRM_DONE",
    "CRASH",
    "ERROR",
)


def swim_state_machine_spec(name: str, peers: tuple[str, ...]) -> StateMachineSpecification:
    """One member's detector state machine.

    ``SUSPECTING`` is occupied while at least one peer is locally
    suspected; ``CONFIRMING`` marks the instant a suspicion hardens into a
    declaration of death (the state the false-positive measure counts).
    """
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT", notify=others, transitions={"INIT_DONE": "ACTIVE", "ERROR": "EXIT"}
        ),
        StateSpecification(
            name="ACTIVE",
            notify=others,
            transitions={"SUSPECT": "SUSPECTING", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="SUSPECTING",
            notify=others,
            transitions={
                "SUSPECT": "SUSPECTING",
                "CLEAR": "ACTIVE",
                "CONFIRM": "CONFIRMING",
                "CRASH": "CRASH",
                "ERROR": "EXIT",
            },
        ),
        StateSpecification(
            name="CONFIRMING",
            notify=others,
            transitions={"CONFIRM_DONE": "ACTIVE", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, SWIM_STATES, SWIM_EVENTS, states)


def swim_member_crash_fault(machine: str, name: str | None = None) -> FaultDefinition:
    """``(machine:ACTIVE) once`` — crash a healthy member."""
    return FaultDefinition(
        name=name or f"{machine}act1",
        expression=StateAtom(machine, "ACTIVE"),
        trigger=FaultTrigger.ONCE,
    )


def swim_correlated_detector_fault(
    crashed: str, detector: str, name: str | None = None
) -> FaultDefinition:
    """``((crashed:CRASH) & (detector:SUSPECTING)) once``.

    The compound failure: the detector crashes exactly while it is
    mid-detection of the first crash — the global state in which the
    group's failure information is at its most fragile.
    """
    expression = And(StateAtom(crashed, "CRASH"), StateAtom(detector, "SUSPECTING"))
    return FaultDefinition(
        name=name or f"{detector}sus1",
        expression=expression,
        trigger=FaultTrigger.ONCE,
    )


@dataclass
class SwimParameters:
    """Protocol-period timing of one SWIM member."""

    init_delay: float = 0.010
    protocol_period: float = 0.035
    ack_timeout: float = 0.014
    suspicion_timeout: float = 0.070
    confirm_dwell: float = 0.004
    ping_req_proxies: int = 1
    run_duration: float = 0.5
    fault_crash_probability: float = 1.0
    fault_dormancy: float = 0.002


class SwimMemberApplication(LokiApplication):
    """One member of the gossip failure-detector group."""

    def __init__(self, parameters: SwimParameters | None = None) -> None:
        self.parameters = parameters or SwimParameters()
        self._sequence = 0
        self._incarnation = 0
        self._pending: dict[int, str] = {}
        self._suspected: dict[str, int] = {}
        self._confirmed: set[str] = set()
        self._rotation: list[str] = []
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, self._initialization_done, ctx)

    def _initialization_done(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT_DONE")
        self._protocol_tick(ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    # -- the probe cycle ---------------------------------------------------------

    def _members(self, ctx: NodeContext) -> list[str]:
        return [
            peer
            for peer in ctx.peers()
            if peer != ctx.nickname and peer not in self._confirmed
        ]

    def _next_target(self, ctx: NodeContext) -> str | None:
        members = self._members(ctx)
        if not members:
            return None
        if not self._rotation:
            # SWIM's randomized round-robin: a fresh shuffle per cycle
            # bounds worst-case detection time while avoiding lockstep.
            rotation = list(members)
            for index in range(len(rotation) - 1, 0, -1):
                swap = int(ctx.random.random() * (index + 1))
                rotation[index], rotation[swap] = rotation[swap], rotation[index]
            self._rotation = rotation
        while self._rotation:
            target = self._rotation.pop()
            if target in members:
                return target
        return self._next_target(ctx)

    def _protocol_tick(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive:
            return
        target = self._next_target(ctx)
        if target is not None:
            self._sequence += 1
            self._pending[self._sequence] = target
            ctx.send(target, {"type": "ping", "seq": self._sequence, "origin": ctx.nickname})
            ctx.set_timer(self.parameters.ack_timeout, self._direct_timeout, ctx, self._sequence)
        ctx.set_timer(self.parameters.protocol_period, self._protocol_tick, ctx)

    def _direct_timeout(self, ctx: NodeContext, sequence: int) -> None:
        if self._stopped or not ctx.alive or sequence not in self._pending:
            return
        target = self._pending[sequence]
        proxies = [peer for peer in self._members(ctx) if peer != target]
        for proxy in proxies[: self.parameters.ping_req_proxies]:
            ctx.send(proxy, {"type": "ping_req", "seq": sequence, "target": target})
        ctx.set_timer(self.parameters.ack_timeout, self._indirect_timeout, ctx, sequence)

    def _indirect_timeout(self, ctx: NodeContext, sequence: int) -> None:
        if self._stopped or not ctx.alive or sequence not in self._pending:
            return
        target = self._pending.pop(sequence)
        self._suspect(ctx, target)

    # -- suspicion, refutation, confirmation --------------------------------------

    def _suspect(self, ctx: NodeContext, target: str) -> None:
        if target in self._confirmed or target in self._suspected:
            return
        self._incarnation += 1
        self._suspected[target] = self._incarnation
        ctx.note(protocol_note("swim-suspect", by=ctx.nickname, target=target))
        if ctx.current_state in ("ACTIVE", "SUSPECTING"):
            ctx.notify_event("SUSPECT")
        for peer in self._members(ctx):
            if peer != target:
                ctx.send(peer, {"type": "suspect", "target": target})
        ctx.set_timer(
            self.parameters.suspicion_timeout, self._suspicion_expired, ctx, target,
            self._suspected[target],
        )

    def _suspicion_expired(self, ctx: NodeContext, target: str, token: int) -> None:
        if self._stopped or not ctx.alive:
            return
        if self._suspected.get(target) != token or target in self._confirmed:
            return
        del self._suspected[target]
        self._confirmed.add(target)
        ctx.note(protocol_note("swim-confirm", by=ctx.nickname, target=target))
        if ctx.current_state in ("ACTIVE", "SUSPECTING"):
            if ctx.current_state != "SUSPECTING":
                ctx.notify_event("SUSPECT")
            ctx.notify_event("CONFIRM")
            ctx.set_timer(self.parameters.confirm_dwell, self._confirm_done, ctx)
        for peer in self._members(ctx):
            ctx.send(peer, {"type": "confirm", "target": target})

    def _confirm_done(self, ctx: NodeContext) -> None:
        if not self._stopped and ctx.alive and ctx.current_state == "CONFIRMING":
            ctx.notify_event("CONFIRM_DONE")

    def _clear_suspicion(self, ctx: NodeContext, target: str) -> None:
        if target in self._suspected:
            del self._suspected[target]
            ctx.note(protocol_note("swim-clear", by=ctx.nickname, target=target))
            if not self._suspected and ctx.current_state == "SUSPECTING":
                ctx.notify_event("CLEAR")

    # -- message dispatch --------------------------------------------------------

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "ping":
            ctx.send(str(payload["origin"]), {"type": "ack", "seq": payload["seq"]})
        elif kind == "ping_req":
            ctx.send(
                str(payload["target"]),
                {"type": "ping", "seq": payload["seq"], "origin": source},
            )
        elif kind == "ack":
            sequence = int(payload["seq"])
            target = self._pending.pop(sequence, None)
            if target is not None:
                self._clear_suspicion(ctx, target)
        elif kind == "suspect":
            target = str(payload["target"])
            if target == ctx.nickname:
                # Refute: I am alive; tell everyone directly.
                self._incarnation += 1
                for peer in self._members(ctx):
                    ctx.send(peer, {"type": "alive", "member": ctx.nickname})
            elif target not in self._confirmed:
                self._suspect(ctx, target)
        elif kind == "alive":
            self._clear_suspicion(ctx, str(payload["member"]))
        elif kind == "confirm":
            target = str(payload["target"])
            if target != ctx.nickname and target not in self._confirmed:
                self._confirmed.add(target)
                self._suspected.pop(target, None)
                if not self._suspected and ctx.current_state == "SUSPECTING":
                    ctx.notify_event("CLEAR")

    # -- fault injection ---------------------------------------------------------

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        if ctx.random.random() < self.parameters.fault_crash_probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


def build_swim_study(
    name: str,
    faults_by_machine: dict[str, tuple[FaultDefinition, ...]] | None = None,
    machines: tuple[str, ...] = SWIM_MACHINES,
    hosts: tuple[str, ...] = ("hosta", "hostb", "hostc"),
    experiments: int = 20,
    parameters_by_machine: dict[str, SwimParameters] | None = None,
    restart_policy: RestartPolicy | None = None,
    experiment_timeout: float = 4.0,
    network: NetworkConfig | None = None,
    seed: int = 0,
    weight: float = 1.0,
) -> StudyConfig:
    """Assemble a SWIM failure-detector study (members round-robin on hosts)."""
    faults_by_machine = faults_by_machine or {}
    parameters_by_machine = parameters_by_machine or {}
    nodes: list[NodeDefinition] = []
    for index, machine in enumerate(machines):
        parameters = parameters_by_machine.get(machine, SwimParameters())
        nodes.append(
            NodeDefinition(
                nickname=machine,
                specification=swim_state_machine_spec(machine, machines),
                faults=FaultSpecification.from_definitions(faults_by_machine.get(machine, ())),
                application_factory=(
                    lambda parameters=parameters: SwimMemberApplication(parameters)
                ),
                start_host=hosts[index % len(hosts)],
            )
        )
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        restart_policy=restart_policy or RestartPolicy(enabled=False),
        experiment_timeout=experiment_timeout,
        network=network or NetworkConfig(),
        seed=seed,
        weight=weight,
    )
