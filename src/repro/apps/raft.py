"""Raft-style term-based leader election with log replication.

Three replicas elect a leader by randomized timeout: a follower that hears
no heartbeat becomes a candidate, increments its *term*, votes for itself,
and requests votes; a candidate reaching a majority becomes leader for
that term and replicates a growing command log via append-entries
heartbeats, advancing its *commit index* once a majority has acknowledged
a log prefix (commitment is restricted to entries of the leader's own
term, the Raft rule that makes committed prefixes stable across leader
changes).  One vote per term plus the up-to-date log check at vote time
give the two safety properties the protocol-invariant harness replays
from the timeline notes:

* **election safety** — at most one leader per term (``@raft-leader``);
* **log matching** — entries committed at the same index never differ
  across replicas (``@raft-commit``).

``RaftParameters.unsafe_grant_votes`` deliberately breaks both (votes are
granted without the one-vote-per-term or up-to-date checks, and same-term
append-entries are accepted while leading); it exists only so
``tests/protocol/test_invariants_selftest.py`` can prove the invariant
checkers fail when safety is actually violated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.protocol_notes import protocol_note
from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)
from repro.sim.topology import NetworkConfig

#: The three replicas of the default Raft group.
RAFT_MACHINES = ("r1", "r2", "r3")

RAFT_STATES = ("BEGIN", "INIT", "FOLLOWER", "CANDIDATE", "LEADER", "CRASH", "EXIT")
RAFT_EVENTS = (
    "INIT_DONE",
    "TIMEOUT",
    "ELECTED",
    "STEP_DOWN",
    "CRASH",
    "ERROR",
)


def raft_state_machine_spec(name: str, peers: tuple[str, ...]) -> StateMachineSpecification:
    """The per-replica election state machine.

    Every protocol state notifies the other replicas so correlated fault
    expressions (and the dual-leadership measure) can reference them.
    """
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT",
            notify=others,
            transitions={"INIT_DONE": "FOLLOWER", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="FOLLOWER",
            notify=others,
            transitions={"TIMEOUT": "CANDIDATE", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="CANDIDATE",
            notify=others,
            transitions={
                "TIMEOUT": "CANDIDATE",
                "ELECTED": "LEADER",
                "STEP_DOWN": "FOLLOWER",
                "CRASH": "CRASH",
                "ERROR": "EXIT",
            },
        ),
        StateSpecification(
            name="LEADER",
            notify=others,
            transitions={"STEP_DOWN": "FOLLOWER", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, RAFT_STATES, RAFT_EVENTS, states)


def raft_leader_crash_fault(machine: str, name: str | None = None) -> FaultDefinition:
    """``(machine:LEADER) once`` — crash the machine once it leads."""
    return FaultDefinition(
        name=name or f"{machine}lead1",
        expression=StateAtom(machine, "LEADER"),
        trigger=FaultTrigger.ONCE,
    )


def raft_correlated_candidate_fault(
    crashed: str, candidate: str, name: str | None = None
) -> FaultDefinition:
    """``((crashed:CRASH) & (candidate:CANDIDATE)) once``.

    The compound failure of the scenario suite: after the leader has
    crashed, crash a replica exactly while it campaigns in the ensuing
    re-election — the global state in which the group is one failure away
    from losing its majority.
    """
    expression = And(StateAtom(crashed, "CRASH"), StateAtom(candidate, "CANDIDATE"))
    return FaultDefinition(
        name=name or f"{candidate}cand1",
        expression=expression,
        trigger=FaultTrigger.ONCE,
    )


def raft_follower_crash_fault(machine: str, name: str | None = None) -> FaultDefinition:
    """``(machine:FOLLOWER) once`` — an uncorrelated follower crash."""
    return FaultDefinition(
        name=name or f"{machine}fol1",
        expression=StateAtom(machine, "FOLLOWER"),
        trigger=FaultTrigger.ONCE,
    )


@dataclass
class RaftParameters:
    """Tunable timing and behaviour of one Raft replica."""

    init_delay: float = 0.010
    election_timeout_min: float = 0.055
    election_timeout_max: float = 0.095
    heartbeat_interval: float = 0.018
    append_interval: float = 0.045
    run_duration: float = 0.5
    fault_crash_probability: float = 1.0
    fault_dormancy: float = 0.002
    #: Falsifiability knob for the invariant self-test: grant every vote
    #: request (ignoring one-vote-per-term and log up-to-dateness) and
    #: accept same-term append-entries while leading.  Never set by the
    #: registry scenarios.
    unsafe_grant_votes: bool = False


class RaftReplicaApplication(LokiApplication):
    """One replica of the Raft-style election + log-replication protocol."""

    def __init__(self, parameters: RaftParameters | None = None) -> None:
        self.parameters = parameters or RaftParameters()
        self._term = 0
        self._voted_for: dict[int, str] = {}
        self._log: list[tuple[int, str]] = []
        self._commit_index = 0
        self._votes: set[str] = set()
        self._acked: dict[str, int] = {}
        self._sequence = 0
        self._timer_epoch = 0
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, self._initialization_done, ctx)

    def _initialization_done(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT_DONE")
        self._arm_election_timer(ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    # -- election ----------------------------------------------------------------

    def _election_timeout(self, ctx: NodeContext) -> float:
        low = self.parameters.election_timeout_min
        high = self.parameters.election_timeout_max
        return low + (high - low) * ctx.random.random()

    def _arm_election_timer(self, ctx: NodeContext) -> None:
        self._timer_epoch += 1
        ctx.set_timer(
            self._election_timeout(ctx), self._election_timer_fired, ctx, self._timer_epoch
        )

    def _election_timer_fired(self, ctx: NodeContext, epoch: int) -> None:
        if self._stopped or not ctx.alive or epoch != self._timer_epoch:
            return
        if ctx.current_state not in ("FOLLOWER", "CANDIDATE"):
            return
        self._start_candidacy(ctx)

    def _start_candidacy(self, ctx: NodeContext) -> None:
        self._term += 1
        self._voted_for[self._term] = ctx.nickname
        self._votes = {ctx.nickname}
        ctx.notify_event("TIMEOUT")
        ctx.note(protocol_note("raft-vote", term=self._term, by=ctx.nickname, to=ctx.nickname))
        last_index = len(self._log)
        last_term = self._log[-1][0] if self._log else 0
        for peer in ctx.peers():
            if peer != ctx.nickname:
                ctx.send(
                    peer,
                    {
                        "type": "request_vote",
                        "term": self._term,
                        "last_index": last_index,
                        "last_term": last_term,
                    },
                )
        self._arm_election_timer(ctx)

    def _log_up_to_date(self, last_term: int, last_index: int) -> bool:
        mine_term = self._log[-1][0] if self._log else 0
        mine_index = len(self._log)
        return (last_term, last_index) >= (mine_term, mine_index)

    def _adopt_term(self, ctx: NodeContext, term: int) -> None:
        """Move to a newer term, stepping down if leading or campaigning."""
        if term <= self._term:
            return
        self._term = term
        if ctx.current_state in ("CANDIDATE", "LEADER"):
            ctx.notify_event("STEP_DOWN")
        self._votes = set()
        self._acked = {}

    def _handle_request_vote(self, ctx: NodeContext, source: str, payload: dict) -> None:
        term = int(payload["term"])
        if self.parameters.unsafe_grant_votes:
            # Blindly grant: no term adoption, no one-vote-per-term
            # bookkeeping, no log up-to-dateness check, and — crucially —
            # no election-timer reset, so every replica's own candidacy
            # proceeds and concurrent candidates all win the same term.
            ctx.note(protocol_note("raft-vote", term=term, by=ctx.nickname, to=source))
            ctx.send(source, {"type": "vote", "term": term, "granted": True})
            return
        self._adopt_term(ctx, term)
        granted = (
            term == self._term
            and self._voted_for.get(term) in (None, source)
            and self._log_up_to_date(int(payload["last_term"]), int(payload["last_index"]))
        )
        if granted:
            self._voted_for.setdefault(term, source)
            ctx.note(protocol_note("raft-vote", term=term, by=ctx.nickname, to=source))
            self._arm_election_timer(ctx)
        ctx.send(source, {"type": "vote", "term": term, "granted": granted})

    def _handle_vote(self, ctx: NodeContext, source: str, payload: dict) -> None:
        if ctx.current_state != "CANDIDATE":
            return
        if int(payload["term"]) != self._term or not payload["granted"]:
            return
        self._votes.add(source)
        if len(self._votes) * 2 > len(ctx.peers()):
            self._become_leader(ctx)

    def _become_leader(self, ctx: NodeContext) -> None:
        ctx.notify_event("ELECTED")
        ctx.note(protocol_note("raft-leader", term=self._term, node=ctx.nickname))
        self._acked = {ctx.nickname: len(self._log)}
        self._append_command(ctx, self._term)
        self._send_heartbeat(ctx, self._term)

    # -- log replication ---------------------------------------------------------

    def _append_command(self, ctx: NodeContext, term: int) -> None:
        if self._stopped or not ctx.alive:
            return
        if ctx.current_state != "LEADER" or term != self._term:
            return
        self._sequence += 1
        self._log.append((self._term, f"{ctx.nickname}-t{self._term}-n{self._sequence}"))
        self._acked[ctx.nickname] = len(self._log)
        ctx.set_timer(self.parameters.append_interval, self._append_command, ctx, term)

    def _send_heartbeat(self, ctx: NodeContext, term: int) -> None:
        if self._stopped or not ctx.alive:
            return
        if ctx.current_state != "LEADER" or term != self._term:
            return
        entries = [[entry_term, command] for entry_term, command in self._log]
        for peer in ctx.peers():
            if peer != ctx.nickname:
                ctx.send(
                    peer,
                    {
                        "type": "append",
                        "term": self._term,
                        "entries": entries,
                        "commit": self._commit_index,
                    },
                )
        ctx.set_timer(self.parameters.heartbeat_interval, self._send_heartbeat, ctx, term)

    def _handle_append(self, ctx: NodeContext, source: str, payload: dict) -> None:
        term = int(payload["term"])
        if term < self._term:
            ctx.send(source, {"type": "append_ack", "term": self._term, "length": 0})
            return
        self._adopt_term(ctx, term)
        if ctx.current_state == "LEADER" and not self.parameters.unsafe_grant_votes:
            # Same-term append from another leader cannot happen under
            # election safety; drop it defensively rather than obey it.
            return
        if ctx.current_state == "CANDIDATE":
            # A leader of our own term exists; concede the election.
            ctx.notify_event("STEP_DOWN")
        self._log = [(int(entry[0]), str(entry[1])) for entry in payload["entries"]]
        self._advance_commit(ctx, min(int(payload["commit"]), len(self._log)))
        self._arm_election_timer(ctx)
        ctx.send(source, {"type": "append_ack", "term": term, "length": len(self._log)})

    def _handle_append_ack(self, ctx: NodeContext, source: str, payload: dict) -> None:
        if ctx.current_state != "LEADER" or int(payload["term"]) != self._term:
            if int(payload["term"]) > self._term:
                self._adopt_term(ctx, int(payload["term"]))
            return
        self._acked[source] = max(self._acked.get(source, 0), int(payload["length"]))
        lengths = sorted(
            (self._acked.get(peer, 0) for peer in ctx.peers()), reverse=True
        )
        # Clamp to the local log: under the unsafe self-test knob another
        # same-term leader may have replaced our log with a shorter one
        # after the acknowledgements were counted.
        majority_length = min(lengths[len(ctx.peers()) // 2], len(self._log))
        # The Raft commit rule: only entries of the leader's current term
        # are committed by counting acknowledgements.
        if majority_length > self._commit_index and majority_length > 0:
            if self._log[majority_length - 1][0] == self._term:
                self._advance_commit(ctx, majority_length)

    def _advance_commit(self, ctx: NodeContext, new_commit: int) -> None:
        while self._commit_index < new_commit:
            self._commit_index += 1
            term, command = self._log[self._commit_index - 1]
            ctx.note(
                protocol_note(
                    "raft-commit",
                    node=ctx.nickname,
                    index=self._commit_index,
                    term=term,
                    cmd=command,
                )
            )

    # -- message dispatch --------------------------------------------------------

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "request_vote":
            self._handle_request_vote(ctx, source, payload)
        elif kind == "vote":
            self._handle_vote(ctx, source, payload)
        elif kind == "append":
            self._handle_append(ctx, source, payload)
        elif kind == "append_ack":
            self._handle_append_ack(ctx, source, payload)

    # -- fault injection ---------------------------------------------------------

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        if ctx.random.random() < self.parameters.fault_crash_probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


def build_raft_study(
    name: str,
    faults_by_machine: dict[str, tuple[FaultDefinition, ...]] | None = None,
    machines: tuple[str, ...] = RAFT_MACHINES,
    hosts: tuple[str, ...] = ("hosta", "hostb", "hostc"),
    experiments: int = 20,
    parameters_by_machine: dict[str, RaftParameters] | None = None,
    restart_policy: RestartPolicy | None = None,
    experiment_timeout: float = 4.0,
    network: NetworkConfig | None = None,
    seed: int = 0,
    weight: float = 1.0,
) -> StudyConfig:
    """Assemble a ready-to-run Raft election/replication study.

    Machines are placed round-robin on the hosts; restarts are disabled by
    default (a crashed replica stays crashed, the crash-stop model the
    safety argument assumes).
    """
    faults_by_machine = faults_by_machine or {}
    parameters_by_machine = parameters_by_machine or {}
    nodes: list[NodeDefinition] = []
    for index, machine in enumerate(machines):
        parameters = parameters_by_machine.get(machine, RaftParameters())
        nodes.append(
            NodeDefinition(
                nickname=machine,
                specification=raft_state_machine_spec(machine, machines),
                faults=FaultSpecification.from_definitions(faults_by_machine.get(machine, ())),
                application_factory=(
                    lambda parameters=parameters: RaftReplicaApplication(parameters)
                ),
                start_host=hosts[index % len(hosts)],
            )
        )
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        restart_policy=restart_policy or RestartPolicy(enabled=False),
        experiment_timeout=experiment_timeout,
        network=network or NetworkConfig(),
        seed=seed,
        weight=weight,
    )
