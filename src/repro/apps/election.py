"""The leader-election test application of Chapter 5.

``n`` processes elect a leader: each picks a random number and sends it to
the others; the process with the highest number becomes the leader (ties
re-run the round).  The leader sends heartbeats; when it crashes, the
followers detect the silence, raise a ``LEADER_CRASH`` event, and elect a
new leader.  Crashed processes can be restarted by the central daemon's
restart policy and rejoin as followers.

The module also provides the paper's state-machine specification
(Figure 5.1 / Section 5.3), the fault specifications of Section 5.4, and a
:func:`build_election_study` helper that assembles a ready-to-run
:class:`~repro.core.campaign.StudyConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, Or, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)
from repro.measures import (
    MeasureStep,
    StateTuple,
    StudyMeasure,
    TotalDuration,
    UserObservation,
    value_positive,
)
from repro.sim.topology import NetworkConfig

#: The three state machines of the worked example.
DEFAULT_MACHINES = ("black", "yellow", "green")

ELECTION_STATES = ("BEGIN", "INIT", "RESTART_SM", "ELECT", "FOLLOW", "LEAD", "CRASH", "EXIT")
ELECTION_EVENTS = (
    "START",
    "INIT_DONE",
    "RESTART",
    "RESTART_DONE",
    "LEADER",
    "FOLLOWER",
    "LEADER_CRASH",
    "CRASH",
    "ERROR",
)


def election_state_machine_spec(name: str, peers: tuple[str, ...]) -> StateMachineSpecification:
    """The Section 5.3 state-machine specification for one process.

    ``peers`` is the notify list used for the INIT, RESTART_SM, and CRASH
    states (the states other machines' fault expressions depend on).
    """
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT",
            notify=others,
            transitions={"INIT_DONE": "ELECT", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="RESTART_SM",
            notify=others,
            transitions={"RESTART_DONE": "FOLLOW", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="ELECT",
            notify=(),
            transitions={
                "FOLLOWER": "FOLLOW",
                "LEADER": "LEAD",
                "CRASH": "CRASH",
                "ERROR": "EXIT",
            },
        ),
        StateSpecification(
            name="LEAD",
            notify=(),
            transitions={"CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="FOLLOW",
            notify=(),
            transitions={"LEADER_CRASH": "ELECT", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, ELECTION_STATES, ELECTION_EVENTS, states)


def leader_fault(machine: str, name: str | None = None) -> FaultDefinition:
    """``(machine:LEAD) always`` — inject whenever the machine becomes leader."""
    return FaultDefinition(
        name=name or f"{machine[0]}fault1",
        expression=StateAtom(machine, "LEAD"),
        trigger=FaultTrigger.ALWAYS,
    )


def correlated_follower_fault(
    leader: str, follower: str, name: str | None = None
) -> FaultDefinition:
    """``((leader:CRASH) & ((follower:FOLLOW) | (follower:ELECT))) once``."""
    expression = And(
        StateAtom(leader, "CRASH"),
        Or(StateAtom(follower, "FOLLOW"), StateAtom(follower, "ELECT")),
    )
    return FaultDefinition(
        name=name or f"{follower[0]}fault2",
        expression=expression,
        trigger=FaultTrigger.ONCE,
    )


def uncorrelated_follower_fault(follower: str, name: str | None = None) -> FaultDefinition:
    """``((follower:FOLLOW) | (follower:ELECT)) once``."""
    expression = Or(StateAtom(follower, "FOLLOW"), StateAtom(follower, "ELECT"))
    return FaultDefinition(
        name=name or f"{follower[0]}fault3",
        expression=expression,
        trigger=FaultTrigger.ONCE,
    )


def election_fault_specification(*faults: FaultDefinition) -> FaultSpecification:
    """Wrap the fault definitions that apply to one machine."""
    return FaultSpecification.from_definitions(faults)


def coverage_study_measure(machine: str) -> StudyMeasure:
    """The Section 5.8 coverage study measure as an indicator (0/1) value.

    Given that ``machine`` crashed, did the restart mechanism bring it
    back (time in ``RESTART_SM`` greater than zero)?  Shared by the
    Chapter 5 evaluation harness and the scenario registry.
    """
    indicator = UserObservation(
        lambda timeline: 1.0 if timeline.true_duration() > 0 else 0.0,
        name="total_duration(T) > 0",
    )
    return StudyMeasure(
        name=f"{machine}-coverage",
        steps=(
            MeasureStep(StateTuple(machine, "CRASH"), TotalDuration("T")),
            MeasureStep(StateTuple(machine, "RESTART_SM"), indicator, value_positive()),
        ),
    )


@dataclass
class ElectionParameters:
    """Tunable timing and behaviour of the leader-election application."""

    init_delay: float = 0.015
    election_timeout: float = 0.040
    heartbeat_interval: float = 0.020
    heartbeat_timeout: float = 0.070
    run_duration: float = 1.0
    favored: bool = False
    fault_crash_probability: float = 1.0
    correlated_crash_probability: float | None = None
    fault_dormancy: float = 0.002


class LeaderElectionApplication(LokiApplication):
    """One process of the leader-election protocol."""

    def __init__(self, parameters: ElectionParameters | None = None) -> None:
        self.parameters = parameters or ElectionParameters()
        self._round = 0
        self._numbers: dict[str, float] = {}
        self._pending_ballots: list[tuple[str, dict]] = []
        self._deciding = False
        self._leader: str | None = None
        self._is_leader = False
        self._last_heartbeat = 0.0
        self._leader_crash_observed = False
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, self._initialization_done, ctx)

    def on_restart(self, ctx: NodeContext) -> None:
        ctx.notify_event("RESTART_SM")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, self._restart_done, ctx)

    def _initialization_done(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT_DONE")
        self._start_election(ctx)

    def _restart_done(self, ctx: NodeContext) -> None:
        ctx.notify_event("RESTART_DONE")
        self._last_heartbeat = ctx.local_time()
        self._watch_leader(ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    # -- the election protocol ------------------------------------------------------

    def _start_election(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive:
            return
        self._round += 1
        self._numbers = {}
        self._deciding = False
        self._leader = None
        self._is_leader = False
        number = self._pick_number(ctx)
        self._numbers[ctx.nickname] = number
        for peer in ctx.peers():
            if peer != ctx.nickname:
                ctx.send(peer, {"type": "ballot", "round": self._round, "number": number})
        ctx.set_timer(self.parameters.election_timeout, self._decide, ctx, self._round)
        ctx.set_timer(self.parameters.election_timeout / 2.0, self._rebroadcast, ctx, self._round)
        # Ballots that arrived before this process was ready (a peer started
        # its election slightly earlier) are replayed now.
        if self._pending_ballots:
            pending, self._pending_ballots = self._pending_ballots, []
            for source, payload in pending:
                self._handle_ballot(ctx, source, payload)

    def _rebroadcast(self, ctx: NodeContext, election_round: int) -> None:
        """Resend this round's ballot to peers that have not answered yet.

        A ballot sent while a peer was still initializing can be lost; one
        retransmission halfway through the election timeout recovers it.
        """
        if self._stopped or not ctx.alive or self._deciding:
            return
        if election_round != self._round or ctx.current_state != "ELECT":
            return
        number = self._numbers.get(ctx.nickname)
        if number is None:
            return
        for peer in ctx.peers():
            if peer != ctx.nickname and peer not in self._numbers:
                ctx.send(peer, {"type": "ballot", "round": self._round, "number": number})

    def _pick_number(self, ctx: NodeContext) -> float:
        base = ctx.random.random()
        if self.parameters.favored:
            base += 10.0
        return base

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "ballot":
            self._handle_ballot(ctx, source, payload)
        elif kind == "heartbeat":
            self._last_heartbeat = ctx.local_time()
            self._leader = source
        elif kind == "leader":
            self._leader = source
            self._last_heartbeat = ctx.local_time()

    def _handle_ballot(self, ctx: NodeContext, source: str, payload: dict) -> None:
        ballot_round = int(payload["round"])
        if ballot_round > self._round and ctx.current_state not in ("FOLLOW", "ELECT"):
            # This process has not begun (or rejoined) electing yet; keep the
            # ballot until its own election round starts.
            self._pending_ballots.append((source, payload))
            return
        if ballot_round > self._round and ctx.current_state in ("FOLLOW", "ELECT"):
            # A peer started a newer election (e.g. it detected the leader
            # crash first); join it.
            if ctx.current_state == "FOLLOW":
                ctx.notify_event("LEADER_CRASH")
            self._round = ballot_round - 1
            self._start_election(ctx)
        if ballot_round == self._round:
            self._numbers[source] = float(payload["number"])
            if len(self._numbers) == len(ctx.peers()) and not self._deciding:
                self._decide(ctx, self._round)

    def _decide(self, ctx: NodeContext, election_round: int) -> None:
        if self._stopped or not ctx.alive or self._deciding:
            return
        if election_round != self._round or ctx.current_state != "ELECT":
            return
        if not self._numbers:
            return
        self._deciding = True
        best = max(self._numbers.values())
        winners = sorted(name for name, number in self._numbers.items() if number == best)
        if len(winners) > 1:
            # Tie: repeat the arbitration, as in the paper's protocol.
            self._start_election(ctx)
            return
        winner = winners[0]
        self._leader = winner
        self._last_heartbeat = ctx.local_time()
        if winner == ctx.nickname:
            self._is_leader = True
            ctx.notify_event("LEADER")
            self._send_heartbeat(ctx)
        else:
            self._is_leader = False
            ctx.notify_event("FOLLOWER")
            self._watch_leader(ctx)

    # -- leading and following ----------------------------------------------------------

    def _send_heartbeat(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or not self._is_leader:
            return
        for peer in ctx.peers():
            if peer != ctx.nickname:
                ctx.send(peer, {"type": "heartbeat"})
        ctx.set_timer(self.parameters.heartbeat_interval, self._send_heartbeat, ctx)

    def _watch_leader(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or self._is_leader:
            return
        silence = ctx.local_time() - self._last_heartbeat
        if silence > self.parameters.heartbeat_timeout and ctx.current_state == "FOLLOW":
            self._leader_crash_observed = True
            ctx.notify_event("LEADER_CRASH")
            self._start_election(ctx)
            return
        ctx.set_timer(self.parameters.heartbeat_interval, self._watch_leader, ctx)

    # -- fault injection --------------------------------------------------------------------

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        """Inject a fault; it becomes an error (a crash) with a configured probability.

        The crash happens after a short dormancy (the fault-to-error latency
        of the paper's fault model), so the injection instant itself lies
        strictly inside the triggering global state.
        """
        probability = self.parameters.fault_crash_probability
        leader_known_crashed = (
            self._leader_crash_observed
            or (self._leader is not None and ctx.partial_view.get(self._leader) == "CRASH")
        )
        if self.parameters.correlated_crash_probability is not None and leader_known_crashed:
            probability = self.parameters.correlated_crash_probability
        if ctx.random.random() < probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


def build_election_study(
    name: str,
    faults_by_machine: dict[str, tuple[FaultDefinition, ...]],
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    hosts: tuple[str, ...] = ("hosta", "hostb", "hostc"),
    experiments: int = 20,
    parameters_by_machine: dict[str, ElectionParameters] | None = None,
    restart_policy: RestartPolicy | None = None,
    experiment_timeout: float = 4.0,
    network: NetworkConfig | None = None,
    seed: int = 0,
    weight: float = 1.0,
) -> StudyConfig:
    """Assemble a ready-to-run leader-election study.

    ``faults_by_machine`` gives each machine its fault definitions (machines
    may be absent, meaning no faults are injected into them).  Each machine
    is placed round-robin on the given hosts.
    """
    parameters_by_machine = parameters_by_machine or {}
    nodes: list[NodeDefinition] = []
    for index, machine in enumerate(machines):
        parameters = parameters_by_machine.get(machine, ElectionParameters())
        nodes.append(
            NodeDefinition(
                nickname=machine,
                specification=election_state_machine_spec(machine, machines),
                faults=FaultSpecification.from_definitions(faults_by_machine.get(machine, ())),
                application_factory=(
                    lambda parameters=parameters: LeaderElectionApplication(parameters)
                ),
                start_host=hosts[index % len(hosts)],
            )
        )
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        restart_policy=restart_policy or RestartPolicy(enabled=True, delay=0.050, max_restarts=2),
        experiment_timeout=experiment_timeout,
        network=network or NetworkConfig(),
        seed=seed,
        weight=weight,
    )
