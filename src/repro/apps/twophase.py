"""A two-phase-commit (atomic commitment) service with 2PC-specific faults.

One *coordinator* repeatedly runs transactions against a set of
*participants*: it enters ``PREPARE`` and sends prepare requests, each
participant votes (``VOTED``) or refuses, and the coordinator decides
``COMMIT`` when every vote is yes and ``ABORT`` otherwise — including when
votes do not arrive before its vote timeout.  Participants that voted yes
block in ``VOTED`` until the decision arrives; if it never does they time
out into ``ABORTED`` (presumed abort).

The protocol's classic weakness is the *in-doubt window*: a participant
that has voted yes while the coordinator is still deciding.  That window is
a genuinely global state — ``(coordinator:PREPARE) & (participant:VOTED)``
— and crashing the coordinator exactly there is the kind of fault a purely
local-state injector cannot target.  The fault helpers below express the
paper-style correlated (in-doubt) and uncorrelated variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)
from repro.errors import RuntimeConfigurationError
from repro.sim.topology import NetworkConfig

#: Default nicknames of the two-phase-commit machines.
DEFAULT_MACHINES = ("coordinator", "part1", "part2")

COORDINATOR_STATES = ("BEGIN", "IDLE", "PREPARE", "COMMIT", "ABORT", "CRASH", "EXIT")
COORDINATOR_EVENTS = ("BEGIN_TX", "ALL_YES", "VOTE_NO", "TIMEOUT", "TX_DONE", "ERROR")

PARTICIPANT_STATES = ("BEGIN", "READY", "VOTED", "COMMITTED", "ABORTED", "CRASH", "EXIT")
PARTICIPANT_EVENTS = (
    "VOTE_YES",
    "VOTE_NO",
    "DECIDE_COMMIT",
    "DECIDE_ABORT",
    "TIMEOUT",
    "NEXT_TX",
    "ERROR",
)


def coordinator_state_machine_spec(
    name: str, peers: tuple[str, ...]
) -> StateMachineSpecification:
    """State machine of the coordinator.

    The phase states (PREPARE, COMMIT, ABORT) and CRASH notify the
    participants: remote fault expressions reference them, and participants
    use the CRASH notification to explain decision silence.
    """
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="IDLE",
            notify=(),
            transitions={"BEGIN_TX": "PREPARE", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="PREPARE",
            notify=others,
            transitions={
                "ALL_YES": "COMMIT",
                "VOTE_NO": "ABORT",
                "TIMEOUT": "ABORT",
                "ERROR": "EXIT",
            },
        ),
        StateSpecification(
            name="COMMIT",
            notify=others,
            transitions={"TX_DONE": "IDLE", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="ABORT",
            notify=others,
            transitions={"TX_DONE": "IDLE", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, COORDINATOR_STATES, COORDINATOR_EVENTS, states)


def participant_state_machine_spec(
    name: str, peers: tuple[str, ...]
) -> StateMachineSpecification:
    """State machine of one participant.

    VOTED (the in-doubt window) and CRASH notify the other machines so
    remote fault expressions can reference them.
    """
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="READY",
            notify=(),
            transitions={"VOTE_YES": "VOTED", "VOTE_NO": "ABORTED", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="VOTED",
            notify=others,
            transitions={
                "DECIDE_COMMIT": "COMMITTED",
                "DECIDE_ABORT": "ABORTED",
                "TIMEOUT": "ABORTED",
                "ERROR": "EXIT",
            },
        ),
        StateSpecification(
            name="COMMITTED",
            notify=(),
            transitions={"NEXT_TX": "READY", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="ABORTED",
            notify=(),
            transitions={"NEXT_TX": "READY", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, PARTICIPANT_STATES, PARTICIPANT_EVENTS, states)


def coordinator_prepare_fault(coordinator: str, name: str = "cfault1") -> FaultDefinition:
    """``(coordinator:PREPARE) once`` — crash the coordinator mid-decision."""
    return FaultDefinition(
        name=name,
        expression=StateAtom(coordinator, "PREPARE"),
        trigger=FaultTrigger.ONCE,
    )


def coordinator_in_doubt_fault(
    coordinator: str, participant: str, name: str = "cfault2"
) -> FaultDefinition:
    """``((coordinator:PREPARE) & (participant:VOTED)) once``.

    The correlated variant: the coordinator crashes exactly while a
    participant is in the in-doubt window, leaving it blocked on a decision
    that will never arrive.
    """
    expression = And(StateAtom(coordinator, "PREPARE"), StateAtom(participant, "VOTED"))
    return FaultDefinition(name=name, expression=expression, trigger=FaultTrigger.ONCE)


def participant_voted_fault(participant: str, name: str | None = None) -> FaultDefinition:
    """``(participant:VOTED) once`` — the uncorrelated variant.

    The participant crashes after voting yes, regardless of what the
    coordinator is doing; the coordinator's vote timeout turns the silence
    into an abort.
    """
    return FaultDefinition(
        name=name or f"{participant[0]}vfault",
        expression=StateAtom(participant, "VOTED"),
        trigger=FaultTrigger.ONCE,
    )


@dataclass
class TwoPhaseParameters:
    """Tunable timing and behaviour of the two-phase-commit application."""

    #: The coordinator waits this long before the first transaction, giving
    #: the (daemon-spawned, hence staggered) participants time to reach READY.
    start_delay: float = 0.030
    transaction_interval: float = 0.020
    vote_timeout: float = 0.040
    decision_timeout: float = 0.060
    decision_dwell: float = 0.004
    vote_yes_probability: float = 0.9
    run_duration: float = 0.6
    coordinator: str = "coordinator"
    fault_crash_probability: float = 1.0
    fault_dormancy: float = 0.002


class TwoPhaseCommitApplication(LokiApplication):
    """One machine of the two-phase-commit service.

    The nickname selects the role: the machine named
    ``parameters.coordinator`` drives transactions, every other machine is
    a participant.
    """

    def __init__(self, parameters: TwoPhaseParameters | None = None) -> None:
        self.parameters = parameters or TwoPhaseParameters()
        self._transaction = 0
        self._votes: dict[str, bool] = {}
        self._decided = False
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def _is_coordinator(self, ctx: NodeContext) -> bool:
        return ctx.nickname == self.parameters.coordinator

    def _participants(self, ctx: NodeContext) -> tuple[str, ...]:
        return tuple(
            peer for peer in ctx.peers() if peer != self.parameters.coordinator
        )

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("IDLE" if self._is_coordinator(ctx) else "READY")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        if self._is_coordinator(ctx):
            ctx.set_timer(self.parameters.start_delay, self._begin_transaction, ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    # -- coordinator behaviour ----------------------------------------------------

    def _begin_transaction(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or ctx.current_state != "IDLE":
            return
        self._transaction += 1
        self._votes = {}
        self._decided = False
        ctx.notify_event("BEGIN_TX")
        for peer in self._participants(ctx):
            ctx.send(peer, {"type": "prepare", "transaction": self._transaction})
        ctx.set_timer(self.parameters.vote_timeout, self._vote_timeout, ctx, self._transaction)

    def _vote_timeout(self, ctx: NodeContext, transaction: int) -> None:
        if self._stopped or not ctx.alive or self._decided:
            return
        if transaction != self._transaction or ctx.current_state != "PREPARE":
            return
        self._decide(ctx, commit=False, event="TIMEOUT")

    def _decide(self, ctx: NodeContext, commit: bool, event: str) -> None:
        self._decided = True
        ctx.notify_event(event)
        decision = "commit" if commit else "abort"
        for peer in self._participants(ctx):
            ctx.send(peer, {"type": decision, "transaction": self._transaction})
        ctx.set_timer(self.parameters.decision_dwell, self._transaction_done, ctx)

    def _transaction_done(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or ctx.current_state not in ("COMMIT", "ABORT"):
            return
        ctx.notify_event("TX_DONE")
        ctx.set_timer(self.parameters.transaction_interval, self._begin_transaction, ctx)

    def _handle_vote(self, ctx: NodeContext, source: str, payload: dict) -> None:
        if int(payload["transaction"]) != self._transaction or self._decided:
            return
        if ctx.current_state != "PREPARE":
            return
        self._votes[source] = bool(payload["yes"])
        if not payload["yes"]:
            self._decide(ctx, commit=False, event="VOTE_NO")
        elif len(self._votes) == len(self._participants(ctx)):
            self._decide(ctx, commit=True, event="ALL_YES")

    # -- participant behaviour ------------------------------------------------------

    def _handle_prepare(self, ctx: NodeContext, source: str, payload: dict) -> None:
        if ctx.current_state != "READY":
            # Still dwelling in COMMITTED/ABORTED; the coordinator's vote
            # timeout converts the missing vote into an abort.
            return
        self._transaction = int(payload["transaction"])
        vote_yes = ctx.random.random() < self.parameters.vote_yes_probability
        if vote_yes:
            ctx.notify_event("VOTE_YES")
            ctx.set_timer(
                self.parameters.decision_timeout,
                self._decision_timeout,
                ctx,
                self._transaction,
            )
        else:
            ctx.notify_event("VOTE_NO")
            ctx.set_timer(self.parameters.decision_dwell, self._next_transaction, ctx)
        ctx.send(source, {"type": "vote", "transaction": self._transaction, "yes": vote_yes})

    def _handle_decision(self, ctx: NodeContext, payload: dict, commit: bool) -> None:
        if ctx.current_state != "VOTED" or int(payload["transaction"]) != self._transaction:
            return
        ctx.notify_event("DECIDE_COMMIT" if commit else "DECIDE_ABORT")
        ctx.set_timer(self.parameters.decision_dwell, self._next_transaction, ctx)

    def _decision_timeout(self, ctx: NodeContext, transaction: int) -> None:
        if self._stopped or not ctx.alive:
            return
        if ctx.current_state != "VOTED" or transaction != self._transaction:
            return
        # Presumed abort: the decision never arrived (coordinator crashed
        # or the decision was lost), so the participant unblocks itself.
        ctx.notify_event("TIMEOUT")
        ctx.set_timer(self.parameters.decision_dwell, self._next_transaction, ctx)

    def _next_transaction(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive:
            return
        if ctx.current_state in ("COMMITTED", "ABORTED"):
            ctx.notify_event("NEXT_TX")

    # -- message dispatch -----------------------------------------------------------

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "prepare":
            self._handle_prepare(ctx, source, payload)
        elif kind == "vote":
            self._handle_vote(ctx, source, payload)
        elif kind == "commit":
            self._handle_decision(ctx, payload, commit=True)
        elif kind == "abort":
            self._handle_decision(ctx, payload, commit=False)

    # -- fault injection --------------------------------------------------------------

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        if ctx.random.random() < self.parameters.fault_crash_probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


def build_twophase_study(
    name: str,
    faults_by_machine: dict[str, tuple[FaultDefinition, ...]] | None = None,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    hosts: tuple[str, ...] = ("hosta", "hostb", "hostc"),
    experiments: int = 10,
    parameters: TwoPhaseParameters | None = None,
    experiment_timeout: float | None = None,
    network: NetworkConfig | None = None,
    seed: int = 0,
    weight: float = 1.0,
) -> StudyConfig:
    """Assemble a ready-to-run two-phase-commit study.

    The first machine is the coordinator (``parameters.coordinator`` must
    name one of ``machines`` when parameters are supplied explicitly); the
    default fault is the correlated in-doubt fault (crash the coordinator
    while the first participant has voted and waits for the decision).
    """
    parameters = parameters or TwoPhaseParameters(coordinator=machines[0])
    if parameters.coordinator not in machines:
        raise RuntimeConfigurationError(
            f"two-phase-commit study {name!r}: coordinator "
            f"{parameters.coordinator!r} is not one of the machines {machines}"
        )
    if faults_by_machine is None:
        faults_by_machine = {
            machines[0]: (coordinator_in_doubt_fault(machines[0], machines[1]),)
        }
    nodes = []
    for index, machine in enumerate(machines):
        if machine == parameters.coordinator:
            specification = coordinator_state_machine_spec(machine, machines)
        else:
            specification = participant_state_machine_spec(machine, machines)
        nodes.append(
            NodeDefinition(
                nickname=machine,
                specification=specification,
                faults=FaultSpecification.from_definitions(faults_by_machine.get(machine, ())),
                application_factory=(
                    lambda parameters=parameters: TwoPhaseCommitApplication(parameters)
                ),
                start_host=hosts[index % len(hosts)],
            )
        )
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        restart_policy=RestartPolicy(enabled=False),
        experiment_timeout=experiment_timeout or parameters.run_duration + 2.0,
        network=network or NetworkConfig(),
        seed=seed,
        weight=weight,
    )
