"""Instrumented test applications (the systems under study).

Five applications exercise the public API on realistic scenarios:

* :mod:`repro.apps.election` — the leader-election protocol of Chapter 5,
  used for the coverage and error-correlation evaluations;
* :mod:`repro.apps.toggle` — the two-node application used for the runtime
  performance analysis of Figures 3.2 and 3.3 (correct-injection
  probability as a function of the time spent in a state);
* :mod:`repro.apps.replication` — a primary-backup replication service with
  global-state-driven faults (crash the primary while a backup is
  synchronizing);
* :mod:`repro.apps.twophase` — a two-phase-commit service whose faults
  target the in-doubt window (coordinator crash while a participant has
  voted and waits for the decision);
* :mod:`repro.apps.tokenring` — token-ring mutual exclusion with token-loss
  and holder-crash faults.

The *protocol suite* adds four real-protocol workloads whose timelines
carry structured :mod:`repro.apps.protocol_notes` for the machine-checkable
safety invariants of ``tests/protocol``:

* :mod:`repro.apps.raft` — Raft-style term-based election with log
  replication (election safety, committed-prefix agreement);
* :mod:`repro.apps.quorum` — a quorum read/write register with read-repair
  (quorum-intersection reads are never stale);
* :mod:`repro.apps.swim` — the SWIM gossip failure detector
  (confirmed-dead members really crashed);
* :mod:`repro.apps.dfsmaster` — a DFS master/replica workload with
  heartbeats, re-replication, and digest audits (store consistency).

Every application is registered as a scenario in
:mod:`repro.scenarios`, which is the preferred way to enumerate and build
them.
"""

from repro.apps.dfsmaster import (
    DfsDatanodeApplication,
    DfsMasterApplication,
    build_dfs_study,
    dfs_datanode_spec,
    dfs_master_spec,
)
from repro.apps.election import (
    LeaderElectionApplication,
    build_election_study,
    election_fault_specification,
    election_state_machine_spec,
)
from repro.apps.protocol_notes import (
    ProtocolNote,
    notes_of_kind,
    parse_protocol_note,
    protocol_note,
)
from repro.apps.quorum import (
    QuorumClientApplication,
    QuorumReplicaApplication,
    build_quorum_study,
    quorum_client_spec,
    quorum_replica_spec,
)
from repro.apps.raft import (
    RaftReplicaApplication,
    build_raft_study,
    raft_state_machine_spec,
)
from repro.apps.replication import (
    ReplicationApplication,
    build_replication_study,
    replication_state_machine_spec,
)
from repro.apps.swim import (
    SwimMemberApplication,
    build_swim_study,
    swim_state_machine_spec,
)
from repro.apps.toggle import (
    ToggleDriverApplication,
    ToggleObserverApplication,
    build_toggle_study,
    driver_state_machine_spec,
    observer_state_machine_spec,
)
from repro.apps.tokenring import (
    TokenRingApplication,
    build_tokenring_study,
    ring_state_machine_spec,
)
from repro.apps.twophase import (
    TwoPhaseCommitApplication,
    build_twophase_study,
    coordinator_state_machine_spec,
    participant_state_machine_spec,
)

__all__ = [
    "DfsDatanodeApplication",
    "DfsMasterApplication",
    "LeaderElectionApplication",
    "ProtocolNote",
    "QuorumClientApplication",
    "QuorumReplicaApplication",
    "RaftReplicaApplication",
    "ReplicationApplication",
    "SwimMemberApplication",
    "ToggleDriverApplication",
    "ToggleObserverApplication",
    "TokenRingApplication",
    "TwoPhaseCommitApplication",
    "build_dfs_study",
    "build_election_study",
    "build_quorum_study",
    "build_raft_study",
    "build_replication_study",
    "build_swim_study",
    "build_toggle_study",
    "build_tokenring_study",
    "build_twophase_study",
    "coordinator_state_machine_spec",
    "dfs_datanode_spec",
    "dfs_master_spec",
    "driver_state_machine_spec",
    "election_fault_specification",
    "election_state_machine_spec",
    "notes_of_kind",
    "observer_state_machine_spec",
    "parse_protocol_note",
    "participant_state_machine_spec",
    "protocol_note",
    "quorum_client_spec",
    "quorum_replica_spec",
    "raft_state_machine_spec",
    "replication_state_machine_spec",
    "ring_state_machine_spec",
    "swim_state_machine_spec",
]
