"""Instrumented test applications (the systems under study).

Three applications exercise the public API on realistic scenarios:

* :mod:`repro.apps.election` — the leader-election protocol of Chapter 5,
  used for the coverage and error-correlation evaluations;
* :mod:`repro.apps.toggle` — the two-node application used for the runtime
  performance analysis of Figures 3.2 and 3.3 (correct-injection
  probability as a function of the time spent in a state);
* :mod:`repro.apps.replication` — a primary-backup replication service with
  global-state-driven faults (crash the primary while a backup is
  synchronizing).
"""

from repro.apps.election import (
    LeaderElectionApplication,
    build_election_study,
    election_fault_specification,
    election_state_machine_spec,
)
from repro.apps.replication import (
    ReplicationApplication,
    build_replication_study,
    replication_state_machine_spec,
)
from repro.apps.toggle import (
    ToggleDriverApplication,
    ToggleObserverApplication,
    build_toggle_study,
    driver_state_machine_spec,
    observer_state_machine_spec,
)

__all__ = [
    "LeaderElectionApplication",
    "ReplicationApplication",
    "ToggleDriverApplication",
    "ToggleObserverApplication",
    "build_election_study",
    "build_replication_study",
    "build_toggle_study",
    "driver_state_machine_spec",
    "election_fault_specification",
    "election_state_machine_spec",
    "observer_state_machine_spec",
    "replication_state_machine_spec",
]
