"""Structured timeline notes shared by the protocol apps and their harness.

The protocol applications (:mod:`repro.apps.raft`, :mod:`repro.apps.quorum`,
:mod:`repro.apps.swim`, :mod:`repro.apps.dfsmaster`) record protocol-level
facts — terms, commit indices, read versions, confirm targets — that are
richer than a state-machine state.  They travel as timeline *notes*
(:meth:`repro.core.runtime.application.NodeContext.note`), which round-trip
through both store codecs, so the invariant checkers in ``tests/protocol``
can replay them from an archived campaign with zero simulator invocations.

A protocol note is one line::

    @<kind> key=value key=value ...

``kind`` identifies the fact (``raft-leader``, ``quorum-read``, ...); the
fields are ordered ``key=value`` pairs whose values must not contain
whitespace.  Free-form notes (anything not starting with ``@``) are left
alone by :func:`parse_protocol_note`, so the runtime's RESTART notes and
the protocol notes share the same channel without colliding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError

#: Marker distinguishing structured protocol notes from free-form notes.
NOTE_MARKER = "@"


@dataclass(frozen=True)
class ProtocolNote:
    """One parsed protocol note: a kind plus ordered string fields."""

    kind: str
    fields: tuple[tuple[str, str], ...]

    def get(self, key: str, default: str | None = None) -> str | None:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def __getitem__(self, key: str) -> str:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value


def protocol_note(kind: str, **fields: object) -> str:
    """Format a structured note line: ``@kind key=value ...``.

    Values are stringified; floats use ``repr`` so the note round-trips
    bit-exactly.  Keys and values must be whitespace-free (the grammar is
    split on single spaces) and values must not contain ``=``-free
    ambiguity — enforced here so a malformed note fails at the writer, not
    in the offline checker.
    """
    if not kind or any(ch.isspace() for ch in kind):
        raise SpecificationError(f"invalid protocol-note kind {kind!r}")
    parts = [f"{NOTE_MARKER}{kind}"]
    for key, raw in fields.items():
        value = repr(raw) if isinstance(raw, float) else str(raw)
        if any(ch.isspace() for ch in value) or "=" in value:
            raise SpecificationError(
                f"protocol-note field {key}={value!r} contains whitespace or '='"
            )
        parts.append(f"{key}={value}")
    return " ".join(parts)


def parse_protocol_note(text: str) -> ProtocolNote | None:
    """Parse one note line; returns ``None`` for free-form (non-``@``) notes."""
    if not text.startswith(NOTE_MARKER):
        return None
    tokens = text.split(" ")
    kind = tokens[0][len(NOTE_MARKER):]
    if not kind:
        raise SpecificationError(f"protocol note without a kind: {text!r}")
    fields: list[tuple[str, str]] = []
    for token in tokens[1:]:
        key, separator, value = token.partition("=")
        if not separator or not key:
            raise SpecificationError(f"malformed protocol-note field {token!r} in {text!r}")
        fields.append((key, value))
    return ProtocolNote(kind=kind, fields=tuple(fields))


def notes_of_kind(notes: list[str] | tuple[str, ...], kind: str) -> list[ProtocolNote]:
    """All structured notes of ``kind`` from a timeline's raw note list."""
    found: list[ProtocolNote] = []
    for text in notes:
        parsed = parse_protocol_note(text)
        if parsed is not None and parsed.kind == kind:
            found.append(parsed)
    return found
