"""A quorum read/write register with read-repair.

One client runs a strictly sequential workload against ``N`` replicas:
writes carry a monotonically increasing version and are *committed* once
``W`` replicas acknowledge; reads collect ``R`` replies, return the
highest version seen, and repair any replica that answered with an older
one.  With ``R + W > N`` every read quorum intersects every write quorum,
so a completed read can never return a version older than the last
committed write — the staleness invariant the protocol harness replays
from the ``@quorum-commit`` / ``@quorum-read`` notes.  The client also
*detects* staleness locally (it knows its own last committed version) and
surfaces it as the ``STALE`` state, which is what the ``stale-reads``
study measure counts.

The falsifiability knobs (``write_quorum=1, read_quorum=1`` together with
``send_to_all=False``, which sprays sub-quorum writes and reads round-robin
across disjoint replicas) violate quorum intersection on purpose;
``tests/protocol/test_invariants_selftest.py`` uses them to prove the
staleness checker can actually fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.protocol_notes import protocol_note
from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)
from repro.sim.topology import NetworkConfig

#: The default register group: one client, three replicas.
QUORUM_CLIENT = "client"
QUORUM_REPLICAS = ("q1", "q2", "q3")

CLIENT_STATES = ("BEGIN", "INIT", "IDLE", "WRITING", "READING", "STALE", "CRASH", "EXIT")
CLIENT_EVENTS = (
    "INIT_DONE",
    "WRITE",
    "WRITE_DONE",
    "READ",
    "READ_OK",
    "READ_STALE",
    "STALE_DONE",
    "TIMEOUT",
    "CRASH",
    "ERROR",
)

REPLICA_STATES = ("BEGIN", "INIT", "SERVING", "REPAIR", "CRASH", "EXIT")
REPLICA_EVENTS = ("INIT_DONE", "REPAIR_START", "REPAIR_DONE", "CRASH", "ERROR")


def quorum_client_spec(name: str, peers: tuple[str, ...]) -> StateMachineSpecification:
    """The client's operation state machine (one op in flight at a time)."""
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT", notify=others, transitions={"INIT_DONE": "IDLE", "ERROR": "EXIT"}
        ),
        StateSpecification(
            name="IDLE",
            notify=others,
            transitions={"WRITE": "WRITING", "READ": "READING", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="WRITING",
            notify=others,
            transitions={"WRITE_DONE": "IDLE", "TIMEOUT": "IDLE", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="READING",
            notify=others,
            transitions={
                "READ_OK": "IDLE",
                "READ_STALE": "STALE",
                "TIMEOUT": "IDLE",
                "CRASH": "CRASH",
                "ERROR": "EXIT",
            },
        ),
        StateSpecification(
            name="STALE",
            notify=others,
            transitions={"STALE_DONE": "IDLE", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, CLIENT_STATES, CLIENT_EVENTS, states)


def quorum_replica_spec(name: str, peers: tuple[str, ...]) -> StateMachineSpecification:
    """A replica's state machine; ``REPAIR`` makes read-repair state-visible."""
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT", notify=others, transitions={"INIT_DONE": "SERVING", "ERROR": "EXIT"}
        ),
        StateSpecification(
            name="SERVING",
            notify=others,
            transitions={"REPAIR_START": "REPAIR", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="REPAIR",
            notify=others,
            transitions={"REPAIR_DONE": "SERVING", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, REPLICA_STATES, REPLICA_EVENTS, states)


def quorum_correlated_replica_fault(
    replica: str, client: str = QUORUM_CLIENT, name: str | None = None
) -> FaultDefinition:
    """``((client:WRITING) & (replica:SERVING)) once`` — crash mid-write."""
    expression = And(StateAtom(client, "WRITING"), StateAtom(replica, "SERVING"))
    return FaultDefinition(
        name=name or f"{replica}wr1",
        expression=expression,
        trigger=FaultTrigger.ONCE,
    )


def quorum_replica_crash_fault(replica: str, name: str | None = None) -> FaultDefinition:
    """``(replica:SERVING) once`` — an uncorrelated replica crash."""
    return FaultDefinition(
        name=name or f"{replica}srv1",
        expression=StateAtom(replica, "SERVING"),
        trigger=FaultTrigger.ONCE,
    )


@dataclass
class QuorumParameters:
    """Quorum sizes, timing, and the self-test falsifiability knobs."""

    write_quorum: int = 2
    read_quorum: int = 2
    init_delay: float = 0.010
    op_interval: float = 0.018
    op_timeout: float = 0.060
    #: Replica-side delay before acknowledging a write (models the
    #: durability fsync).  It keeps the client's ``WRITING`` window wide
    #: enough that state-triggered faults verifiably land inside it.
    ack_delay: float = 0.012
    stale_dwell: float = 0.010
    repair_dwell: float = 0.004
    run_duration: float = 0.5
    fault_crash_probability: float = 1.0
    fault_dormancy: float = 0.002
    #: When ``False``, writes (reads) go to exactly ``write_quorum``
    #: (``read_quorum``) replicas chosen round-robin instead of all of
    #: them — combined with sub-intersecting quorums this is the
    #: deliberately broken register of the invariant self-test.
    send_to_all: bool = True


class QuorumClientApplication(LokiApplication):
    """The sequential client: write, read, repair, repeat."""

    def __init__(
        self, replicas: tuple[str, ...] = QUORUM_REPLICAS,
        parameters: QuorumParameters | None = None,
    ) -> None:
        self.parameters = parameters or QuorumParameters()
        self.replicas = replicas
        self._version = 0
        self._committed = 0
        self._op_id = 0
        self._acks: set[str] = set()
        self._replies: dict[str, tuple[int, str]] = {}
        self._write_rr = 0
        self._read_rr = 1
        self._next_is_write = True
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, self._initialization_done, ctx)

    def _initialization_done(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT_DONE")
        self._schedule_next_op(ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    def _schedule_next_op(self, ctx: NodeContext) -> None:
        ctx.set_timer(self.parameters.op_interval, self._next_op, ctx)

    def _next_op(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or ctx.current_state != "IDLE":
            if not self._stopped and ctx.alive and ctx.current_state != "IDLE":
                self._schedule_next_op(ctx)
            return
        if self._next_is_write:
            self._start_write(ctx)
        else:
            self._start_read(ctx)
        self._next_is_write = not self._next_is_write

    def _targets(self, quorum: int, cursor: int) -> tuple[tuple[str, ...], int]:
        if self.parameters.send_to_all:
            return self.replicas, cursor
        chosen = tuple(
            self.replicas[(cursor + offset) % len(self.replicas)] for offset in range(quorum)
        )
        return chosen, cursor + quorum

    # -- writes ------------------------------------------------------------------

    def _start_write(self, ctx: NodeContext) -> None:
        self._version += 1
        self._op_id += 1
        self._acks = set()
        ctx.notify_event("WRITE")
        targets, self._write_rr = self._targets(self.parameters.write_quorum, self._write_rr)
        for replica in targets:
            ctx.send(
                replica,
                {"type": "write", "op": self._op_id, "version": self._version,
                 "value": f"v{self._version}"},
            )
        ctx.set_timer(self.parameters.op_timeout, self._op_timed_out, ctx, self._op_id)

    def _handle_write_ack(self, ctx: NodeContext, source: str, payload: dict) -> None:
        if int(payload["op"]) != self._op_id or ctx.current_state != "WRITING":
            return
        self._acks.add(source)
        if len(self._acks) >= self.parameters.write_quorum:
            self._committed = self._version
            ctx.note(protocol_note("quorum-commit", version=self._version))
            ctx.notify_event("WRITE_DONE")
            self._schedule_next_op(ctx)

    # -- reads -------------------------------------------------------------------

    def _start_read(self, ctx: NodeContext) -> None:
        self._op_id += 1
        self._replies = {}
        ctx.notify_event("READ")
        targets, self._read_rr = self._targets(self.parameters.read_quorum, self._read_rr)
        for replica in targets:
            ctx.send(replica, {"type": "read", "op": self._op_id})
        ctx.set_timer(self.parameters.op_timeout, self._op_timed_out, ctx, self._op_id)

    def _handle_read_reply(self, ctx: NodeContext, source: str, payload: dict) -> None:
        if int(payload["op"]) != self._op_id or ctx.current_state != "READING":
            return
        self._replies[source] = (int(payload["version"]), str(payload["value"]))
        if len(self._replies) < self.parameters.read_quorum:
            return
        got = max(version for version, _ in self._replies.values())
        ctx.note(protocol_note("quorum-read", got=got, committed=self._committed))
        # Read-repair: replicas that answered with an older version get the
        # freshest (version, value) this read quorum surfaced.
        if got > 0:
            best_value = max(self._replies.values())[1]
            for replica in sorted(self._replies):
                if self._replies[replica][0] < got:
                    ctx.send(
                        replica,
                        {"type": "repair", "version": got, "value": best_value},
                    )
        if got < self._committed:
            ctx.notify_event("READ_STALE")
            ctx.set_timer(self.parameters.stale_dwell, self._stale_done, ctx)
        else:
            ctx.notify_event("READ_OK")
            self._schedule_next_op(ctx)

    def _stale_done(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or ctx.current_state != "STALE":
            return
        ctx.notify_event("STALE_DONE")
        self._schedule_next_op(ctx)

    def _op_timed_out(self, ctx: NodeContext, op_id: int) -> None:
        if self._stopped or not ctx.alive or op_id != self._op_id:
            return
        if ctx.current_state in ("WRITING", "READING"):
            ctx.notify_event("TIMEOUT")
            self._schedule_next_op(ctx)

    # -- dispatch ----------------------------------------------------------------

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "write_ack":
            self._handle_write_ack(ctx, source, payload)
        elif kind == "read_reply":
            self._handle_read_reply(ctx, source, payload)

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        if ctx.random.random() < self.parameters.fault_crash_probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


class QuorumReplicaApplication(LokiApplication):
    """One versioned register replica; newest version wins."""

    def __init__(self, parameters: QuorumParameters | None = None) -> None:
        self.parameters = parameters or QuorumParameters()
        self._version = 0
        self._value = ""
        self._stopped = False

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, lambda: ctx.notify_event("INIT_DONE"))

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    def _apply(self, ctx: NodeContext, version: int, value: str) -> bool:
        if version <= self._version:
            return False
        self._version = version
        self._value = value
        ctx.note(protocol_note("quorum-apply", node=ctx.nickname, version=version))
        return True

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "write":
            self._apply(ctx, int(payload["version"]), str(payload["value"]))
            ctx.set_timer(self.parameters.ack_delay, self._send_write_ack, ctx, source, payload["op"])
        elif kind == "read":
            ctx.send(
                source,
                {"type": "read_reply", "op": payload["op"],
                 "version": self._version, "value": self._value},
            )
        elif kind == "repair":
            if self._apply(ctx, int(payload["version"]), str(payload["value"])):
                if ctx.current_state == "SERVING":
                    ctx.notify_event("REPAIR_START")
                    ctx.set_timer(self.parameters.repair_dwell, self._repair_done, ctx)

    def _send_write_ack(self, ctx: NodeContext, source: str, op: object) -> None:
        if not self._stopped and ctx.alive:
            ctx.send(source, {"type": "write_ack", "op": op})

    def _repair_done(self, ctx: NodeContext) -> None:
        if not self._stopped and ctx.alive and ctx.current_state == "REPAIR":
            ctx.notify_event("REPAIR_DONE")

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        if ctx.random.random() < self.parameters.fault_crash_probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


def build_quorum_study(
    name: str,
    faults_by_machine: dict[str, tuple[FaultDefinition, ...]] | None = None,
    replicas: tuple[str, ...] = QUORUM_REPLICAS,
    hosts: tuple[str, ...] = ("hosta", "hostb", "hostc"),
    experiments: int = 20,
    parameters: QuorumParameters | None = None,
    restart_policy: RestartPolicy | None = None,
    experiment_timeout: float = 4.0,
    network: NetworkConfig | None = None,
    seed: int = 0,
    weight: float = 1.0,
) -> StudyConfig:
    """Assemble a quorum-register study: the client on the first host,
    replicas round-robin over all hosts starting from the second."""
    faults_by_machine = faults_by_machine or {}
    parameters = parameters or QuorumParameters()
    machines = (QUORUM_CLIENT, *replicas)
    nodes = [
        NodeDefinition(
            nickname=QUORUM_CLIENT,
            specification=quorum_client_spec(QUORUM_CLIENT, machines),
            faults=FaultSpecification.from_definitions(
                faults_by_machine.get(QUORUM_CLIENT, ())
            ),
            application_factory=(
                lambda parameters=parameters: QuorumClientApplication(replicas, parameters)
            ),
            start_host=hosts[0],
        )
    ]
    for index, replica in enumerate(replicas):
        nodes.append(
            NodeDefinition(
                nickname=replica,
                specification=quorum_replica_spec(replica, machines),
                faults=FaultSpecification.from_definitions(faults_by_machine.get(replica, ())),
                application_factory=(
                    lambda parameters=parameters: QuorumReplicaApplication(parameters)
                ),
                start_host=hosts[(index + 1) % len(hosts)],
            )
        )
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        restart_policy=restart_policy or RestartPolicy(enabled=False),
        experiment_timeout=experiment_timeout,
        network=network or NetworkConfig(),
        seed=seed,
        weight=weight,
    )
