"""The two-node application used for the runtime performance analysis.

Figures 3.2 and 3.3 of the paper measure how often Loki injects a fault in
the intended global state as a function of the time the application spends
in that state, for two OS timeslices.  The workload behind those figures is
reproduced here: a *driver* machine alternates between an ``ACTIVE`` and an
``IDLE`` state with a configurable dwell time, and an *observer* machine on
a different host carries a fault triggered by the global state
``(driver:ACTIVE) & (observer:READY)``.  Whether each injection lands while
the driver is still ``ACTIVE`` depends on the notification latency, which
is dominated by the OS scheduling delay — exactly the effect the figures
show.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy, WatchdogConfig
from repro.core.runtime.designs import RuntimeDesign
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)
from repro.sim.host import SchedulerConfig

#: Default nicknames of the two state machines.
DRIVER = "driver"
OBSERVER = "observer"

#: Name of the fault carried by the observer.
TOGGLE_FAULT = "fstate"


def driver_state_machine_spec(
    name: str = DRIVER, observer: str = OBSERVER
) -> StateMachineSpecification:
    """State machine of the driver: alternates IDLE and ACTIVE, then exits."""
    states = [
        StateSpecification(
            name="IDLE",
            notify=(observer,),
            transitions={"GO_ACTIVE": "ACTIVE", "DONE": "EXIT"},
        ),
        StateSpecification(
            name="ACTIVE",
            notify=(observer,),
            transitions={"GO_IDLE": "IDLE", "DONE": "EXIT"},
        ),
        StateSpecification(name="EXIT", notify=(observer,), transitions={}),
    ]
    return build_specification(
        name,
        ("BEGIN", "IDLE", "ACTIVE", "EXIT"),
        ("GO_ACTIVE", "GO_IDLE", "DONE"),
        states,
    )


def observer_state_machine_spec(name: str = OBSERVER) -> StateMachineSpecification:
    """State machine of the observer: READY for the whole experiment."""
    states = [
        StateSpecification(name="READY", notify=(), transitions={"DONE": "EXIT"}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, ("BEGIN", "READY", "EXIT"), ("DONE",), states)


def toggle_fault_specification(
    driver: str = DRIVER, observer: str = OBSERVER
) -> FaultSpecification:
    """``fstate ((driver:ACTIVE) & (observer:READY)) always``."""
    return FaultSpecification.from_definitions(
        [
            FaultDefinition(
                name=TOGGLE_FAULT,
                expression=And(StateAtom(driver, "ACTIVE"), StateAtom(observer, "READY")),
                trigger=FaultTrigger.ALWAYS,
            )
        ]
    )


@dataclass
class ToggleParameters:
    """Workload parameters for one Figure 3.2/3.3 data point."""

    dwell_time: float = 0.010
    idle_time: float = 0.030
    cycles: int = 10
    start_delay: float = 0.010


class ToggleDriverApplication(LokiApplication):
    """Drives the ACTIVE/IDLE cycle with a fixed dwell time."""

    def __init__(self, parameters: ToggleParameters | None = None) -> None:
        self.parameters = parameters or ToggleParameters()
        self._remaining = self.parameters.cycles

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("IDLE")
        ctx.set_timer(self.parameters.start_delay, self._go_active, ctx)

    def _go_active(self, ctx: NodeContext) -> None:
        if not ctx.alive:
            return
        if self._remaining <= 0:
            ctx.notify_event("DONE")
            ctx.exit()
            return
        self._remaining -= 1
        ctx.notify_event("GO_ACTIVE")
        ctx.set_timer(self.parameters.dwell_time, self._go_idle, ctx)

    def _go_idle(self, ctx: NodeContext) -> None:
        if not ctx.alive:
            return
        ctx.notify_event("GO_IDLE")
        ctx.set_timer(self.parameters.idle_time, self._go_active, ctx)

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        """The driver carries no faults; injections are recorded only."""


class ToggleObserverApplication(LokiApplication):
    """Sits in READY and receives the injections; never crashes."""

    def __init__(self, run_duration: float = 1.0) -> None:
        self.run_duration = run_duration

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("READY")
        ctx.set_timer(self.run_duration, self._finish, ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive:
            ctx.notify_event("DONE")
            ctx.exit()

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        """Record-only injection: the observation is the injection record itself."""


def build_toggle_study(
    name: str,
    dwell_time: float,
    timeslice: float = 0.010,
    cycles: int = 10,
    experiments: int = 5,
    design: RuntimeDesign | None = None,
    hosts: tuple[str, str] = ("hosta", "hostb"),
    seed: int = 0,
) -> StudyConfig:
    """One data point of Figure 3.2/3.3: a dwell-time / timeslice combination."""
    parameters = ToggleParameters(dwell_time=dwell_time, cycles=cycles)
    run_duration = parameters.start_delay + cycles * (dwell_time + parameters.idle_time) + 0.2
    # The figure-3.x hosts are busy (the application competes with other
    # runnable processes), so a woken process almost always waits for the CPU.
    scheduler = SchedulerConfig(timeslice=timeslice, immediate_probability=0.1)
    nodes = [
        NodeDefinition(
            nickname=DRIVER,
            specification=driver_state_machine_spec(),
            faults=FaultSpecification(),
            application_factory=lambda parameters=parameters: ToggleDriverApplication(parameters),
            start_host=hosts[0],
        ),
        NodeDefinition(
            nickname=OBSERVER,
            specification=observer_state_machine_spec(),
            faults=toggle_fault_specification(),
            application_factory=lambda run_duration=run_duration: ToggleObserverApplication(
                run_duration
            ),
            start_host=hosts[1],
        ),
    ]
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host, scheduler=scheduler) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        design=design or RuntimeDesign.original(),
        restart_policy=RestartPolicy(enabled=False),
        watchdog=WatchdogConfig(enabled=True, interval=0.2, timeout=0.8),
        experiment_timeout=run_duration + 1.0,
        default_scheduler=scheduler,
        seed=seed,
    )
