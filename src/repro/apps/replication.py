"""A primary-backup replication service with global-state-driven faults.

This is the third example workload: one primary process accepts client
requests (generated internally by a timer), replicates each batch to the
backup processes, and waits for acknowledgements; a backup that is applying
a batch is in the ``SYNC`` state.  The interesting global-state-driven
fault is "crash the primary while a backup is synchronizing" — a scenario
that cannot be targeted by a purely local-state fault injector, and the
kind of subtle multi-component state the paper's introduction motivates.

If the primary crashes, the first backup (in name order) that detects the
silence promotes itself to primary and the service continues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)

REPLICATION_STATES = ("BEGIN", "INIT", "PRIMARY", "BACKUP", "SYNC", "CRASH", "EXIT")
REPLICATION_EVENTS = (
    "START",
    "BECOME_PRIMARY",
    "BECOME_BACKUP",
    "SYNC_START",
    "SYNC_DONE",
    "PROMOTE",
    "CRASH",
    "ERROR",
)


def replication_state_machine_spec(
    name: str, peers: tuple[str, ...]
) -> StateMachineSpecification:
    """State machine of one replica.

    Every state that a remote fault expression can reference (PRIMARY,
    SYNC, CRASH) notifies the other replicas.
    """
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT",
            notify=(),
            transitions={"BECOME_PRIMARY": "PRIMARY", "BECOME_BACKUP": "BACKUP", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="PRIMARY",
            notify=others,
            transitions={"CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="BACKUP",
            notify=others,
            transitions={"SYNC_START": "SYNC", "PROMOTE": "PRIMARY", "CRASH": "CRASH",
                         "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="SYNC",
            notify=others,
            transitions={"SYNC_DONE": "BACKUP", "PROMOTE": "PRIMARY", "CRASH": "CRASH",
                         "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, REPLICATION_STATES, REPLICATION_EVENTS, states)


def primary_during_sync_fault(
    primary: str, backup: str, name: str = "psync"
) -> FaultDefinition:
    """``((primary:PRIMARY) & (backup:SYNC)) once`` — the motivating fault."""
    return FaultDefinition(
        name=name,
        expression=And(StateAtom(primary, "PRIMARY"), StateAtom(backup, "SYNC")),
        trigger=FaultTrigger.ONCE,
    )


@dataclass
class ReplicationParameters:
    """Workload parameters of the replication service."""

    request_interval: float = 0.015
    sync_duration: float = 0.008
    ack_timeout: float = 0.050
    failover_timeout: float = 0.080
    run_duration: float = 1.0
    primary: str = "replica1"
    fault_dormancy: float = 0.002


class ReplicationApplication(LokiApplication):
    """One replica of the primary-backup service."""

    def __init__(self, parameters: ReplicationParameters | None = None) -> None:
        self.parameters = parameters or ReplicationParameters()
        self._is_primary = False
        self._sequence = 0
        self._applied = 0
        self._acknowledged: dict[int, set[str]] = {}
        self._last_primary_traffic = 0.0
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(0.002, self._assume_role, ctx)

    def _assume_role(self, ctx: NodeContext) -> None:
        if not ctx.alive:
            return
        self._last_primary_traffic = ctx.local_time()
        if ctx.nickname == self.parameters.primary:
            self._become_primary(ctx)
        else:
            ctx.notify_event("BECOME_BACKUP")
            self._watch_primary(ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    # -- primary behaviour ---------------------------------------------------------------

    def _become_primary(self, ctx: NodeContext) -> None:
        self._is_primary = True
        if ctx.current_state in ("BACKUP", "SYNC"):
            ctx.notify_event("PROMOTE")
        else:
            ctx.notify_event("BECOME_PRIMARY")
        self._issue_request(ctx)

    def _issue_request(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or not self._is_primary:
            return
        self._sequence += 1
        self._acknowledged[self._sequence] = set()
        for peer in ctx.peers():
            if peer != ctx.nickname:
                ctx.send(peer, {"type": "replicate", "sequence": self._sequence})
        ctx.set_timer(self.parameters.request_interval, self._issue_request, ctx)

    # -- backup behaviour ------------------------------------------------------------------

    def _watch_primary(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or self._is_primary:
            return
        silence = ctx.local_time() - self._last_primary_traffic
        if silence > self.parameters.failover_timeout:
            if self._should_take_over(ctx):
                self._become_primary(ctx)
                return
        ctx.set_timer(self.parameters.failover_timeout / 2.0, self._watch_primary, ctx)

    def _should_take_over(self, ctx: NodeContext) -> bool:
        # The first live backup in name order takes over; a deterministic
        # rule keeps the failover free of extra coordination traffic.
        candidates = sorted(peer for peer in ctx.peers() if peer != self.parameters.primary)
        return bool(candidates) and candidates[0] == ctx.nickname

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "replicate":
            self._last_primary_traffic = ctx.local_time()
            if ctx.current_state == "BACKUP":
                ctx.notify_event("SYNC_START")
                ctx.set_timer(
                    self.parameters.sync_duration, self._finish_sync, ctx, source, payload
                )
        elif kind == "ack":
            acked = self._acknowledged.get(int(payload["sequence"]))
            if acked is not None:
                acked.add(source)

    def _finish_sync(self, ctx: NodeContext, source: str, payload: dict) -> None:
        if self._stopped or not ctx.alive:
            return
        if ctx.current_state == "SYNC":
            self._applied += 1
            ctx.notify_event("SYNC_DONE")
            ctx.send(source, {"type": "ack", "sequence": payload["sequence"]})

    # -- fault injection -----------------------------------------------------------------------

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        ctx.set_timer(
            self.parameters.fault_dormancy,
            lambda: ctx.crash(reason=f"fault {fault_name} crashed the replica"),
        )


def build_replication_study(
    name: str,
    faults_by_machine: dict[str, tuple[FaultDefinition, ...]] | None = None,
    machines: tuple[str, ...] = ("replica1", "replica2", "replica3"),
    hosts: tuple[str, ...] = ("hosta", "hostb", "hostc"),
    experiments: int = 10,
    parameters: ReplicationParameters | None = None,
    seed: int = 0,
) -> StudyConfig:
    """Assemble a ready-to-run replication study."""
    parameters = parameters or ReplicationParameters(primary=machines[0])
    faults_by_machine = faults_by_machine or {
        machines[0]: (primary_during_sync_fault(machines[0], machines[1]),)
    }
    nodes = [
        NodeDefinition(
            nickname=machine,
            specification=replication_state_machine_spec(machine, machines),
            faults=FaultSpecification.from_definitions(faults_by_machine.get(machine, ())),
            application_factory=lambda parameters=parameters: ReplicationApplication(parameters),
            start_host=hosts[index % len(hosts)],
        )
        for index, machine in enumerate(machines)
    ]
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        restart_policy=RestartPolicy(enabled=False),
        experiment_timeout=parameters.run_duration + 2.0,
        seed=seed,
    )
