"""A DFS master/replica workload: chunk placement, heartbeats, re-replication.

A single *master* places versioned chunks on ``R`` of the datanodes and
commits a placement once all ``R`` store acknowledgements arrive
(``@dfs-commit``).  Datanodes heartbeat a digest of what they actually
hold; the master detects dead datanodes (crash notification or heartbeat
silence), re-replicates their committed chunks from a surviving replica
(``@dfs-rereplicate``), and periodically *audits* the digests: a live
replica of a committed chunk that lags the committed version or disagrees
on content drives the master into the ``DIVERGED`` state (``@dfs-diverged``)
until repair stores bring the group back in sync — the
``replica-divergence`` study measure is the total time spent there.

The protocol harness replays the ``@dfs-store`` notes for the safety
property: every stored copy of a given ``(chunk, version)`` carries the
same content.  ``DfsParameters.corrupt_store`` makes a datanode silently
mangle what it writes while still acknowledging — the deliberately broken
replica that proves the consistency checker can fail
(``tests/protocol/test_invariants_selftest.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.protocol_notes import protocol_note
from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)
from repro.sim.topology import NetworkConfig

#: The default group: one master, three datanodes (replication factor 2).
DFS_MASTER = "master"
DFS_DATANODES = ("d1", "d2", "d3")

MASTER_STATES = ("BEGIN", "INIT", "IDLE", "PLACING", "AUDIT", "DIVERGED", "CRASH", "EXIT")
MASTER_EVENTS = (
    "INIT_DONE",
    "PLACE",
    "PLACED",
    "TIMEOUT",
    "AUDIT_START",
    "AUDIT_OK",
    "AUDIT_FAIL",
    "REPAIRED",
    "CRASH",
    "ERROR",
)

DATANODE_STATES = ("BEGIN", "INIT", "SERVING", "REPLICATING", "CRASH", "EXIT")
DATANODE_EVENTS = ("INIT_DONE", "PULL", "PULL_DONE", "CRASH", "ERROR")


def dfs_master_spec(name: str, peers: tuple[str, ...]) -> StateMachineSpecification:
    """The master's placement/audit state machine."""
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT", notify=others, transitions={"INIT_DONE": "IDLE", "ERROR": "EXIT"}
        ),
        StateSpecification(
            name="IDLE",
            notify=others,
            transitions={
                "PLACE": "PLACING",
                "AUDIT_START": "AUDIT",
                "CRASH": "CRASH",
                "ERROR": "EXIT",
            },
        ),
        StateSpecification(
            name="PLACING",
            notify=others,
            transitions={"PLACED": "IDLE", "TIMEOUT": "IDLE", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="AUDIT",
            notify=others,
            transitions={"AUDIT_OK": "IDLE", "AUDIT_FAIL": "DIVERGED", "CRASH": "CRASH",
                         "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="DIVERGED",
            notify=others,
            transitions={"REPAIRED": "IDLE", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, MASTER_STATES, MASTER_EVENTS, states)


def dfs_datanode_spec(name: str, peers: tuple[str, ...]) -> StateMachineSpecification:
    """A datanode's state machine; ``REPLICATING`` marks an in-flight pull."""
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT", notify=others, transitions={"INIT_DONE": "SERVING", "ERROR": "EXIT"}
        ),
        StateSpecification(
            name="SERVING",
            notify=others,
            transitions={"PULL": "REPLICATING", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="REPLICATING",
            notify=others,
            transitions={"PULL_DONE": "SERVING", "CRASH": "CRASH", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, DATANODE_STATES, DATANODE_EVENTS, states)


def dfs_correlated_datanode_fault(
    datanode: str, master: str = DFS_MASTER, name: str | None = None
) -> FaultDefinition:
    """``((master:AUDIT) & (datanode:SERVING)) once``.

    Crash a serving datanode exactly inside the master's audit window —
    late enough that committed chunks live on it, so the master's
    death-detection and re-replication paths are what gets measured.
    """
    expression = And(StateAtom(master, "AUDIT"), StateAtom(datanode, "SERVING"))
    return FaultDefinition(
        name=name or f"{datanode}aud1",
        expression=expression,
        trigger=FaultTrigger.ONCE,
    )


def dfs_datanode_crash_fault(datanode: str, name: str | None = None) -> FaultDefinition:
    """``(datanode:SERVING) once`` — an uncorrelated datanode crash."""
    return FaultDefinition(
        name=name or f"{datanode}srv1",
        expression=StateAtom(datanode, "SERVING"),
        trigger=FaultTrigger.ONCE,
    )


@dataclass
class DfsParameters:
    """Timing, replication factor, and the corruption falsifiability knob."""

    replication: int = 2
    init_delay: float = 0.010
    place_interval: float = 0.030
    place_timeout: float = 0.080
    store_ack_delay: float = 0.012
    heartbeat_interval: float = 0.025
    dead_timeout: float = 0.070
    audit_interval: float = 0.040
    #: Dwell of the ``AUDIT`` state between ``AUDIT_START`` and the
    #: verdict: long enough that state-triggered faults (and the offline
    #: verification) get a real window, like a scan over the digests would.
    audit_dwell: float = 0.020
    #: How long after a commit the audit tolerates lagging heartbeat
    #: digests before calling the replica divergent.
    audit_grace: float = 0.060
    #: Every ``update_stride``-th placement rewrites an existing chunk at a
    #: higher version instead of creating a new one, so partitioned
    #: replicas accumulate stale versions for the audit to find.
    update_stride: int = 3
    run_duration: float = 0.5
    fault_crash_probability: float = 1.0
    fault_dormancy: float = 0.002
    #: Falsifiability knob: a datanode with ``corrupt_store=True`` mangles
    #: the content it writes while acknowledging as if the store were
    #: faithful.  Never set by the registry scenarios.
    corrupt_store: bool = False


class DfsMasterApplication(LokiApplication):
    """The chunk master: place, commit, detect death, re-replicate, audit."""

    def __init__(
        self, datanodes: tuple[str, ...] = DFS_DATANODES,
        parameters: DfsParameters | None = None,
    ) -> None:
        self.parameters = parameters or DfsParameters()
        self.datanodes = datanodes
        self._chunks: dict[str, tuple[int, str]] = {}
        self._commit_times: dict[str, float] = {}
        self._placements: dict[str, list[str]] = {}
        self._pending: tuple[str, int, set[str]] | None = None
        self._digests: dict[str, dict[str, tuple[int, str]]] = {}
        self._last_heartbeat: dict[str, float] = {}
        self._dead: set[str] = set()
        self._chunk_count = 0
        self._placement_count = 0
        self._rr_cursor = 0
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, self._initialization_done, ctx)

    def _initialization_done(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT_DONE")
        now = ctx.local_time()
        for datanode in self.datanodes:
            self._last_heartbeat[datanode] = now
        ctx.set_timer(self.parameters.place_interval, self._placement_tick, ctx)
        ctx.set_timer(self.parameters.heartbeat_interval, self._liveness_tick, ctx)
        ctx.set_timer(self.parameters.audit_interval, self._audit_tick, ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    # -- placement ---------------------------------------------------------------

    def _live_datanodes(self) -> list[str]:
        return [node for node in self.datanodes if node not in self._dead]

    def _placement_tick(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive:
            return
        ctx.set_timer(self.parameters.place_interval, self._placement_tick, ctx)
        if ctx.current_state != "IDLE":
            return
        live = self._live_datanodes()
        if len(live) < self.parameters.replication:
            return
        self._placement_count += 1
        update = (
            self.parameters.update_stride > 0
            and self._placement_count % self.parameters.update_stride == 0
            and self._chunks
        )
        if update:
            chunk = sorted(self._chunks)[0]
            version = self._chunks[chunk][0] + 1
            targets = [node for node in self._placements[chunk] if node not in self._dead]
            extra = [node for node in live if node not in targets]
            while len(targets) < self.parameters.replication and extra:
                targets.append(extra.pop(0))
        else:
            self._chunk_count += 1
            chunk = f"c{self._chunk_count}"
            version = 1
            targets = [
                live[(self._rr_cursor + offset) % len(live)]
                for offset in range(self.parameters.replication)
            ]
            self._rr_cursor += 1
        content = f"{chunk}.v{version}"
        ctx.notify_event("PLACE")
        self._pending = (chunk, version, set())
        self._placements[chunk] = targets
        self._chunks[chunk] = (version, content)
        for target in targets:
            ctx.send(target, {"type": "store", "chunk": chunk, "version": version,
                              "content": content})
        ctx.set_timer(self.parameters.place_timeout, self._place_timed_out, ctx, chunk, version)

    def _handle_store_ack(self, ctx: NodeContext, source: str, payload: dict) -> None:
        if self._pending is None:
            return
        chunk, version, ackers = self._pending
        if payload["chunk"] != chunk or int(payload["version"]) != version:
            return
        ackers.add(source)
        if len(ackers) >= self.parameters.replication and ctx.current_state == "PLACING":
            self._commit_times[chunk] = ctx.local_time()
            ctx.note(
                protocol_note(
                    "dfs-commit",
                    chunk=chunk,
                    version=version,
                    replicas=",".join(self._placements[chunk]),
                )
            )
            self._pending = None
            ctx.notify_event("PLACED")

    def _place_timed_out(self, ctx: NodeContext, chunk: str, version: int) -> None:
        if self._stopped or not ctx.alive or self._pending is None:
            return
        pending_chunk, pending_version, _ = self._pending
        if (pending_chunk, pending_version) != (chunk, version):
            return
        self._pending = None
        if ctx.current_state == "PLACING":
            ctx.notify_event("TIMEOUT")

    # -- liveness and re-replication ----------------------------------------------

    def _liveness_tick(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive:
            return
        ctx.set_timer(self.parameters.heartbeat_interval, self._liveness_tick, ctx)
        now = ctx.local_time()
        view = ctx.partial_view
        for datanode in self.datanodes:
            if datanode in self._dead:
                continue
            crashed = view.get(datanode) == "CRASH"
            silent = now - self._last_heartbeat[datanode] > self.parameters.dead_timeout
            if crashed or silent:
                self._dead.add(datanode)
                self._re_replicate(ctx, datanode)

    def _re_replicate(self, ctx: NodeContext, dead: str) -> None:
        live = self._live_datanodes()
        for chunk in sorted(self._placements):
            placement = self._placements[chunk]
            if dead not in placement or chunk not in self._commit_times:
                continue
            sources = [node for node in placement if node not in self._dead]
            spares = [node for node in live if node not in placement]
            if not sources or not spares:
                continue
            target = spares[0]
            placement[placement.index(dead)] = target
            ctx.note(protocol_note("dfs-rereplicate", chunk=chunk, to=target))
            ctx.send(target, {"type": "pull", "chunk": chunk, "source": sources[0]})

    def _handle_heartbeat(self, ctx: NodeContext, source: str, payload: dict) -> None:
        self._last_heartbeat[source] = ctx.local_time()
        self._digests[source] = {
            str(entry[0]): (int(entry[1]), str(entry[2])) for entry in payload["digest"]
        }
        if source in self._dead:
            # A partitioned (not crashed) datanode came back; serve it again.
            self._dead.discard(source)

    # -- audit --------------------------------------------------------------------

    def _audit_findings(self, ctx: NodeContext) -> list[str]:
        """Committed chunks whose live replicas lag or disagree."""
        now = ctx.local_time()
        findings: list[str] = []
        for chunk in sorted(self._commit_times):
            committed_version, committed_content = self._chunks[chunk]
            settled = now - self._commit_times[chunk] > self.parameters.audit_grace
            for node in self._placements[chunk]:
                if node in self._dead:
                    continue
                digest = self._digests.get(node)
                if digest is None or chunk not in digest:
                    continue
                version, content = digest[chunk]
                lagging = settled and version < committed_version
                corrupt = version == committed_version and content != committed_content
                if lagging or corrupt:
                    findings.append(chunk)
                    ctx.send(
                        node,
                        {"type": "store", "chunk": chunk, "version": committed_version,
                         "content": committed_content},
                    )
        return findings

    def _audit_tick(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive:
            return
        ctx.set_timer(self.parameters.audit_interval, self._audit_tick, ctx)
        if ctx.current_state == "IDLE":
            ctx.notify_event("AUDIT_START")
            ctx.set_timer(self.parameters.audit_dwell, self._audit_verdict, ctx)
        elif ctx.current_state == "DIVERGED":
            if not self._audit_findings(ctx):
                ctx.notify_event("REPAIRED")

    def _audit_verdict(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or ctx.current_state != "AUDIT":
            return
        findings = self._audit_findings(ctx)
        if findings:
            for chunk in sorted(set(findings)):
                ctx.note(protocol_note("dfs-diverged", chunk=chunk))
            ctx.notify_event("AUDIT_FAIL")
        else:
            ctx.notify_event("AUDIT_OK")

    # -- dispatch ----------------------------------------------------------------

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "store_ack":
            self._handle_store_ack(ctx, source, payload)
        elif kind == "hb":
            self._handle_heartbeat(ctx, source, payload)

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        if ctx.random.random() < self.parameters.fault_crash_probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


class DfsDatanodeApplication(LokiApplication):
    """One datanode: store chunks, heartbeat digests, serve pulls."""

    def __init__(
        self, master: str = DFS_MASTER, parameters: DfsParameters | None = None
    ) -> None:
        self.parameters = parameters or DfsParameters()
        self.master = master
        self._chunks: dict[str, tuple[int, str]] = {}
        self._pulling: set[str] = set()
        self._stopped = False

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, self._initialization_done, ctx)

    def _initialization_done(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT_DONE")
        self._heartbeat(ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    def _heartbeat(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive:
            return
        digest = [
            [chunk, self._chunks[chunk][0], self._chunks[chunk][1]]
            for chunk in sorted(self._chunks)
        ]
        ctx.send(self.master, {"type": "hb", "digest": digest})
        ctx.set_timer(self.parameters.heartbeat_interval, self._heartbeat, ctx)

    def _store(self, ctx: NodeContext, chunk: str, version: int, content: str) -> None:
        current = self._chunks.get(chunk)
        if current is not None and current[0] >= version:
            return
        if self.parameters.corrupt_store:
            content = f"{content}.bitrot"
        self._chunks[chunk] = (version, content)
        ctx.note(
            protocol_note(
                "dfs-store", node=ctx.nickname, chunk=chunk, version=version, content=content
            )
        )

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "store":
            chunk = str(payload["chunk"])
            version = int(payload["version"])
            self._store(ctx, chunk, version, str(payload["content"]))
            ctx.set_timer(
                self.parameters.store_ack_delay, self._send_store_ack, ctx, source, chunk, version
            )
        elif kind == "pull":
            chunk = str(payload["chunk"])
            if ctx.current_state == "SERVING":
                ctx.notify_event("PULL")
            self._pulling.add(chunk)
            ctx.send(str(payload["source"]), {"type": "fetch", "chunk": chunk})
        elif kind == "fetch":
            chunk = str(payload["chunk"])
            held = self._chunks.get(chunk)
            if held is not None:
                ctx.send(
                    source,
                    {"type": "chunk_data", "chunk": chunk, "version": held[0],
                     "content": held[1]},
                )
        elif kind == "chunk_data":
            chunk = str(payload["chunk"])
            self._store(ctx, chunk, int(payload["version"]), str(payload["content"]))
            if chunk in self._pulling:
                self._pulling.discard(chunk)
                if ctx.current_state == "REPLICATING" and not self._pulling:
                    ctx.notify_event("PULL_DONE")
                version = self._chunks[chunk][0]
                ctx.send(self.master, {"type": "pull_ack", "chunk": chunk, "version": version})

    def _send_store_ack(self, ctx: NodeContext, source: str, chunk: str, version: int) -> None:
        if not self._stopped and ctx.alive:
            ctx.send(source, {"type": "store_ack", "chunk": chunk, "version": version})

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        if ctx.random.random() < self.parameters.fault_crash_probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


def build_dfs_study(
    name: str,
    faults_by_machine: dict[str, tuple[FaultDefinition, ...]] | None = None,
    datanodes: tuple[str, ...] = DFS_DATANODES,
    hosts: tuple[str, ...] = ("hosta", "hostb", "hostc"),
    experiments: int = 20,
    parameters: DfsParameters | None = None,
    parameters_by_machine: dict[str, DfsParameters] | None = None,
    restart_policy: RestartPolicy | None = None,
    experiment_timeout: float = 4.0,
    network: NetworkConfig | None = None,
    seed: int = 0,
    weight: float = 1.0,
) -> StudyConfig:
    """Assemble a DFS master/replica study.

    The master runs on the first host; datanodes go round-robin over the
    hosts starting from the second (``d1`` on ``hostb``, ``d2`` on
    ``hostc``, ``d3`` alongside the master).  ``parameters_by_machine``
    overrides the shared ``parameters`` per machine (the corruption
    self-test uses it to break exactly one datanode).
    """
    faults_by_machine = faults_by_machine or {}
    parameters = parameters or DfsParameters()
    parameters_by_machine = parameters_by_machine or {}
    machines = (DFS_MASTER, *datanodes)
    master_parameters = parameters_by_machine.get(DFS_MASTER, parameters)
    nodes = [
        NodeDefinition(
            nickname=DFS_MASTER,
            specification=dfs_master_spec(DFS_MASTER, machines),
            faults=FaultSpecification.from_definitions(faults_by_machine.get(DFS_MASTER, ())),
            application_factory=(
                lambda parameters=master_parameters: DfsMasterApplication(datanodes, parameters)
            ),
            start_host=hosts[0],
        )
    ]
    for index, datanode in enumerate(datanodes):
        node_parameters = parameters_by_machine.get(datanode, parameters)
        nodes.append(
            NodeDefinition(
                nickname=datanode,
                specification=dfs_datanode_spec(datanode, machines),
                faults=FaultSpecification.from_definitions(faults_by_machine.get(datanode, ())),
                application_factory=(
                    lambda parameters=node_parameters: DfsDatanodeApplication(
                        DFS_MASTER, parameters
                    )
                ),
                start_host=hosts[(index + 1) % len(hosts)],
            )
        )
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        restart_policy=restart_policy or RestartPolicy(enabled=False),
        experiment_timeout=experiment_timeout,
        network=network or NetworkConfig(),
        seed=seed,
        weight=weight,
    )
