"""A token-ring mutual-exclusion service with token-loss and crash faults.

The machines form a logical ring (nickname order); a single token grants
the right to enter the critical section.  The holder sits in ``HOLDING``
for a fixed hold time, then passes the token to the next live machine of
the ring and returns to ``WAITING``.  Every machine monitors the time
since it last saw the token; when that exceeds the loss timeout, the
lowest-named machine that is not known to have crashed regenerates the
token — the standard ring-recovery rule.

Two fault kinds are injected:

* **token loss** — faults named with the ``tloss_`` prefix (or listed in
  ``TokenRingParameters.token_loss_fault_names``) do not crash the
  process; instead the token currently held silently vanishes when it
  would be passed on, exercising the regeneration path;
* **holder crash** — any other fault crashes the machine (taking the token
  with it when it holds one).  The correlated variant crashes a second
  holder only once it knows a first machine has crashed —
  ``((other:CRASH) & (holder:HOLDING))`` — a global state no local-view
  injector can target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.campaign import HostConfig, StudyConfig
from repro.core.expression import And, StateAtom
from repro.core.runtime.application import LokiApplication, NodeContext
from repro.core.runtime.context import NodeDefinition, RestartPolicy
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import (
    StateMachineSpecification,
    StateSpecification,
    build_specification,
)
from repro.sim.topology import NetworkConfig

#: Default nicknames of the ring machines (ring order = sorted nicknames).
DEFAULT_MACHINES = ("node1", "node2", "node3")

RING_STATES = ("BEGIN", "INIT", "WAITING", "HOLDING", "CRASH", "EXIT")
RING_EVENTS = ("WAIT", "ACQUIRE", "RELEASE", "ERROR")

#: Fault-name prefix that marks an injection as a token loss (no crash).
#: Dispatch is by exact prefix (or an explicit entry in
#: :attr:`TokenRingParameters.token_loss_fault_names`), never by substring,
#: so a crash fault whose name merely contains ``tloss`` keeps crashing.
TOKEN_LOSS_PREFIX = "tloss_"


def ring_state_machine_spec(name: str, peers: tuple[str, ...]) -> StateMachineSpecification:
    """State machine of one ring member.

    HOLDING and CRASH notify the other machines: fault expressions
    reference them, and the regeneration rule needs to know who crashed.
    """
    others = tuple(peer for peer in peers if peer != name)
    states = [
        StateSpecification(
            name="INIT",
            notify=(),
            transitions={"WAIT": "WAITING", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="WAITING",
            notify=(),
            transitions={"ACQUIRE": "HOLDING", "ERROR": "EXIT"},
        ),
        StateSpecification(
            name="HOLDING",
            notify=others,
            transitions={"RELEASE": "WAITING", "ERROR": "EXIT"},
        ),
        StateSpecification(name="CRASH", notify=others, transitions={}),
        StateSpecification(name="EXIT", notify=(), transitions={}),
    ]
    return build_specification(name, RING_STATES, RING_EVENTS, states)


def holder_crash_fault(holder: str, name: str | None = None) -> FaultDefinition:
    """``(holder:HOLDING) once`` — crash the machine while it holds the token."""
    return FaultDefinition(
        name=name or f"{holder}_hcrash",
        expression=StateAtom(holder, "HOLDING"),
        trigger=FaultTrigger.ONCE,
    )


def correlated_holder_crash_fault(
    crashed: str, holder: str, name: str | None = None
) -> FaultDefinition:
    """``((crashed:CRASH) & (holder:HOLDING)) once`` — the correlated variant.

    The second machine crashes only while holding the token *after* it has
    learned that ``crashed`` went down, compounding the ring's recovery
    work.
    """
    expression = And(StateAtom(crashed, "CRASH"), StateAtom(holder, "HOLDING"))
    return FaultDefinition(
        name=name or f"{holder}_hcrash2",
        expression=expression,
        trigger=FaultTrigger.ONCE,
    )


def token_loss_fault(holder: str, name: str | None = None) -> FaultDefinition:
    """``(holder:HOLDING) once`` with a token-loss (non-crash) effect.

    The default name carries the :data:`TOKEN_LOSS_PREFIX`, which
    :class:`TokenRingApplication` interprets as "drop the token instead of
    crashing"; a custom ``name`` without the prefix must also be listed in
    :attr:`TokenRingParameters.token_loss_fault_names`.
    """
    return FaultDefinition(
        name=name or f"{TOKEN_LOSS_PREFIX}{holder}",
        expression=StateAtom(holder, "HOLDING"),
        trigger=FaultTrigger.ONCE,
    )


@dataclass
class TokenRingParameters:
    """Tunable timing and behaviour of the token-ring application.

    ``token_loss_fault_names`` lists fault names (beyond those starting
    with :data:`TOKEN_LOSS_PREFIX`) whose injection drops the token
    instead of crashing the holder.
    """

    init_delay: float = 0.008
    token_delay: float = 0.005
    hold_time: float = 0.007
    loss_timeout: float = 0.070
    monitor_interval: float = 0.020
    run_duration: float = 0.6
    fault_crash_probability: float = 1.0
    fault_dormancy: float = 0.002
    token_loss_fault_names: tuple[str, ...] = ()


class TokenRingApplication(LokiApplication):
    """One member of the token ring."""

    def __init__(self, parameters: TokenRingParameters | None = None) -> None:
        self.parameters = parameters or TokenRingParameters()
        self._last_token = 0.0
        self._drop_next_token = False
        self._entries = 0
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        ctx.notify_event("INIT")
        ctx.set_timer(self.parameters.run_duration, self._finish, ctx)
        ctx.set_timer(self.parameters.init_delay, self._join_ring, ctx)

    def _finish(self, ctx: NodeContext) -> None:
        if ctx.alive and not self._stopped:
            self._stopped = True
            ctx.exit()

    def _ring(self, ctx: NodeContext) -> tuple[str, ...]:
        return tuple(sorted(ctx.peers()))

    def _join_ring(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or ctx.current_state != "INIT":
            return
        ctx.notify_event("WAIT")
        self._last_token = ctx.local_time()
        ctx.set_timer(self.parameters.monitor_interval, self._monitor, ctx)
        if self._ring(ctx)[0] == ctx.nickname:
            # The lowest-named machine introduces the initial token.
            ctx.set_timer(self.parameters.token_delay, self._acquire, ctx)

    # -- the token protocol -----------------------------------------------------------

    def _acquire(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or ctx.current_state != "WAITING":
            return
        self._entries += 1
        self._last_token = ctx.local_time()
        ctx.notify_event("ACQUIRE")
        ctx.set_timer(self.parameters.hold_time, self._release, ctx)

    def _release(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive or ctx.current_state != "HOLDING":
            return
        ctx.notify_event("RELEASE")
        if self._drop_next_token:
            # An injected token-loss fault: the token vanishes here and the
            # loss-timeout regeneration rule has to recover it.
            self._drop_next_token = False
            return
        successor = self._successor(ctx)
        if successor is not None:
            ctx.send(successor, {"type": "token"})

    def _successor(self, ctx: NodeContext) -> str | None:
        """The next ring member not known (via the partial view) to have crashed."""
        ring = self._ring(ctx)
        view = ctx.partial_view
        start = ring.index(ctx.nickname)
        for step in range(1, len(ring) + 1):
            candidate = ring[(start + step) % len(ring)]
            if candidate == ctx.nickname:
                continue
            if view.get(candidate) != "CRASH":
                return candidate
        return None

    def on_message(self, ctx: NodeContext, source: str, payload: object) -> None:
        if self._stopped or not isinstance(payload, dict):
            return
        if payload.get("type") != "token":
            return
        self._last_token = ctx.local_time()
        if ctx.current_state == "WAITING":
            self._acquire(ctx)
        # A token arriving in any other state is a duplicate (e.g. after a
        # regeneration raced a slow pass) and is silently retired.

    # -- token-loss recovery --------------------------------------------------------------

    def _monitor(self, ctx: NodeContext) -> None:
        if self._stopped or not ctx.alive:
            return
        silence = ctx.local_time() - self._last_token
        if silence > self.parameters.loss_timeout and ctx.current_state == "WAITING":
            view = ctx.partial_view
            candidates = [
                member for member in self._ring(ctx) if view.get(member) != "CRASH"
            ]
            if candidates and candidates[0] == ctx.nickname:
                self._acquire(ctx)
        ctx.set_timer(self.parameters.monitor_interval, self._monitor, ctx)

    # -- fault injection --------------------------------------------------------------------

    def on_fault(self, ctx: NodeContext, fault_name: str) -> None:
        if (
            fault_name.startswith(TOKEN_LOSS_PREFIX)
            or fault_name in self.parameters.token_loss_fault_names
        ):
            self._drop_next_token = True
            return
        if ctx.random.random() < self.parameters.fault_crash_probability:
            ctx.set_timer(
                self.parameters.fault_dormancy,
                lambda: ctx.crash(reason=f"fault {fault_name} became an error"),
            )


def build_tokenring_study(
    name: str,
    faults_by_machine: dict[str, tuple[FaultDefinition, ...]] | None = None,
    machines: tuple[str, ...] = DEFAULT_MACHINES,
    hosts: tuple[str, ...] = ("hosta", "hostb", "hostc"),
    experiments: int = 10,
    parameters: TokenRingParameters | None = None,
    experiment_timeout: float | None = None,
    network: NetworkConfig | None = None,
    seed: int = 0,
    weight: float = 1.0,
) -> StudyConfig:
    """Assemble a ready-to-run token-ring study.

    The default faults are the correlated pair: the first machine crashes
    while holding the token, and the second crashes while holding it once
    it knows about the first crash.
    """
    parameters = parameters or TokenRingParameters()
    if faults_by_machine is None:
        faults_by_machine = {
            machines[0]: (holder_crash_fault(machines[0]),),
            machines[1]: (correlated_holder_crash_fault(machines[0], machines[1]),),
        }
    nodes = [
        NodeDefinition(
            nickname=machine,
            specification=ring_state_machine_spec(machine, machines),
            faults=FaultSpecification.from_definitions(faults_by_machine.get(machine, ())),
            application_factory=lambda parameters=parameters: TokenRingApplication(parameters),
            start_host=hosts[index % len(hosts)],
        )
        for index, machine in enumerate(machines)
    ]
    return StudyConfig(
        name=name,
        hosts=[HostConfig(name=host) for host in hosts],
        nodes=nodes,
        experiments=experiments,
        restart_policy=RestartPolicy(enabled=False),
        experiment_timeout=experiment_timeout or parameters.run_duration + 2.0,
        network=network or NetworkConfig(),
        seed=seed,
        weight=weight,
    )
