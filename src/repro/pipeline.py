"""High-level evaluation pipeline: runtime phase -> analysis -> measures.

This module ties the three phases of a Loki evaluation (Figure 2.1)
together behind a small facade used by the examples and benchmarks:

1. run the campaign (:mod:`repro.core.campaign`);
2. for every experiment, estimate clock bounds, build the global timeline,
   and verify the injections (:mod:`repro.analysis`), discarding
   experiments with injections that cannot be proven correct;
3. apply study measures to the accepted experiments and estimate
   campaign-level measures (:mod:`repro.measures`).

The runtime phase is the only expensive, stateful step; phases 2 and 3 are
pure functions of its output.  Attaching a :class:`~repro.store.CampaignStore`
to :func:`run_and_analyze` exploits that: the raw experiment payloads are
archived as they complete, interrupted campaigns resume where they stopped,
and the analysis/measure phases can be re-run from the archive at any time
without touching the simulator (``store.load_analysis()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.analysis.clock_sync import ClockBounds, estimate_all_bounds
from repro.analysis.global_timeline import GlobalTimeline, build_global_timeline
from repro.analysis.verification import ExperimentVerification, verify_experiment
from repro.core.campaign import (
    CampaignConfig,
    CampaignResult,
    ExperimentResult,
    StudyResult,
)
from repro.core.execution import ExecutionConfig, build_executor
from repro.core.specs.fault_spec import FaultSpecification
from repro.measures.study import StudyMeasure
from repro.measures.timeline_view import TimelineView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.store import CampaignStore


@dataclass
class AnalyzedExperiment:
    """One experiment after the analysis phase."""

    result: ExperimentResult
    clock_bounds: dict[str, ClockBounds]
    global_timeline: GlobalTimeline
    verification: ExperimentVerification

    @property
    def accepted(self) -> bool:
        """Whether the experiment survives the analysis phase.

        An experiment is kept only if it ran to completion and every fault
        injection it contains was provably performed in the intended global
        state.
        """
        return self.result.completed and self.verification.correct

    def view(self, time_policy: str = "midpoint") -> TimelineView:
        """A measure-layer view of the experiment's global timeline."""
        return TimelineView.from_global_timeline(self.global_timeline, time_policy=time_policy)


def analyze_experiment(
    result: ExperimentResult,
    fault_specifications: Mapping[str, FaultSpecification],
) -> AnalyzedExperiment:
    """Run the analysis phase for one experiment."""
    bounds = estimate_all_bounds(result.sync_messages, result.hosts, result.reference_host)
    timeline = build_global_timeline(result.local_timelines, bounds)
    verification = verify_experiment(timeline, fault_specifications)
    return AnalyzedExperiment(
        result=result,
        clock_bounds=bounds,
        global_timeline=timeline,
        verification=verification,
    )


@dataclass
class StudyAnalysis:
    """All experiments of one study after the analysis phase."""

    study: StudyResult
    experiments: list[AnalyzedExperiment] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The study's name."""
        return self.study.name

    def accepted(self) -> list[AnalyzedExperiment]:
        """Experiments that survived the analysis phase."""
        return [experiment for experiment in self.experiments if experiment.accepted]

    def discarded(self) -> list[AnalyzedExperiment]:
        """Experiments discarded because of incorrect or incomplete runs."""
        return [experiment for experiment in self.experiments if not experiment.accepted]

    def accepted_views(self, time_policy: str = "midpoint") -> list[TimelineView]:
        """Timeline views of the accepted experiments."""
        return [experiment.view(time_policy) for experiment in self.accepted()]

    def measure_values(
        self, measure: StudyMeasure, time_policy: str = "midpoint"
    ) -> list[float | None]:
        """Apply a study measure to every accepted experiment."""
        return measure.apply(self.accepted_views(time_policy))


def analyze_study(study_result: StudyResult) -> StudyAnalysis:
    """Run the analysis phase for every experiment of a study."""
    fault_specifications = study_result.config.fault_specifications()
    analysis = StudyAnalysis(study=study_result)
    for experiment in study_result.experiments:
        analysis.experiments.append(analyze_experiment(experiment, fault_specifications))
    return analysis


@dataclass
class CampaignAnalysis:
    """The analysis-phase output of a whole campaign."""

    campaign: CampaignResult
    studies: dict[str, StudyAnalysis] = field(default_factory=dict)

    def study(self, name: str) -> StudyAnalysis:
        """Look up one study's analysis by name."""
        return self.studies[name]

    def measure_values(
        self,
        measures: Mapping[str, StudyMeasure],
        time_policy: str = "midpoint",
    ) -> dict[str, list[float | None]]:
        """Apply one study measure per study and collect the value lists.

        ``measures`` maps study name to the study measure to apply; studies
        missing from the mapping are skipped.
        """
        values: dict[str, list[float | None]] = {}
        for name, analysis in self.studies.items():
            if name in measures:
                values[name] = analysis.measure_values(measures[name], time_policy)
        return values

    def acceptance_summary(self) -> dict[str, tuple[int, int]]:
        """Per study: (accepted experiments, total experiments)."""
        return {
            name: (len(analysis.accepted()), len(analysis.experiments))
            for name, analysis in self.studies.items()
        }


def analyze_campaign(result: CampaignResult) -> CampaignAnalysis:
    """Run the analysis phase for every study of a campaign."""
    analysis = CampaignAnalysis(campaign=result)
    for name, study_result in result.studies.items():
        analysis.studies[name] = analyze_study(study_result)
    return analysis


def run_and_analyze(
    config: CampaignConfig,
    execution: ExecutionConfig | None = None,
    store: "CampaignStore | str | Path | None" = None,
) -> CampaignAnalysis:
    """Run the runtime phase and the analysis phase of a campaign.

    Both phases are executed through the campaign execution engine
    (:mod:`repro.core.execution`): the analysis of each experiment is fused
    into the worker that ran it, and the raw ``local_timelines`` /
    ``sync_messages`` payloads are dropped from every analyzed experiment
    once analysis has consumed them — on *every* backend, so serial and
    pooled runs return structurally identical results and large campaigns
    stay memory-light.  Pass ``ExecutionConfig(keep_raw_results=True)`` to
    retain the raw payloads.

    ``store`` (a :class:`~repro.store.CampaignStore` or a directory path)
    makes the campaign durable and resumable: completed experiments stream
    into the store as they finish, experiments already recorded there (with
    matching configuration fingerprint and seed) are loaded instead of
    re-simulated, and the archived records can later be re-analyzed without
    any simulation via :meth:`~repro.store.CampaignStore.load_analysis`.
    Because record round trips are bit-exact, a resumed campaign's measures
    are bit-identical to an uninterrupted run's.
    """
    if store is not None and not hasattr(store, "append"):
        from repro.store import CampaignStore

        store = CampaignStore(store)
    return build_executor(execution or config.execution).run_and_analyze(
        config, store=store
    )


def correct_injection_fraction(
    analyses: Sequence[AnalyzedExperiment],
) -> float | None:
    """Fraction of injections that were verified correct across experiments.

    This is the quantity plotted in Figures 3.2 and 3.3 (correct fault
    injection probability); experiments with no injections contribute
    nothing to either count.  When *no* injections were observed at all
    the fraction is undefined and ``None`` is returned — previously this
    case returned ``0.0``, indistinguishable from "every injection was
    wrong".
    """
    correct = 0
    total = 0
    for experiment in analyses:
        for verdict in experiment.verification.verdicts:
            total += 1
            if verdict.correct:
                correct += 1
    if total == 0:
        return None
    return correct / total
