"""Predicates over the global timeline (Section 4.3.1).

A predicate is built from tuples combined with AND, OR, and NOT.  Four
tuple forms exist:

* ``(machine, state)`` — true whenever the machine is in the state;
* ``(machine, state, time)`` — additionally restricted to a time window
  (or instant);
* ``(machine, state, event)`` — true at the instants the event occurs in
  the machine while it is in the state (an impulse);
* ``(machine, state, event, time)`` — the same restricted to a time
  window (which must be an interval, not an instant).

Evaluating a predicate against a :class:`~repro.measures.timeline_view.TimelineView`
produces a :class:`~repro.measures.pvt.PredicateTimeline`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.analysis.intervals import IntervalSet
from repro.errors import MeasureError
from repro.measures.pvt import PredicateTimeline
from repro.measures.timeline_view import TimelineView


@dataclass(frozen=True)
class TimeWindow:
    """A closed time restriction: an interval or (when ``start == end``) an instant."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise MeasureError(f"time window end {self.end} precedes start {self.start}")

    @property
    def is_instant(self) -> bool:
        """Whether the window is a single instant."""
        return self.start == self.end

    @classmethod
    def interval(cls, start: float, end: float) -> "TimeWindow":
        """A window spanning ``[start, end]``."""
        return cls(start, end)

    @classmethod
    def instant(cls, time: float) -> "TimeWindow":
        """A window consisting of the single instant ``time``."""
        return cls(time, time)


class Predicate(ABC):
    """Base class of the predicate language."""

    @abstractmethod
    def evaluate(self, view: TimelineView) -> PredicateTimeline:
        """Compute the predicate value timeline over one experiment."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return PAnd(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return POr(self, other)

    def __invert__(self) -> "Predicate":
        return PNot(self)


@dataclass(frozen=True)
class StateTuple(Predicate):
    """``(machine, state[, time])`` — state occupancy, optionally windowed."""

    machine: str
    state: str
    window: TimeWindow | None = None

    def evaluate(self, view: TimelineView) -> PredicateTimeline:
        lower = view.start if self.window is None else max(view.start, self.window.start)
        upper = view.end if self.window is None else min(view.end, self.window.end)
        pairs: list[tuple[float, float]] = []
        if upper >= lower:
            for start, end in view.state_intervals(self.machine, self.state):
                clipped_start = max(start, lower)
                clipped_end = min(end, upper)
                if clipped_end >= clipped_start:
                    pairs.append((clipped_start, clipped_end))
        return PredicateTimeline(
            steps=IntervalSet.from_pairs(pairs),
            impulses=(),
            start=view.start,
            end=view.end,
        )


@dataclass(frozen=True)
class EventTuple(Predicate):
    """``(machine, state, event[, time])`` — event occurrences (impulses)."""

    machine: str
    state: str
    event: str
    window: TimeWindow | None = None

    def __post_init__(self) -> None:
        if self.window is not None and self.window.is_instant:
            raise MeasureError(
                "tuples involving events must use a time interval, not an instant"
            )

    def evaluate(self, view: TimelineView) -> PredicateTimeline:
        times = view.event_times(self.machine, self.event, state=self.state)
        if self.window is not None:
            times = [t for t in times if self.window.start <= t <= self.window.end]
        return PredicateTimeline(
            steps=IntervalSet.empty(),
            impulses=times,
            start=view.start,
            end=view.end,
        )


@dataclass(frozen=True)
class PAnd(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, view: TimelineView) -> PredicateTimeline:
        return self.left.evaluate(view) & self.right.evaluate(view)


@dataclass(frozen=True)
class POr(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, view: TimelineView) -> PredicateTimeline:
        return self.left.evaluate(view) | self.right.evaluate(view)


@dataclass(frozen=True)
class PNot(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def evaluate(self, view: TimelineView) -> PredicateTimeline:
        return ~self.operand.evaluate(view)
