"""Observation functions (Section 4.3.2).

An observation function reduces a predicate value timeline to a single
number.  The five predefined functions of the paper are provided —
``count``, ``outcome``, ``duration``, ``instant``, ``total_duration`` —
plus :class:`UserObservation` for arbitrary user-defined reductions.

``start``/``end`` arguments accept concrete times, ``None``, or the macros
``"START_EXP"``/``"END_EXP"``, which resolve to the experiment's start and
end times when the function is applied.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.errors import ObservationFunctionError
from repro.measures.pvt import PredicateTimeline, Transition

#: Macro resolving to the experiment start time.
START_EXP = "START_EXP"

#: Macro resolving to the experiment end time.
END_EXP = "END_EXP"

_EDGES = ("U", "D", "B")
_KINDS = ("I", "S", "B")
_VALUES = ("T", "F")


def _resolve(bound, default: float) -> float:
    if bound is None or bound in (START_EXP, END_EXP):
        return default
    return float(bound)


def _check_choice(value: str, allowed: tuple[str, ...], label: str) -> str:
    if value not in allowed:
        raise ObservationFunctionError(f"{label} must be one of {allowed}, got {value!r}")
    return value


class ObservationFunction(ABC):
    """Base class: a callable from predicate timeline to a float."""

    @abstractmethod
    def __call__(self, timeline: PredicateTimeline) -> float:
        """Apply the observation function."""


@dataclass(frozen=True)
class Count(ObservationFunction):
    """``count(<U|D|B>, <I|S|B>, START, END)``.

    Number of up transitions, down transitions, or both, considering only
    impulses, only steps, or both, within ``[start, end]``.
    """

    edge: str = "B"
    kind: str = "B"
    start: object = None
    end: object = None

    def __post_init__(self) -> None:
        _check_choice(self.edge, _EDGES, "edge")
        _check_choice(self.kind, _KINDS, "kind")

    def __call__(self, timeline: PredicateTimeline) -> float:
        lower = _resolve(self.start, timeline.start)
        upper = _resolve(self.end, timeline.end)
        return float(
            sum(
                1
                for transition in timeline.transitions()
                if transition.matches(self.edge, self.kind) and lower <= transition.time <= upper
            )
        )


@dataclass(frozen=True)
class Outcome(ObservationFunction):
    """``outcome(t)``: 1 if the predicate holds at instant ``t``, else 0."""

    time: float

    def __call__(self, timeline: PredicateTimeline) -> float:
        return 1.0 if timeline.value_at(self.time) else 0.0


@dataclass(frozen=True)
class Duration(ObservationFunction):
    """``duration(<T|F>, x, START, END)``.

    For ``"T"``: the length of time the predicate remains true after the
    ``x``-th false-to-true transition inside ``[start, end]`` (0 if that
    transition is an impulse, 0 if there are fewer than ``x`` transitions).
    For ``"F"``: the symmetric quantity after the ``x``-th true-to-false
    transition.
    """

    value: str
    occurrence: int
    start: object = None
    end: object = None

    def __post_init__(self) -> None:
        _check_choice(self.value, _VALUES, "value")
        if self.occurrence < 1:
            raise ObservationFunctionError("occurrence index must be at least 1")

    def __call__(self, timeline: PredicateTimeline) -> float:
        lower = _resolve(self.start, timeline.start)
        upper = _resolve(self.end, timeline.end)
        if self.value == "T":
            starts = timeline.up_transitions()
            follow = timeline.down_transitions()
        else:
            starts = timeline.down_transitions()
            follow = timeline.up_transitions()
        eligible = [transition for transition in starts if lower <= transition.time <= upper]
        if len(eligible) < self.occurrence:
            return 0.0
        anchor = eligible[self.occurrence - 1]
        if self.value == "T" and anchor.kind == "I":
            # An impulse is true only for an instant, so the duration after
            # an impulse up-transition is zero.
            return 0.0
        next_changes = [transition.time for transition in follow if transition.time > anchor.time]
        closing = min(next_changes) if next_changes else upper
        return max(0.0, min(closing, upper) - anchor.time)


@dataclass(frozen=True)
class Instant(ObservationFunction):
    """``instant(<U|D|B>, <I|S|B>, x, START, END)``.

    The time of the ``x``-th transition matching the edge/kind filter inside
    ``[start, end]``; 0 if there are fewer than ``x`` such transitions.
    """

    edge: str
    kind: str
    occurrence: int
    start: object = None
    end: object = None

    def __post_init__(self) -> None:
        _check_choice(self.edge, _EDGES, "edge")
        _check_choice(self.kind, _KINDS, "kind")
        if self.occurrence < 1:
            raise ObservationFunctionError("occurrence index must be at least 1")

    def __call__(self, timeline: PredicateTimeline) -> float:
        lower = _resolve(self.start, timeline.start)
        upper = _resolve(self.end, timeline.end)
        matches: list[Transition] = [
            transition
            for transition in timeline.transitions()
            if transition.matches(self.edge, self.kind) and lower <= transition.time <= upper
        ]
        if len(matches) < self.occurrence:
            return 0.0
        return matches[self.occurrence - 1].time


@dataclass(frozen=True)
class TotalDuration(ObservationFunction):
    """``total_duration(<T|F>, START, END)``.

    Total time the predicate is true (``"T"``) or false (``"F"``) within
    ``[start, end]``.  Impulses have zero measure and do not contribute.
    """

    value: str = "T"
    start: object = None
    end: object = None

    def __post_init__(self) -> None:
        _check_choice(self.value, _VALUES, "value")

    def __call__(self, timeline: PredicateTimeline) -> float:
        lower = _resolve(self.start, timeline.start)
        upper = _resolve(self.end, timeline.end)
        if upper < lower:
            return 0.0
        # Coerce: an empty interval set sums to int 0, and the hex-exact
        # golden/codec round trips require a genuine float here.
        true_time = float(timeline.true_duration(lower, upper))
        if self.value == "T":
            return true_time
        return (upper - lower) - true_time


@dataclass(frozen=True)
class UserObservation(ObservationFunction):
    """A user-defined observation function.

    The wrapped callable receives the predicate value timeline and may
    combine the predefined functions with arbitrary arithmetic, which is
    the Python analogue of the paper's "compiled with a standard C
    compiler" user functions.
    """

    function: Callable[[PredicateTimeline], float]
    name: str = "user"

    def __call__(self, timeline: PredicateTimeline) -> float:
        return float(self.function(timeline))
