"""Campaign-level measures (Section 4.4).

Campaign measures combine the final observation function values of one or
more studies:

* :class:`SimpleSamplingMeasure` pools every study's values into a single
  sample (all experiments are instances of the same random variable);
* :class:`StratifiedWeightedMeasure` treats each study as its own random
  variable and combines the per-study moments with normalized weights —
  the estimator used for coverage of a fault-tolerance mechanism when the
  per-class fault occurrence rates are known;
* :class:`StratifiedUserMeasure` applies an arbitrary user function to the
  per-study means; as the paper notes, the resulting value carries no
  statistical guarantees.

The measure phase is a pure function of the analysis phase's output, so it
runs equally over a live :class:`~repro.pipeline.CampaignAnalysis` and one
loaded from a :class:`~repro.store.CampaignStore` archive
(``store.load_analysis()``) — :func:`estimate_campaign_measure` is the
one-call form used by both workflows, and
:meth:`CampaignMeasureResult.to_dict` gives estimates a primitive,
comparable form (the store tests use dictionary equality to assert that
archived and live campaigns yield bit-identical measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.errors import StatisticsError
from repro.measures.statistics import MomentSummary, combine_stratified, summarize_sample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.measures.study import StudyMeasure
    from repro.pipeline import CampaignAnalysis


def _clean(values: Sequence[float | None]) -> list[float]:
    return [float(value) for value in values if value is not None]


@dataclass(frozen=True)
class CampaignMeasureResult:
    """The estimate produced by one campaign-level measure."""

    name: str
    kind: str
    summary: MomentSummary | None
    value: float
    per_study: Mapping[str, MomentSummary] = field(default_factory=dict)
    samples_used: int = 0

    @property
    def mean(self) -> float:
        """The point estimate (same as ``value``)."""
        return self.value

    def percentile(self, probability: float) -> float:
        """Percentile of the campaign measure, when statistically defined."""
        if self.summary is None:
            raise StatisticsError(
                f"campaign measure {self.name!r} of kind {self.kind!r} has no moment summary"
            )
        return self.summary.percentile(probability)

    def to_dict(self) -> dict:
        """The estimate as a plain dictionary of primitives.

        Suitable for JSON archival next to a campaign store and for exact
        comparison: floats are passed through untouched, so two estimates
        computed from bit-identical inputs produce equal dictionaries.
        """
        return {
            "name": self.name,
            "kind": self.kind,
            "value": self.value,
            "summary": None if self.summary is None else self.summary.to_dict(),
            "per_study": {
                study: summary.to_dict() for study, summary in self.per_study.items()
            },
            "samples_used": self.samples_used,
        }


def estimate_campaign_measure(
    campaign_measure,
    analysis: "CampaignAnalysis",
    study_measures: "Mapping[str, StudyMeasure]",
    time_policy: str = "midpoint",
) -> CampaignMeasureResult:
    """One-call measure phase over an analysis, live or store-loaded.

    Applies each study's measure to its accepted experiments
    (:meth:`~repro.pipeline.CampaignAnalysis.measure_values`) and feeds the
    resulting per-study value lists to ``campaign_measure.estimate``.
    Because the measure phase never touches the simulator, ``analysis`` can
    equally come from :func:`~repro.pipeline.run_and_analyze` or from an
    archived campaign via
    :meth:`~repro.store.CampaignStore.load_analysis` — the estimates are
    bit-identical either way.
    """
    return campaign_measure.estimate(
        analysis.measure_values(study_measures, time_policy)
    )


class SimpleSamplingMeasure:
    """Pool all studies' final observation values into one sample."""

    kind = "simple_sampling"

    def __init__(self, name: str) -> None:
        self.name = name

    def estimate(
        self, study_values: Mapping[str, Sequence[float | None]]
    ) -> CampaignMeasureResult:
        """Estimate the measure from per-study final observation values."""
        pooled: list[float] = []
        per_study: dict[str, MomentSummary] = {}
        for study, values in study_values.items():
            cleaned = _clean(values)
            if cleaned:
                per_study[study] = summarize_sample(cleaned)
            pooled.extend(cleaned)
        if not pooled:
            raise StatisticsError(
                f"simple sampling measure {self.name!r} has no surviving experiments"
            )
        summary = summarize_sample(pooled)
        return CampaignMeasureResult(
            name=self.name,
            kind=self.kind,
            summary=summary,
            value=summary.mean,
            per_study=per_study,
            samples_used=len(pooled),
        )


class StratifiedWeightedMeasure:
    """Linearly weighted combination of per-study moments."""

    kind = "stratified_weighted"

    def __init__(self, name: str, weights: Mapping[str, float]) -> None:
        self.name = name
        self.weights = dict(weights)

    def estimate(
        self, study_values: Mapping[str, Sequence[float | None]]
    ) -> CampaignMeasureResult:
        """Estimate the measure from per-study final observation values."""
        per_study: dict[str, MomentSummary] = {}
        samples_used = 0
        for study, values in study_values.items():
            cleaned = _clean(values)
            if not cleaned:
                raise StatisticsError(
                    f"stratified measure {self.name!r}: study {study!r} has no surviving experiments"
                )
            per_study[study] = summarize_sample(cleaned)
            samples_used += len(cleaned)
        summary = combine_stratified(per_study, self.weights)
        return CampaignMeasureResult(
            name=self.name,
            kind=self.kind,
            summary=summary,
            value=summary.mean,
            per_study=per_study,
            samples_used=samples_used,
        )


class StratifiedUserMeasure:
    """A user-defined combination of the per-study mean values."""

    kind = "stratified_user"

    def __init__(
        self, name: str, function: Callable[[Mapping[str, float]], float]
    ) -> None:
        self.name = name
        self.function = function

    def estimate(
        self, study_values: Mapping[str, Sequence[float | None]]
    ) -> CampaignMeasureResult:
        """Estimate the measure by applying the user function to study means.

        The paper's caveat applies: the returned value replaces each study's
        random variable by its mean, and therefore has no statistical
        characterization (``summary`` is ``None``).
        """
        per_study: dict[str, MomentSummary] = {}
        means: dict[str, float] = {}
        samples_used = 0
        for study, values in study_values.items():
            cleaned = _clean(values)
            if not cleaned:
                raise StatisticsError(
                    f"stratified user measure {self.name!r}: study {study!r} has no "
                    "surviving experiments"
                )
            summary = summarize_sample(cleaned)
            per_study[study] = summary
            means[study] = summary.mean
            samples_used += len(cleaned)
        value = float(self.function(means))
        return CampaignMeasureResult(
            name=self.name,
            kind=self.kind,
            summary=None,
            value=value,
            per_study=per_study,
            samples_used=samples_used,
        )
