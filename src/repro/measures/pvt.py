"""Predicate value timelines (Section 4.3.1).

Applying a predicate to a global timeline yields a *predicate value
timeline*: a Boolean function of time made of *steps* (intervals during
which the predicate holds because of state occupancy) and *impulses*
(isolated instants at which it holds because an event occurred).  The
observation functions of Section 4.3.2 are all defined over this object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.intervals import IntervalSet
from repro.errors import MeasureError

#: Transition edge direction: false-to-true or true-to-false.
UP = "U"
DOWN = "D"

#: Transition origin: a step boundary or an impulse.
STEP = "S"
IMPULSE = "I"


@dataclass(frozen=True)
class Transition:
    """One transition of a predicate value timeline."""

    time: float
    edge: str
    kind: str

    def matches(self, edge: str, kind: str) -> bool:
        """Whether the transition matches an edge/kind filter (``"B"`` = both)."""
        edge_ok = edge == "B" or edge == self.edge
        kind_ok = kind == "B" or kind == self.kind
        return edge_ok and kind_ok


class PredicateTimeline:
    """The value of one predicate over the duration of one experiment."""

    def __init__(
        self,
        steps: IntervalSet,
        impulses: Iterable[float],
        start: float,
        end: float,
    ) -> None:
        if end < start:
            raise MeasureError(f"predicate timeline end {end} precedes start {start}")
        self._start = start
        self._end = end
        self._steps = steps.clip(start, end)
        self._impulses = tuple(sorted({t for t in impulses if start <= t <= end}))

    # -- accessors ------------------------------------------------------------------

    @property
    def start(self) -> float:
        """Experiment start time."""
        return self._start

    @property
    def end(self) -> float:
        """Experiment end time."""
        return self._end

    @property
    def steps(self) -> IntervalSet:
        """The intervals during which the predicate holds as a step."""
        return self._steps

    @property
    def impulses(self) -> tuple[float, ...]:
        """All impulse instants (including any covered by a step)."""
        return self._impulses

    def effective_impulses(self) -> tuple[float, ...]:
        """Impulses that are not already inside a true step interval.

        Only these contribute transitions: an impulse inside a step region
        does not change the predicate's value.
        """
        return tuple(t for t in self._impulses if not self._steps.contains(t))

    def value_at(self, time: float) -> bool:
        """The predicate's value at one instant."""
        return self._steps.contains(time) or time in self._impulses

    # -- Boolean combinations -----------------------------------------------------------

    def _check_compatible(self, other: "PredicateTimeline") -> None:
        if (self._start, self._end) != (other._start, other._end):
            raise MeasureError(
                "cannot combine predicate timelines with different experiment extents"
            )

    def __or__(self, other: "PredicateTimeline") -> "PredicateTimeline":
        self._check_compatible(other)
        return PredicateTimeline(
            steps=self._steps.union(other._steps),
            impulses=self._impulses + other._impulses,
            start=self._start,
            end=self._end,
        )

    def __and__(self, other: "PredicateTimeline") -> "PredicateTimeline":
        self._check_compatible(other)
        steps = self._steps.intersection(other._steps)
        impulses = [t for t in self._impulses if other.value_at(t)]
        impulses.extend(t for t in other._impulses if self.value_at(t))
        return PredicateTimeline(
            steps=steps, impulses=impulses, start=self._start, end=self._end
        )

    def __invert__(self) -> "PredicateTimeline":
        # The negation of an impulse is true everywhere except a single
        # instant; that measure-zero exception is dropped, so only the step
        # component is complemented.
        return PredicateTimeline(
            steps=self._steps.complement(self._start, self._end),
            impulses=(),
            start=self._start,
            end=self._end,
        )

    # -- transitions ---------------------------------------------------------------------

    def transitions(self) -> list[Transition]:
        """All transitions, ordered by time (up before down at equal times)."""
        result: list[Transition] = []
        for interval in self._steps:
            result.append(Transition(time=interval.start, edge=UP, kind=STEP))
            result.append(Transition(time=interval.end, edge=DOWN, kind=STEP))
        for impulse in self.effective_impulses():
            result.append(Transition(time=impulse, edge=UP, kind=IMPULSE))
            result.append(Transition(time=impulse, edge=DOWN, kind=IMPULSE))
        result.sort(key=lambda transition: (transition.time, 0 if transition.edge == UP else 1))
        return result

    def up_transitions(self) -> list[Transition]:
        """Only false-to-true transitions, in time order."""
        return [transition for transition in self.transitions() if transition.edge == UP]

    def down_transitions(self) -> list[Transition]:
        """Only true-to-false transitions, in time order."""
        return [transition for transition in self.transitions() if transition.edge == DOWN]

    def true_duration(self, start: float | None = None, end: float | None = None) -> float:
        """Total time the predicate holds as a step within ``[start, end]``."""
        lower = self._start if start is None else start
        upper = self._end if end is None else end
        return self._steps.clip(lower, upper).total_length()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PredicateTimeline(steps={self._steps!r}, impulses={self._impulses}, "
            f"window=[{self._start}, {self._end}])"
        )
