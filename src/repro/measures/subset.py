"""Subset selections (Section 4.3.3).

A subset selection filters the experiments of a study based on the
observation function value of the previous (subset selection, predicate,
observation function) triple — the paper's ``OBS_VALUE`` macro.  The first
triple of a study measure conventionally selects all experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class SubsetSelection:
    """A named predicate over the previous observation value."""

    function: Callable[[float | None], bool]
    name: str = "subset"

    def __call__(self, previous_value: float | None) -> bool:
        return bool(self.function(previous_value))

    def __str__(self) -> str:
        return self.name


def select_all() -> SubsetSelection:
    """The ``default`` subset selection: keep every experiment."""
    return SubsetSelection(lambda _value: True, name="default")


def where(function: Callable[[float], bool], name: str = "where") -> SubsetSelection:
    """Keep experiments whose previous observation value satisfies ``function``.

    Experiments with no previous value (the first triple) are kept.
    """

    def check(previous_value: float | None) -> bool:
        if previous_value is None:
            return True
        return bool(function(previous_value))

    return SubsetSelection(check, name=name)


def value_positive() -> SubsetSelection:
    """Keep experiments whose previous observation value is strictly positive."""
    return where(lambda value: value > 0, name="OBS_VALUE > 0")


def value_between(lower: float, upper: float) -> SubsetSelection:
    """Keep experiments whose previous observation value lies in ``[lower, upper]``."""
    return where(lambda value: lower <= value <= upper, name=f"{lower} <= OBS_VALUE <= {upper}")
