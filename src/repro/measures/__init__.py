"""The measure-estimation phase (Chapter 4).

Measures are defined at two levels.  A *study-level measure* is an ordered
sequence of (subset selection, predicate, observation function) triples
applied to the verified global timeline of every experiment of the study;
its output per experiment is a *final observation function value*.  A
*campaign-level measure* combines the final observation function values
across studies: as one pooled sample (*simple sampling*), as a linearly
weighted combination of per-study moments (*stratified weighted*), or with
an arbitrary user function of the per-study means (*stratified user*).

Both levels are pure functions of the analysis phase's output: they apply
unchanged to a live :class:`~repro.pipeline.CampaignAnalysis` and to one
re-loaded from a :class:`~repro.store.CampaignStore` archive, which is what
makes the run-once/analyze-many workflow possible
(:func:`estimate_campaign_measure` is the one-call form).
"""

from repro.measures.campaign_measures import (
    CampaignMeasureResult,
    SimpleSamplingMeasure,
    StratifiedUserMeasure,
    StratifiedWeightedMeasure,
    estimate_campaign_measure,
)
from repro.measures.observation import (
    Count,
    Duration,
    Instant,
    ObservationFunction,
    Outcome,
    TotalDuration,
    UserObservation,
)
from repro.measures.predicate import (
    EventTuple,
    PAnd,
    PNot,
    POr,
    Predicate,
    StateTuple,
    TimeWindow,
)
from repro.measures.pvt import PredicateTimeline, Transition
from repro.measures.statistics import MomentSummary, combine_stratified, summarize_sample
from repro.measures.study import MeasureStep, StudyMeasure
from repro.measures.subset import SubsetSelection, select_all, value_between, value_positive, where
from repro.measures.timeline_view import TimelineView

__all__ = [
    "CampaignMeasureResult",
    "Count",
    "Duration",
    "EventTuple",
    "Instant",
    "MeasureStep",
    "MomentSummary",
    "ObservationFunction",
    "Outcome",
    "PAnd",
    "PNot",
    "POr",
    "Predicate",
    "PredicateTimeline",
    "SimpleSamplingMeasure",
    "StateTuple",
    "StratifiedUserMeasure",
    "StratifiedWeightedMeasure",
    "StudyMeasure",
    "SubsetSelection",
    "TimeWindow",
    "TimelineView",
    "TotalDuration",
    "Transition",
    "UserObservation",
    "combine_stratified",
    "estimate_campaign_measure",
    "select_all",
    "summarize_sample",
    "value_between",
    "value_positive",
    "where",
]
