"""A query view over one experiment's global timeline.

Predicates need two queries over an experiment's history: during which
intervals was a machine in a given state, and at which instants did a given
event occur in a machine while it was in a given state.  A
:class:`TimelineView` answers both, and can be built either from an
analysis-phase :class:`~repro.analysis.global_timeline.GlobalTimeline`
(collapsing each event's ``[lower, upper]`` bounds with a configurable
policy, midpoint by default, as in Figure 4.2) or directly from rows of the
paper's example table for the worked Figure 4.2 reproduction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.analysis.global_timeline import GlobalTimeline
from repro.core.specs.state_machine import INITIAL_STATE
from repro.errors import MeasureError

#: Valid policies for collapsing an event's global-time bounds to one instant.
TIME_POLICIES = ("midpoint", "lower", "upper")


class TimelineView:
    """State-occupancy intervals and event instants for one experiment."""

    def __init__(
        self,
        state_intervals: dict[str, dict[str, list[tuple[float, float]]]],
        events: dict[str, list[tuple[str, str, float]]],
        start: float,
        end: float,
    ) -> None:
        if end < start:
            raise MeasureError(f"experiment end {end} precedes start {start}")
        self._state_intervals = state_intervals
        self._events = events
        self._start = start
        self._end = end

    # -- experiment extent ------------------------------------------------------

    @property
    def start(self) -> float:
        """Experiment start time (the ``START_EXP`` macro)."""
        return self._start

    @property
    def end(self) -> float:
        """Experiment end time (the ``END_EXP`` macro)."""
        return self._end

    # -- queries -------------------------------------------------------------------

    def machines(self) -> tuple[str, ...]:
        """Machines known to the view."""
        names = set(self._state_intervals) | set(self._events)
        return tuple(sorted(names))

    def state_intervals(self, machine: str, state: str) -> list[tuple[float, float]]:
        """Intervals during which ``machine`` was in ``state``."""
        return list(self._state_intervals.get(machine, {}).get(state, []))

    def event_times(self, machine: str, event: str, state: str | None = None) -> list[float]:
        """Instants at which ``event`` occurred in ``machine``.

        When ``state`` is given, only occurrences while the machine was in
        that state are returned (the state *during which* the event
        occurred, matching the paper's tuple semantics).
        """
        occurrences = self._events.get(machine, [])
        return sorted(
            time
            for during_state, name, time in occurrences
            if name == event and (state is None or during_state == state)
        )

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def from_global_timeline(
        cls, timeline: GlobalTimeline, time_policy: str = "midpoint"
    ) -> "TimelineView":
        """Build a view from an analysis-phase global timeline.

        ``time_policy`` selects how each event's ``[lower, upper]`` interval
        is collapsed to a single instant: ``"midpoint"`` (the default, used
        by the Figure 4.2 example), ``"lower"``, or ``"upper"``.
        """
        if time_policy not in TIME_POLICIES:
            raise MeasureError(f"unknown time policy {time_policy!r}; expected one of {TIME_POLICIES}")

        def collapse(entry) -> float:
            if time_policy == "lower":
                return entry.lower
            if time_policy == "upper":
                return entry.upper
            return entry.midpoint

        state_intervals: dict[str, dict[str, list[tuple[float, float]]]] = defaultdict(
            lambda: defaultdict(list)
        )
        events: dict[str, list[tuple[str, str, float]]] = defaultdict(list)
        start = timeline.start
        end = timeline.horizon
        for machine in timeline.machines():
            changes = timeline.state_changes(machine)
            previous_state = INITIAL_STATE
            previous_time = start
            for change in changes:
                time = collapse(change)
                state_intervals[machine][previous_state].append((previous_time, time))
                events[machine].append((previous_state, change.event, time))
                previous_state = change.new_state
                previous_time = time
            state_intervals[machine][previous_state].append((previous_time, end))
        return cls(
            state_intervals={m: dict(states) for m, states in state_intervals.items()},
            events=dict(events),
            start=start,
            end=end,
        )

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence],
        start: float = 0.0,
        end: float | None = None,
    ) -> "TimelineView":
        """Build a view from ``(machine, state, event, time)`` rows.

        This is the format of the paper's Figure 4.2 example table: each row
        says that ``event`` occurred at ``time`` while ``machine`` was in
        ``state``; the state therefore occupies the interval from the
        machine's previous row (or ``start``) up to ``time``.  The state the
        machine is in after its last row is unknown and contributes no
        interval.
        """
        parsed: list[tuple[str, str, str, float]] = []
        for row in rows:
            if len(row) != 4:
                raise MeasureError(f"rows must be (machine, state, event, time), got {row!r}")
            machine, state, event, time = row
            parsed.append((str(machine), str(state), str(event), float(time)))
        if end is None:
            end = max((time for *_ignored, time in parsed), default=start)

        state_intervals: dict[str, dict[str, list[tuple[float, float]]]] = defaultdict(
            lambda: defaultdict(list)
        )
        events: dict[str, list[tuple[str, str, float]]] = defaultdict(list)
        previous_time: dict[str, float] = {}
        for machine, state, event, time in sorted(parsed, key=lambda row: row[3]):
            interval_start = previous_time.get(machine, start)
            state_intervals[machine][state].append((interval_start, time))
            events[machine].append((state, event, time))
            previous_time[machine] = time
        return cls(
            state_intervals={m: dict(states) for m, states in state_intervals.items()},
            events=dict(events),
            start=start,
            end=float(end),
        )
