"""Study-level measures (Section 4.3.4).

A study-level measure is an ordered sequence of (subset selection,
predicate, observation function) triples applied to every experiment of a
study.  The subset selection of each triple examines the observation value
of the *previous* triple and decides whether the experiment stays in the
measure; the output of the last triple is the experiment's *final
observation function value* (or ``None`` if the experiment was filtered
out along the way).

Study measures consume only :class:`~repro.measures.timeline_view.TimelineView`
objects — projections of verified global timelines — never the simulator
or the raw runtime payloads.  They therefore apply identically to freshly
analyzed experiments and to experiments re-loaded from a
:class:`~repro.store.CampaignStore` archive: changing a measure and
re-applying it over ``store.load_analysis()`` costs zero simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import MeasureError
from repro.measures.observation import ObservationFunction
from repro.measures.predicate import Predicate
from repro.measures.subset import SubsetSelection, select_all
from repro.measures.timeline_view import TimelineView


@dataclass(frozen=True)
class MeasureStep:
    """One (subset selection, predicate, observation function) triple."""

    predicate: Predicate
    observation: ObservationFunction
    subset: SubsetSelection = field(default_factory=select_all)


@dataclass(frozen=True)
class StudyMeasure:
    """An ordered sequence of measure steps evaluated per experiment."""

    name: str
    steps: tuple[MeasureStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise MeasureError(f"study measure {self.name!r} has no steps")

    @classmethod
    def from_triples(
        cls,
        name: str,
        triples: Iterable[tuple[SubsetSelection, Predicate, ObservationFunction]],
    ) -> "StudyMeasure":
        """Build a measure from (subset, predicate, observation) triples."""
        steps = tuple(
            MeasureStep(predicate=predicate, observation=observation, subset=subset)
            for subset, predicate, observation in triples
        )
        return cls(name=name, steps=steps)

    def apply_to_view(self, view: TimelineView) -> float | None:
        """Evaluate the measure on one experiment's timeline view.

        Returns the final observation function value, or ``None`` if a
        subset selection removed the experiment.
        """
        previous: float | None = None
        for index, step in enumerate(self.steps):
            if index > 0 and not step.subset(previous):
                return None
            timeline = step.predicate.evaluate(view)
            previous = step.observation(timeline)
        return previous

    def apply(self, views: Sequence[TimelineView]) -> list[float | None]:
        """Evaluate the measure on every experiment of a study."""
        return [self.apply_to_view(view) for view in views]

    def final_values(self, views: Sequence[TimelineView]) -> list[float]:
        """Final observation values of the experiments that survive selection."""
        return [value for value in self.apply(views) if value is not None]
