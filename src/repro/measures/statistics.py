"""Statistical estimation of measures (Section 4.4).

The campaign measure is characterized through its first four moments.  From
a sample (or a weighted combination of per-study samples) this module
computes the non-central moments, the central moments of orders 2-4 (the
paper's Equations 4.1-4.3), the Pearson skewness and kurtosis coefficients
``beta1 = mu3^2 / mu2^3`` and ``beta2 = mu4 / mu2^2`` (Equations 4.4-4.5),
and percentile points.

The paper obtains percentiles from the Bowman-Shenton rational-fraction
approximation for the Pearson system; the 19-point coefficient table is not
reproduced in the paper, so this implementation substitutes the
Cornish-Fisher expansion, which consumes exactly the same inputs (the first
four moments) and serves the same purpose.  The substitution is recorded in
DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Mapping, Sequence

from repro.errors import StatisticsError

_NORMAL = NormalDist()


@dataclass(frozen=True)
class MomentSummary:
    """Moment-based characterization of one (possibly combined) sample."""

    count: int
    mean: float
    central_moment_2: float
    central_moment_3: float
    central_moment_4: float

    # -- derived quantities -------------------------------------------------------

    @property
    def variance(self) -> float:
        """The second central moment."""
        return self.central_moment_2

    @property
    def standard_deviation(self) -> float:
        """Square root of the variance."""
        return math.sqrt(max(self.central_moment_2, 0.0))

    @property
    def _degenerate_spread(self) -> bool:
        """Whether the spread is too small for shape coefficients.

        All four shape coefficients share this single guard so they stay
        mutually consistent (``beta1 == gamma1**2``, ``gamma2 == beta2 - 3``)
        even for nearly-degenerate samples, where ``mu2`` can be positive
        while its powers underflow to zero.  ``mu2**2`` is the first power
        to underflow, so guarding on it covers every denominator used.
        """
        return self.central_moment_2**2 <= 0.0

    @property
    def skewness_coefficient(self) -> float:
        """Pearson's ``beta1 = mu3^2 / mu2^3`` (0 for a degenerate sample).

        Computed as ``gamma1**2`` so the ``beta1 == gamma1**2`` identity
        holds exactly.
        """
        return self.skewness**2

    @property
    def kurtosis_coefficient(self) -> float:
        """Pearson's ``beta2 = mu4 / mu2^2`` (0 for a degenerate sample)."""
        if self._degenerate_spread:
            return 0.0
        return self.central_moment_4 / self.central_moment_2**2

    @property
    def skewness(self) -> float:
        """The standardized third moment ``gamma1 = mu3 / mu2^(3/2)``."""
        if self._degenerate_spread:
            return 0.0
        return self.central_moment_3 / self.central_moment_2**1.5

    @property
    def excess_kurtosis(self) -> float:
        """``gamma2 = mu4 / mu2^2 - 3`` (0 for a degenerate sample)."""
        if self._degenerate_spread:
            return 0.0
        return self.kurtosis_coefficient - 3.0

    def to_dict(self) -> dict:
        """The summary as a plain dictionary of primitives.

        Floats pass through untouched (JSON round-trips them bit-exactly),
        so equality of two summaries' dictionaries is equality of the
        summaries — which is how the store tests assert that measures
        computed from archived records are bit-identical to live ones.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "central_moment_2": self.central_moment_2,
            "central_moment_3": self.central_moment_3,
            "central_moment_4": self.central_moment_4,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MomentSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            count=data["count"],
            mean=data["mean"],
            central_moment_2=data["central_moment_2"],
            central_moment_3=data["central_moment_3"],
            central_moment_4=data["central_moment_4"],
        )

    def percentile(self, probability: float) -> float:
        """Percentile point via the Cornish-Fisher expansion.

        ``probability`` is the cumulative level (e.g. ``0.95``); the result
        is the value below which that fraction of the distribution is
        estimated to lie.
        """
        if not 0.0 < probability < 1.0:
            raise StatisticsError(f"percentile probability must be in (0, 1), got {probability}")
        if self.central_moment_2 <= 0:
            return self.mean
        z = _NORMAL.inv_cdf(probability)
        gamma1 = self.skewness
        gamma2 = self.excess_kurtosis
        w = (
            z
            + (z**2 - 1.0) * gamma1 / 6.0
            + (z**3 - 3.0 * z) * gamma2 / 24.0
            - (2.0 * z**3 - 5.0 * z) * gamma1**2 / 36.0
        )
        return self.mean + self.standard_deviation * w

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """A normal-approximation confidence interval for the mean."""
        if not 0.0 < level < 1.0:
            raise StatisticsError(f"confidence level must be in (0, 1), got {level}")
        if self.count <= 0:
            raise StatisticsError("cannot compute a confidence interval for an empty sample")
        z = _NORMAL.inv_cdf(0.5 + level / 2.0)
        half_width = z * self.standard_deviation / math.sqrt(self.count)
        return self.mean - half_width, self.mean + half_width


def raw_moments(values: Sequence[float]) -> tuple[float, float, float, float]:
    """The first four non-central moments of a sample."""
    if not values:
        raise StatisticsError("cannot compute moments of an empty sample")
    n = float(len(values))
    return tuple(sum(value**k for value in values) / n for k in (1, 2, 3, 4))  # type: ignore[return-value]


def central_from_raw(
    m1: float, m2: float, m3: float, m4: float
) -> tuple[float, float, float]:
    """Central moments of orders 2-4 from non-central moments (Eqns. 4.1-4.3)."""
    mu2 = m2 - m1**2
    mu3 = m3 - 3.0 * m2 * m1 + 2.0 * m1**3
    mu4 = m4 - 4.0 * m3 * m1 + 6.0 * m2 * m1**2 - 3.0 * m1**4
    return mu2, mu3, mu4


def summarize_sample(values: Sequence[float]) -> MomentSummary:
    """Summarize one sample of final observation function values."""
    m1, m2, m3, m4 = raw_moments(values)
    mu2, mu3, mu4 = central_from_raw(m1, m2, m3, m4)
    return MomentSummary(
        count=len(values),
        mean=m1,
        central_moment_2=max(mu2, 0.0),
        central_moment_3=mu3,
        central_moment_4=max(mu4, 0.0),
    )


def combine_stratified(
    summaries: Mapping[str, MomentSummary], weights: Mapping[str, float]
) -> MomentSummary:
    """Combine per-study summaries with normalized weights (Section 4.4.2).

    The mean is the weighted sum of per-study means, and each central moment
    of order 2-4 is the weighted sum of the per-study central moments, under
    the paper's assumption that the per-study random variables (and their
    powers) are independent across studies.
    """
    if not summaries:
        raise StatisticsError("cannot combine an empty set of studies")
    missing = set(summaries) - set(weights)
    if missing:
        raise StatisticsError(f"missing weights for studies: {sorted(missing)}")
    total_weight = sum(weights[name] for name in summaries)
    if total_weight <= 0:
        raise StatisticsError("stratified weights must sum to a positive value")
    normalized = {name: weights[name] / total_weight for name in summaries}
    mean = sum(normalized[name] * summary.mean for name, summary in summaries.items())
    mu2 = sum(normalized[name] * summary.central_moment_2 for name, summary in summaries.items())
    mu3 = sum(normalized[name] * summary.central_moment_3 for name, summary in summaries.items())
    mu4 = sum(normalized[name] * summary.central_moment_4 for name, summary in summaries.items())
    count = sum(summary.count for summary in summaries.values())
    return MomentSummary(
        count=count,
        mean=mean,
        central_moment_2=mu2,
        central_moment_3=mu3,
        central_moment_4=mu4,
    )
