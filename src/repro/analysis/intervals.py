"""Closed-interval sets on the real line.

Both the analysis phase (certainly/possibly-true regions of fault
expressions) and the measure layer (predicate value timelines) need basic
algebra over unions of closed intervals: union, intersection, complement
within a window, containment, and total length.  This module provides a
small immutable :class:`IntervalSet` with exactly those operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import AnalysisError


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` (possibly a single point)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise AnalysisError(f"interval end {self.end} precedes start {self.start}")

    @property
    def length(self) -> float:
        """The interval's length (zero for a point)."""
        return self.end - self.start

    def contains(self, time: float) -> bool:
        """Whether ``time`` lies inside the closed interval."""
        return self.start <= time <= self.end

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` lies entirely inside this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least a point."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "Interval") -> "Interval | None":
        """The intersection of two intervals, or ``None`` if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return None
        return Interval(start, end)

    def clip(self, lower: float, upper: float) -> "Interval | None":
        """This interval restricted to ``[lower, upper]`` (``None`` if empty)."""
        return self.intersect(Interval(lower, upper))


class IntervalSet:
    """An immutable, normalized union of disjoint closed intervals.

    The representation invariant — intervals sorted by start, pairwise
    disjoint and non-touching — is established once at construction, which
    lets :meth:`union`, :meth:`intersection`, and :meth:`complement` run as
    linear merges over the sorted operands instead of re-sorting or
    comparing all interval pairs.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: tuple[Interval, ...] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        items = sorted(intervals, key=lambda interval: (interval.start, interval.end))
        return IntervalSet._coalesce(items)

    @staticmethod
    def _coalesce(items: list[Interval]) -> tuple[Interval, ...]:
        """Merge overlapping/touching intervals of an already-sorted list."""
        merged: list[Interval] = []
        for interval in items:
            if merged and interval.start <= merged[-1].end:
                previous = merged.pop()
                merged.append(Interval(previous.start, max(previous.end, interval.end)))
            else:
                merged.append(interval)
        return tuple(merged)

    @classmethod
    def _from_disjoint(cls, intervals: tuple[Interval, ...]) -> "IntervalSet":
        """Wrap intervals already satisfying the representation invariant."""
        result = object.__new__(cls)
        result._intervals = intervals
        return result

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return cls(())

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "IntervalSet":
        """Build from ``(start, end)`` pairs."""
        return cls(Interval(start, end) for start, end in pairs)

    @classmethod
    def point(cls, time: float) -> "IntervalSet":
        """A single point."""
        return cls((Interval(time, time),))

    # -- accessors ----------------------------------------------------------------

    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The disjoint intervals in increasing order."""
        return self._intervals

    def pairs(self) -> tuple[tuple[float, float], ...]:
        """The intervals as ``(start, end)`` pairs."""
        return tuple((interval.start, interval.end) for interval in self._intervals)

    @property
    def is_empty(self) -> bool:
        """Whether the set contains no intervals."""
        return not self._intervals

    def total_length(self) -> float:
        """Sum of the lengths of all intervals."""
        return sum(interval.length for interval in self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    # -- queries --------------------------------------------------------------------

    def contains(self, time: float) -> bool:
        """Whether ``time`` lies inside any interval of the set."""
        return any(interval.contains(time) for interval in self._intervals)

    def contains_interval(self, start: float, end: float) -> bool:
        """Whether ``[start, end]`` lies entirely inside a single interval."""
        probe = Interval(start, end)
        return any(interval.contains_interval(probe) for interval in self._intervals)

    # -- algebra -----------------------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union: a linear merge of the two sorted interval runs."""
        if not self._intervals:
            return other
        if not other._intervals:
            return self
        left, right = self._intervals, other._intervals
        merged: list[Interval] = []
        i = j = 0
        while i < len(left) and j < len(right):
            if (left[i].start, left[i].end) <= (right[j].start, right[j].end):
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return IntervalSet._from_disjoint(self._coalesce(merged))

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection: a two-pointer sweep over the sorted operands."""
        left, right = self._intervals, other._intervals
        result: list[Interval] = []
        i = j = 0
        while i < len(left) and j < len(right):
            start = max(left[i].start, right[j].start)
            end = min(left[i].end, right[j].end)
            if start <= end:
                result.append(Interval(start, end))
            # Advance whichever interval ends first; ties advance both.
            if left[i].end < right[j].end:
                i += 1
            elif right[j].end < left[i].end:
                j += 1
            else:
                i += 1
                j += 1
        # Pieces inherit the operands' ordering and disjointness, so no
        # normalization pass is needed.
        return IntervalSet._from_disjoint(tuple(result))

    def complement(self, lower: float, upper: float) -> "IntervalSet":
        """The complement of the set within the window ``[lower, upper]``."""
        if upper < lower:
            raise AnalysisError("complement window upper bound precedes lower bound")
        gaps: list[Interval] = []
        cursor = lower
        for interval in self._intervals:
            if interval.end < lower:
                continue
            if interval.start > upper:
                break
            if interval.start > cursor:
                gaps.append(Interval(cursor, min(interval.start, upper)))
            cursor = max(cursor, interval.end)
        if cursor < upper:
            gaps.append(Interval(cursor, upper))
        # Gaps around a point interval of the set touch at that point;
        # coalesce keeps the representation invariant.
        return IntervalSet._from_disjoint(self._coalesce(gaps))

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self - other`` (within the extent of ``self``)."""
        if self.is_empty:
            return IntervalSet.empty()
        lower = self._intervals[0].start
        upper = self._intervals[-1].end
        return self.intersection(other.complement(lower, upper))

    def clip(self, lower: float, upper: float) -> "IntervalSet":
        """The set restricted to the window ``[lower, upper]``."""
        return self.intersection(IntervalSet((Interval(lower, upper),)))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = ", ".join(f"[{interval.start:g}, {interval.end:g}]" for interval in self._intervals)
        return f"IntervalSet({parts})"
