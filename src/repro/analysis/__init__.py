"""The offline analysis phase (Section 2.5).

After the runtime phase, the analysis phase:

1. estimates bounds on the offset and drift of every machine's clock
   relative to a reference machine from the synchronization messages
   exchanged before and after the experiment
   (:mod:`repro.analysis.clock_sync`);
2. projects all local timelines onto a single global timeline of
   ``[lower, upper]`` reference-clock intervals
   (:mod:`repro.analysis.global_timeline`);
3. conservatively checks that every fault was injected in the intended
   global state and discards experiments containing incorrect injections
   (:mod:`repro.analysis.verification`).
"""

from repro.analysis.clock_sync import (
    ClockBounds,
    SyncMessageRecord,
    estimate_all_bounds,
    estimate_clock_bounds,
    estimate_clock_bounds_lp,
    select_reference_host,
)
from repro.analysis.global_timeline import (
    GlobalEventKind,
    GlobalTimeline,
    GlobalTimelineEntry,
    StatePeriod,
    build_global_timeline,
)
from repro.analysis.intervals import Interval, IntervalSet
from repro.analysis.verification import (
    ExperimentVerification,
    InjectionVerdict,
    filter_experiments,
    verify_experiment,
)

__all__ = [
    "ClockBounds",
    "ExperimentVerification",
    "GlobalEventKind",
    "GlobalTimeline",
    "GlobalTimelineEntry",
    "InjectionVerdict",
    "Interval",
    "IntervalSet",
    "StatePeriod",
    "SyncMessageRecord",
    "build_global_timeline",
    "estimate_all_bounds",
    "estimate_clock_bounds",
    "estimate_clock_bounds_lp",
    "filter_experiments",
    "select_reference_host",
    "verify_experiment",
]
