"""Offline clock synchronization (Section 2.5).

The analysis phase assumes the processor clocks drift linearly: for a
machine ``i`` and the reference machine ``r``::

    C_i(t) = alpha_ri + beta_ri * C_r(t)

Synchronization messages exchanged between the reference machine and every
other machine before and after each experiment give one-sided constraints
on ``(alpha, beta)``:

* a message ``r -> i`` sent at reference-clock ``s`` and received at
  machine-clock ``c`` implies ``alpha + beta * s <= c`` (the message cannot
  arrive before it was sent);
* a message ``i -> r`` sent at machine-clock ``c`` and received at
  reference-clock ``s`` implies ``alpha + beta * s >= c``.

The feasible region of these half-planes is a convex polygon.  Rather than
exact values, the algorithm reports the extreme values ``[alpha-, alpha+]``
and ``[beta-, beta+]`` over that polygon — intervals that are *guaranteed*
to contain the true offset and drift, unlike confidence intervals.

The solver exploits the special structure of the constraint set instead of
running linear programs.  Every constraint bounds ``alpha`` by a line in
``beta``::

    r -> i messages:   alpha <= receive - send * beta      (upper lines)
    i -> r messages:   alpha >= send - receive * beta      (lower lines)

so the feasible region is exactly ``{(alpha, beta) : L(beta) <= alpha <=
U(beta), beta >= beta_floor}`` where ``U`` is the *minimum* of the upper
lines (a concave piecewise-linear envelope) and ``L`` the *maximum* of the
lower lines (a convex one).  Both envelopes are computed with the classic
monotone-hull sweep in O(n log n) after sorting by slope; the envelopes'
breakpoints are the polygon's vertices, the betas where ``L`` and ``U``
cross delimit ``[beta-, beta+]``, and the alpha extremes are envelope
values at vertices — everything the four linear programs and the O(n^3)
pairwise vertex enumeration used to produce, in a single exact pass.

The historical :mod:`scipy` path is kept as
:func:`estimate_clock_bounds_lp` purely as a cross-check for the test
suite; the hot path no longer imports scipy at all.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ClockSynchronizationError

#: Positivity floor on the drift ``beta``, identical to the bound the
#: linear-programming path places on it: a clock that does not advance
#: (``beta <= 0``) can never be synchronized.
_BETA_FLOOR = 1e-9

#: Relative tolerance for merging near-duplicate polygon vertices produced
#: by three or more (nearly) concurrent constraint lines.
_VERTEX_TOLERANCE = 1e-9


@dataclass(frozen=True)
class SyncMessageRecord:
    """One synchronization message between two hosts.

    ``send_time`` is the sender's local clock at transmission and
    ``receive_time`` the receiver's local clock at reception.
    """

    sender: str
    receiver: str
    send_time: float
    receive_time: float


@dataclass(frozen=True)
class ClockBounds:
    """Guaranteed bounds on the offset and drift of one machine's clock.

    The true ``(alpha, beta)`` relating the machine's clock to the
    reference clock always lies inside ``[alpha_lower, alpha_upper] x
    [beta_lower, beta_upper]``.

    ``vertices`` optionally carries the corners of the feasible convex
    polygon itself.  The offset and drift errors allowed by the constraints
    are strongly anti-correlated, so projecting event times through the
    polygon's vertices gives much tighter — still guaranteed — global-time
    bounds than the rectangular-corner formula; when no vertices are stored
    the rectangle corners are used, which is exactly the paper's
    Equation 2.2.
    """

    alpha_lower: float
    alpha_upper: float
    beta_lower: float
    beta_upper: float
    vertices: tuple[tuple[float, float], ...] = ()

    @classmethod
    def identity(cls) -> "ClockBounds":
        """The bounds of the reference machine relative to itself."""
        return cls(0.0, 0.0, 1.0, 1.0)

    @property
    def alpha_width(self) -> float:
        """Width of the offset interval, in seconds."""
        return self.alpha_upper - self.alpha_lower

    @property
    def beta_width(self) -> float:
        """Width of the drift interval (dimensionless)."""
        return self.beta_upper - self.beta_lower

    @property
    def alpha_midpoint(self) -> float:
        """Midpoint estimate of the offset."""
        return 0.5 * (self.alpha_lower + self.alpha_upper)

    @property
    def beta_midpoint(self) -> float:
        """Midpoint estimate of the drift."""
        return 0.5 * (self.beta_lower + self.beta_upper)

    def contains(self, alpha: float, beta: float) -> bool:
        """Whether a candidate ``(alpha, beta)`` lies inside the bounds."""
        return (
            self.alpha_lower <= alpha <= self.alpha_upper
            and self.beta_lower <= beta <= self.beta_upper
        )

    @cached_property
    def projection_corners(self) -> np.ndarray:
        """The ``(alpha, beta)`` corner array used for time projection.

        The polygon vertices when available, the four rectangle corners
        (the paper's Equation 2.2) otherwise.  Cached so that projecting a
        whole timeline touches the array-building cost once per host.
        """
        if self.vertices:
            corners: Sequence[tuple[float, float]] = self.vertices
        else:
            corners = tuple(
                (alpha, beta)
                for alpha in (self.alpha_lower, self.alpha_upper)
                for beta in (self.beta_lower, self.beta_upper)
            )
        return np.asarray(corners, dtype=float)

    def project_to_reference(self, local_time: float) -> tuple[float, float]:
        """Project a local-clock reading onto the reference clock.

        Returns guaranteed ``(lower, upper)`` bounds on the reference-clock
        time of the event.  ``(local_time - alpha) / beta`` is a
        linear-fractional function of ``(alpha, beta)``, so over a convex
        polygon its extremes occur at vertices; when the feasible-polygon
        vertices are available they are used, otherwise the four corners of
        the bounding rectangle (the paper's Equation 2.2) are evaluated.
        """
        corners = self.projection_corners
        candidates = (local_time - corners[:, 0]) / corners[:, 1]
        return float(candidates.min()), float(candidates.max())


def select_reference_host(clock_rates: Mapping[str, float]) -> str:
    """Pick the reference machine: the one with the fastest clock.

    The paper uses the fastest machine as the reference because mapping a
    fast clock onto a slower one would lose resolution (Section 5.7).
    """
    if not clock_rates:
        raise ClockSynchronizationError("no hosts to choose a reference from")
    return max(sorted(clock_rates), key=lambda host: clock_rates[host])


# ---------------------------------------------------------------------------
# Exact geometric solver
# ---------------------------------------------------------------------------
#
# A "line" is an (slope, intercept) pair describing ``alpha = slope * beta
# + intercept``.  Upper lines bound alpha from above, lower lines from
# below.


def _upper_line(send_time: float, receive_time: float) -> tuple[float, float]:
    """Constraint line of a reference -> machine message.

    ``alpha + beta * send <= receive``, i.e. ``alpha <= receive - send * beta``.
    """
    return (-send_time, receive_time)


def _lower_line(send_time: float, receive_time: float) -> tuple[float, float]:
    """Constraint line of a machine -> reference message.

    ``alpha + beta * receive >= send``, i.e. ``alpha >= send - receive * beta``.
    """
    return (-receive_time, send_time)


def _lines_for_message(
    message: SyncMessageRecord, machine: str, reference: str
) -> tuple[str, tuple[float, float]] | None:
    """Classify one message into an upper or lower constraint line."""
    if message.sender == reference and message.receiver == machine:
        return "upper", _upper_line(message.send_time, message.receive_time)
    if message.sender == machine and message.receiver == reference:
        return "lower", _lower_line(message.send_time, message.receive_time)
    return None


def _collect_lines(
    messages: Sequence[SyncMessageRecord], machine: str, reference: str
) -> tuple[list[tuple[float, float]], list[tuple[float, float]]]:
    uppers: list[tuple[float, float]] = []
    lowers: list[tuple[float, float]] = []
    for message in messages:
        classified = _lines_for_message(message, machine, reference)
        if classified is None:
            continue
        side, line = classified
        (uppers if side == "upper" else lowers).append(line)
    if not uppers and not lowers:
        raise ClockSynchronizationError(
            f"no synchronization messages between {machine!r} and reference {reference!r}"
        )
    return uppers, lowers


def _min_envelope(
    lines: Sequence[tuple[float, float]],
) -> tuple[list[tuple[float, float]], list[float]]:
    """The lower (minimum) envelope of a family of lines.

    Returns the active lines in order of increasing ``beta`` together with
    the breakpoints where activity changes hands.  The minimum of lines is
    concave, so the active slope strictly decreases along ``beta``; the
    standard monotone-hull sweep over the slope-sorted lines is O(n log n).
    """
    ordered = sorted(set(lines), key=lambda line: (-line[0], line[1]))
    filtered: list[tuple[float, float]] = []
    for slope, intercept in ordered:
        if filtered and filtered[-1][0] == slope:
            continue  # same slope, larger intercept: never minimal
        filtered.append((slope, intercept))
    hull: list[tuple[float, float]] = []
    cuts: list[float] = []
    for line in filtered:
        while True:
            if not hull:
                hull.append(line)
                break
            top = hull[-1]
            crossing = (line[1] - top[1]) / (top[0] - line[0])
            if cuts and crossing <= cuts[-1]:
                hull.pop()
                cuts.pop()
                continue
            hull.append(line)
            cuts.append(crossing)
            break
    return hull, cuts


def _max_envelope(
    lines: Sequence[tuple[float, float]],
) -> tuple[list[tuple[float, float]], list[float]]:
    """The upper (maximum) envelope of a family of lines (via negation)."""
    hull, cuts = _min_envelope([(-slope, -intercept) for slope, intercept in lines])
    return [(-slope, -intercept) for slope, intercept in hull], cuts


def _envelope_value(
    hull: Sequence[tuple[float, float]], cuts: Sequence[float], beta: float
) -> float:
    """Evaluate an envelope at ``beta`` in O(log n) via its active line.

    ``cuts[k]`` is where ``hull[k + 1]`` takes over from ``hull[k]``, so the
    active line's index is the count of cuts at or before ``beta``.
    """
    slope, intercept = hull[bisect_right(cuts, beta)]
    return slope * beta + intercept


def _dedupe_vertices(
    points: Iterable[tuple[float, float]],
    tolerance: float = _VERTEX_TOLERANCE,
) -> tuple[tuple[float, float], ...]:
    """Merge near-duplicate polygon corners, canonically ordered.

    Three or more nearly concurrent constraint lines intersect in a cloud
    of points that differ only by floating-point noise; keeping them all
    bloats ``ClockBounds.vertices`` and the per-event candidate evaluation
    in ``project_to_reference``.  Points whose coordinates agree within a
    relative tolerance are collapsed onto the first representative.
    """
    ordered = sorted(points, key=lambda point: (point[1], point[0]))
    kept: list[tuple[float, float]] = []
    for alpha, beta in ordered:
        duplicate = False
        for kept_alpha, kept_beta in kept:
            alpha_scale = max(1.0, abs(alpha), abs(kept_alpha))
            beta_scale = max(1.0, abs(beta), abs(kept_beta))
            if (
                abs(alpha - kept_alpha) <= tolerance * alpha_scale
                and abs(beta - kept_beta) <= tolerance * beta_scale
            ):
                duplicate = True
                break
        if not duplicate:
            kept.append((alpha, beta))
    return tuple(kept)


def _solve_lines(
    uppers: Sequence[tuple[float, float]],
    lowers: Sequence[tuple[float, float]],
    machine: str,
) -> ClockBounds:
    """Exact bounds and polygon vertices from upper/lower constraint lines."""
    if not uppers or not lowers:
        raise ClockSynchronizationError(
            f"clock bounds for {machine!r} are unbounded; synchronization messages must "
            "flow in both directions before and after the experiment"
        )

    upper_hull, upper_cuts = _min_envelope(uppers)
    lower_hull, lower_cuts = _max_envelope(lowers)

    def upper_at(beta: float) -> float:
        return _envelope_value(upper_hull, upper_cuts, beta)

    def lower_at(beta: float) -> float:
        return _envelope_value(lower_hull, lower_cuts, beta)

    # Candidate betas: the positivity floor plus every envelope breakpoint
    # past it.  The gap function D = U - L is linear between consecutive
    # candidates and concave overall, so its sign pattern along beta is
    # (neg)* (non-neg)* (neg)* and evaluating at the candidates finds the
    # feasible interval exactly.
    candidates = sorted(
        {_BETA_FLOOR}
        | {cut for cut in upper_cuts if cut > _BETA_FLOOR}
        | {cut for cut in lower_cuts if cut > _BETA_FLOOR}
    )
    gaps = [upper_at(beta) - lower_at(beta) for beta in candidates]
    # Beyond the last candidate both envelopes follow their final line, so
    # the gap's tail slope decides boundedness at beta -> infinity.
    tail_slope = upper_hull[-1][0] - lower_hull[-1][0]

    unbounded = ClockSynchronizationError(
        f"clock bounds for {machine!r} are unbounded; synchronization messages must "
        "flow in both directions before and after the experiment"
    )
    feasible = [index for index, gap in enumerate(gaps) if gap >= 0.0]
    if not feasible:
        if tail_slope > 0.0:
            raise unbounded
        raise ClockSynchronizationError(
            f"clock-bound estimation for {machine!r} failed: "
            "the synchronization constraints are mutually inconsistent (infeasible)"
        )

    first, last = feasible[0], feasible[-1]
    if first == 0:
        beta_lower = candidates[0]
    else:
        # Crossing from infeasible to feasible inside a linear segment.
        left, right = candidates[first - 1], candidates[first]
        gap_left, gap_right = gaps[first - 1], gaps[first]
        beta_lower = left + (right - left) * (-gap_left) / (gap_right - gap_left)
    if last == len(candidates) - 1:
        if tail_slope >= 0.0:
            raise unbounded
        beta_upper = candidates[last] + gaps[last] / (-tail_slope)
    else:
        left, right = candidates[last], candidates[last + 1]
        gap_left, gap_right = gaps[last], gaps[last + 1]
        beta_upper = left + (right - left) * gap_left / (gap_left - gap_right)

    # Alpha extremes: over the feasible beta interval the largest alpha is
    # the maximum of the concave envelope U (attained at an envelope
    # breakpoint or an interval endpoint) and the smallest is the minimum
    # of the convex envelope L.
    upper_values = [upper_at(beta_lower), upper_at(beta_upper)]
    upper_values += [upper_at(cut) for cut in upper_cuts if beta_lower < cut < beta_upper]
    lower_values = [lower_at(beta_lower), lower_at(beta_upper)]
    lower_values += [lower_at(cut) for cut in lower_cuts if beta_lower < cut < beta_upper]
    alpha_upper = max(upper_values)
    alpha_lower = min(lower_values)

    if alpha_upper < alpha_lower or beta_upper < beta_lower:
        raise ClockSynchronizationError(
            f"inconsistent clock bounds for {machine!r}: "
            f"alpha [{alpha_lower}, {alpha_upper}], beta [{beta_lower}, {beta_upper}]"
        )

    # Polygon vertices: the boundary points at the interval ends (where the
    # envelopes cross — or, when the positivity floor clips the polygon,
    # both envelope values) plus every envelope breakpoint strictly inside.
    corners: list[tuple[float, float]] = [
        (upper_at(beta_lower), beta_lower),
        (lower_at(beta_lower), beta_lower),
        (upper_at(beta_upper), beta_upper),
        (lower_at(beta_upper), beta_upper),
    ]
    corners += [(upper_at(cut), cut) for cut in upper_cuts if beta_lower < cut < beta_upper]
    corners += [(lower_at(cut), cut) for cut in lower_cuts if beta_lower < cut < beta_upper]

    return ClockBounds(
        alpha_lower=alpha_lower,
        alpha_upper=alpha_upper,
        beta_lower=beta_lower,
        beta_upper=beta_upper,
        vertices=_dedupe_vertices(corners),
    )


def estimate_clock_bounds(
    messages: Iterable[SyncMessageRecord], machine: str, reference: str
) -> ClockBounds:
    """Estimate offset/drift bounds for ``machine`` relative to ``reference``."""
    if machine == reference:
        return ClockBounds.identity()
    uppers, lowers = _collect_lines(list(messages), machine, reference)
    return _solve_lines(uppers, lowers, machine)


def estimate_all_bounds(
    messages: Iterable[SyncMessageRecord],
    machines: Iterable[str],
    reference: str,
) -> dict[str, ClockBounds]:
    """Estimate bounds for every machine in ``machines`` (reference included).

    The message list is bucketed by machine in a single pass, so a campaign
    experiment with ``m`` machines scans its synchronization messages once
    instead of ``m`` times.
    """
    machine_list = list(machines)
    buckets: dict[str, tuple[list[tuple[float, float]], list[tuple[float, float]]]] = {
        machine: ([], []) for machine in machine_list if machine != reference
    }
    for message in messages:
        if message.sender == reference:
            bucket = buckets.get(message.receiver)
            if bucket is not None:
                bucket[0].append(_upper_line(message.send_time, message.receive_time))
        elif message.receiver == reference:
            bucket = buckets.get(message.sender)
            if bucket is not None:
                bucket[1].append(_lower_line(message.send_time, message.receive_time))
    bounds: dict[str, ClockBounds] = {}
    for machine in machine_list:
        if machine == reference:
            bounds[machine] = ClockBounds.identity()
            continue
        uppers, lowers = buckets[machine]
        if not uppers and not lowers:
            raise ClockSynchronizationError(
                f"no synchronization messages between {machine!r} and reference {reference!r}"
            )
        bounds[machine] = _solve_lines(uppers, lowers, machine)
    return bounds


# ---------------------------------------------------------------------------
# Linear-programming cross-check (test-only path)
# ---------------------------------------------------------------------------
#
# The original implementation solved four linear programs per machine and
# enumerated polygon vertices from all constraint pairs.  It is retained so
# the test suite can cross-check the geometric solver against an
# independent method; scipy is imported lazily so the hot path above never
# needs it.


def _constraints_for(
    messages: Sequence[SyncMessageRecord], machine: str, reference: str
) -> tuple[np.ndarray, np.ndarray]:
    rows: list[list[float]] = []
    bounds: list[float] = []
    for message in messages:
        if message.sender == reference and message.receiver == machine:
            # alpha + beta * send <= receive
            rows.append([1.0, message.send_time])
            bounds.append(message.receive_time)
        elif message.sender == machine and message.receiver == reference:
            # alpha + beta * receive >= send  <=>  -alpha - beta * receive <= -send
            rows.append([-1.0, -message.receive_time])
            bounds.append(-message.send_time)
    if not rows:
        raise ClockSynchronizationError(
            f"no synchronization messages between {machine!r} and reference {reference!r}"
        )
    return np.asarray(rows, dtype=float), np.asarray(bounds, dtype=float)


def _optimize(
    objective: Sequence[float],
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    machine: str,
) -> float:
    from scipy.optimize import linprog

    result = linprog(
        c=list(objective),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(None, None), (_BETA_FLOOR, None)],
        method="highs",
        # Tighten HiGHS to its floor (1e-10; the ~1e-7 defaults lose ~1e-8
        # of optimum on near-parallel constraints): this path exists to
        # cross-check the exact geometric solver at 1e-9 precision.
        options={
            "primal_feasibility_tolerance": 1e-10,
            "dual_feasibility_tolerance": 1e-10,
        },
    )
    if result.status == 3:
        raise ClockSynchronizationError(
            f"clock bounds for {machine!r} are unbounded; synchronization messages must "
            "flow in both directions before and after the experiment"
        )
    if not result.success:
        raise ClockSynchronizationError(
            f"clock-bound estimation for {machine!r} failed: {result.message}"
        )
    return float(result.fun)


def _feasible_vertices(a_ub: np.ndarray, b_ub: np.ndarray) -> tuple[tuple[float, float], ...]:
    """Vertices of the feasible polygon in the (alpha, beta) plane.

    The polygon is ``{x : A x <= b}`` intersected with the drift
    positivity floor ``beta >= _BETA_FLOOR`` (the same bound the linear
    programs place on beta, appended here as an extra constraint row so
    floor-clipped polygons get their floor corners too).  Every pair of
    constraint boundary lines is intersected and the points satisfying
    all constraints (within a small relative tolerance) are kept;
    near-duplicate corners produced by three or more nearly concurrent
    lines are merged.  The polygon is known to be bounded because the
    caller has already run the four bounding linear programs successfully.
    """
    a_ub = np.vstack([a_ub, [0.0, -1.0]])
    b_ub = np.append(b_ub, -_BETA_FLOOR)
    count = a_ub.shape[0]
    vertices: list[tuple[float, float]] = []
    tolerance = 1e-9
    scale = np.maximum(1.0, np.abs(b_ub))
    for i in range(count):
        for j in range(i + 1, count):
            matrix = np.array([a_ub[i], a_ub[j]])
            rhs = np.array([b_ub[i], b_ub[j]])
            determinant = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
            if abs(determinant) < 1e-15:
                continue
            point = np.linalg.solve(matrix, rhs)
            if (
                np.all(a_ub @ point <= b_ub + tolerance * scale)
                and point[1] >= _BETA_FLOOR * (1.0 - 1e-6)
            ):
                vertices.append((float(point[0]), float(point[1])))
    return _dedupe_vertices(vertices)


def estimate_clock_bounds_lp(
    messages: Iterable[SyncMessageRecord], machine: str, reference: str
) -> ClockBounds:
    """The historical scipy linear-programming estimator (cross-check only).

    Produces the same :class:`ClockBounds` as :func:`estimate_clock_bounds`
    (extremes agree to LP solver precision, vertex sets are identical after
    dedup) by solving four linear programs and enumerating all constraint
    pairs.  Kept exclusively so tests and benchmarks can compare the exact
    geometric solver against an independent implementation.
    """
    if machine == reference:
        return ClockBounds.identity()
    message_list = list(messages)
    a_ub, b_ub = _constraints_for(message_list, machine, reference)
    alpha_lower = _optimize([1.0, 0.0], a_ub, b_ub, machine)
    alpha_upper = -_optimize([-1.0, 0.0], a_ub, b_ub, machine)
    beta_lower = _optimize([0.0, 1.0], a_ub, b_ub, machine)
    beta_upper = -_optimize([0.0, -1.0], a_ub, b_ub, machine)
    if alpha_upper < alpha_lower or beta_upper < beta_lower:
        raise ClockSynchronizationError(
            f"inconsistent clock bounds for {machine!r}: "
            f"alpha [{alpha_lower}, {alpha_upper}], beta [{beta_lower}, {beta_upper}]"
        )
    return ClockBounds(
        alpha_lower=alpha_lower,
        alpha_upper=alpha_upper,
        beta_lower=beta_lower,
        beta_upper=beta_upper,
        vertices=_feasible_vertices(a_ub, b_ub),
    )
