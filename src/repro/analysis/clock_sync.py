"""Offline clock synchronization (Section 2.5).

The analysis phase assumes the processor clocks drift linearly: for a
machine ``i`` and the reference machine ``r``::

    C_i(t) = alpha_ri + beta_ri * C_r(t)

Synchronization messages exchanged between the reference machine and every
other machine before and after each experiment give one-sided constraints
on ``(alpha, beta)``:

* a message ``r -> i`` sent at reference-clock ``s`` and received at
  machine-clock ``c`` implies ``alpha + beta * s <= c`` (the message cannot
  arrive before it was sent);
* a message ``i -> r`` sent at machine-clock ``c`` and received at
  reference-clock ``s`` implies ``alpha + beta * s >= c``.

The feasible region of these half-planes is a convex polygon.  Rather than
exact values, the algorithm reports the extreme values ``[alpha-, alpha+]``
and ``[beta-, beta+]`` over that polygon — intervals that are *guaranteed*
to contain the true offset and drift, unlike confidence intervals.  The
extremes are found with four small linear programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.errors import ClockSynchronizationError


@dataclass(frozen=True)
class SyncMessageRecord:
    """One synchronization message between two hosts.

    ``send_time`` is the sender's local clock at transmission and
    ``receive_time`` the receiver's local clock at reception.
    """

    sender: str
    receiver: str
    send_time: float
    receive_time: float


@dataclass(frozen=True)
class ClockBounds:
    """Guaranteed bounds on the offset and drift of one machine's clock.

    The true ``(alpha, beta)`` relating the machine's clock to the
    reference clock always lies inside ``[alpha_lower, alpha_upper] x
    [beta_lower, beta_upper]``.

    ``vertices`` optionally carries the corners of the feasible convex
    polygon itself.  The offset and drift errors allowed by the constraints
    are strongly anti-correlated, so projecting event times through the
    polygon's vertices gives much tighter — still guaranteed — global-time
    bounds than the rectangular-corner formula; when no vertices are stored
    the rectangle corners are used, which is exactly the paper's
    Equation 2.2.
    """

    alpha_lower: float
    alpha_upper: float
    beta_lower: float
    beta_upper: float
    vertices: tuple[tuple[float, float], ...] = ()

    @classmethod
    def identity(cls) -> "ClockBounds":
        """The bounds of the reference machine relative to itself."""
        return cls(0.0, 0.0, 1.0, 1.0)

    @property
    def alpha_width(self) -> float:
        """Width of the offset interval, in seconds."""
        return self.alpha_upper - self.alpha_lower

    @property
    def beta_width(self) -> float:
        """Width of the drift interval (dimensionless)."""
        return self.beta_upper - self.beta_lower

    @property
    def alpha_midpoint(self) -> float:
        """Midpoint estimate of the offset."""
        return 0.5 * (self.alpha_lower + self.alpha_upper)

    @property
    def beta_midpoint(self) -> float:
        """Midpoint estimate of the drift."""
        return 0.5 * (self.beta_lower + self.beta_upper)

    def contains(self, alpha: float, beta: float) -> bool:
        """Whether a candidate ``(alpha, beta)`` lies inside the bounds."""
        return (
            self.alpha_lower <= alpha <= self.alpha_upper
            and self.beta_lower <= beta <= self.beta_upper
        )

    def project_to_reference(self, local_time: float) -> tuple[float, float]:
        """Project a local-clock reading onto the reference clock.

        Returns guaranteed ``(lower, upper)`` bounds on the reference-clock
        time of the event.  ``(local_time - alpha) / beta`` is a
        linear-fractional function of ``(alpha, beta)``, so over a convex
        polygon its extremes occur at vertices; when the feasible-polygon
        vertices are available they are used, otherwise the four corners of
        the bounding rectangle (the paper's Equation 2.2) are evaluated.
        """
        if self.vertices:
            corners = self.vertices
        else:
            corners = tuple(
                (alpha, beta)
                for alpha in (self.alpha_lower, self.alpha_upper)
                for beta in (self.beta_lower, self.beta_upper)
            )
        candidates = [(local_time - alpha) / beta for alpha, beta in corners]
        return min(candidates), max(candidates)


def select_reference_host(clock_rates: Mapping[str, float]) -> str:
    """Pick the reference machine: the one with the fastest clock.

    The paper uses the fastest machine as the reference because mapping a
    fast clock onto a slower one would lose resolution (Section 5.7).
    """
    if not clock_rates:
        raise ClockSynchronizationError("no hosts to choose a reference from")
    return max(sorted(clock_rates), key=lambda host: clock_rates[host])


def _constraints_for(
    messages: Sequence[SyncMessageRecord], machine: str, reference: str
) -> tuple[np.ndarray, np.ndarray]:
    rows: list[list[float]] = []
    bounds: list[float] = []
    for message in messages:
        if message.sender == reference and message.receiver == machine:
            # alpha + beta * send <= receive
            rows.append([1.0, message.send_time])
            bounds.append(message.receive_time)
        elif message.sender == machine and message.receiver == reference:
            # alpha + beta * receive >= send  <=>  -alpha - beta * receive <= -send
            rows.append([-1.0, -message.receive_time])
            bounds.append(-message.send_time)
    if not rows:
        raise ClockSynchronizationError(
            f"no synchronization messages between {machine!r} and reference {reference!r}"
        )
    return np.asarray(rows, dtype=float), np.asarray(bounds, dtype=float)


def _optimize(
    objective: Sequence[float],
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    machine: str,
) -> float:
    result = linprog(
        c=list(objective),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(None, None), (1e-9, None)],
        method="highs",
    )
    if result.status == 3:
        raise ClockSynchronizationError(
            f"clock bounds for {machine!r} are unbounded; synchronization messages must "
            "flow in both directions before and after the experiment"
        )
    if not result.success:
        raise ClockSynchronizationError(
            f"clock-bound estimation for {machine!r} failed: {result.message}"
        )
    return float(result.fun)


def _feasible_vertices(a_ub: np.ndarray, b_ub: np.ndarray) -> tuple[tuple[float, float], ...]:
    """Vertices of the convex polygon ``{x : A x <= b}`` in the (alpha, beta) plane.

    Every pair of constraint boundary lines is intersected and the points
    satisfying all constraints (within a small relative tolerance) are kept.
    The polygon is known to be bounded because the caller has already run
    the four bounding linear programs successfully.
    """
    count = a_ub.shape[0]
    vertices: list[tuple[float, float]] = []
    tolerance = 1e-9
    scale = np.maximum(1.0, np.abs(b_ub))
    for i in range(count):
        for j in range(i + 1, count):
            matrix = np.array([a_ub[i], a_ub[j]])
            rhs = np.array([b_ub[i], b_ub[j]])
            determinant = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
            if abs(determinant) < 1e-15:
                continue
            point = np.linalg.solve(matrix, rhs)
            if np.all(a_ub @ point <= b_ub + tolerance * scale) and point[1] > 0:
                vertices.append((float(point[0]), float(point[1])))
    return tuple(vertices)


def estimate_clock_bounds(
    messages: Iterable[SyncMessageRecord], machine: str, reference: str
) -> ClockBounds:
    """Estimate offset/drift bounds for ``machine`` relative to ``reference``."""
    if machine == reference:
        return ClockBounds.identity()
    message_list = list(messages)
    a_ub, b_ub = _constraints_for(message_list, machine, reference)
    alpha_lower = _optimize([1.0, 0.0], a_ub, b_ub, machine)
    alpha_upper = -_optimize([-1.0, 0.0], a_ub, b_ub, machine)
    beta_lower = _optimize([0.0, 1.0], a_ub, b_ub, machine)
    beta_upper = -_optimize([0.0, -1.0], a_ub, b_ub, machine)
    if alpha_upper < alpha_lower or beta_upper < beta_lower:
        raise ClockSynchronizationError(
            f"inconsistent clock bounds for {machine!r}: "
            f"alpha [{alpha_lower}, {alpha_upper}], beta [{beta_lower}, {beta_upper}]"
        )
    return ClockBounds(
        alpha_lower=alpha_lower,
        alpha_upper=alpha_upper,
        beta_lower=beta_lower,
        beta_upper=beta_upper,
        vertices=_feasible_vertices(a_ub, b_ub),
    )


def estimate_all_bounds(
    messages: Iterable[SyncMessageRecord],
    machines: Iterable[str],
    reference: str,
) -> dict[str, ClockBounds]:
    """Estimate bounds for every machine in ``machines`` (reference included)."""
    message_list = list(messages)
    bounds: dict[str, ClockBounds] = {}
    for machine in machines:
        bounds[machine] = estimate_clock_bounds(message_list, machine, reference)
    return bounds
