"""Construction of the single global timeline (Section 2.5).

Every record of every local timeline is projected onto the reference clock
using the per-host :class:`~repro.analysis.clock_sync.ClockBounds`, giving
a ``[lower, upper]`` interval that is guaranteed to contain the event's true
reference-clock time.  The resulting :class:`GlobalTimeline` also exposes
per-machine *state periods* — the intervals during which each machine was
in each state — which both the injection-verification step and the measure
layer consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.analysis.clock_sync import ClockBounds
from repro.core.specs.state_machine import INITIAL_STATE
from repro.core.timeline import LocalTimeline, RecordKind
from repro.errors import AnalysisError


class GlobalEventKind(enum.Enum):
    """What a global-timeline entry records."""

    STATE_CHANGE = "state_change"
    FAULT_INJECTION = "fault_injection"


@dataclass(frozen=True)
class GlobalTimelineEntry:
    """One event projected onto the reference clock."""

    machine: str
    kind: GlobalEventKind
    lower: float
    upper: float
    host: str
    local_time: float
    event: str | None = None
    new_state: str | None = None
    fault: str | None = None

    def __post_init__(self) -> None:
        if self.upper < self.lower:
            raise AnalysisError(
                f"global time upper bound {self.upper} precedes lower bound {self.lower}"
            )

    @property
    def midpoint(self) -> float:
        """Midpoint of the global-time interval (used by the measure layer)."""
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        """Width of the global-time uncertainty interval."""
        return self.upper - self.lower


@dataclass(frozen=True)
class StatePeriod:
    """One occupancy of one state by one machine on the global timeline.

    ``entry`` is the state change that entered the state; ``exit`` is the
    state change that left it, or ``None`` if the machine was still in the
    state at the end of the experiment.
    """

    machine: str
    state: str
    entry: GlobalTimelineEntry
    exit: GlobalTimelineEntry | None

    def certain_interval(self, horizon: float) -> tuple[float, float] | None:
        """The interval during which the machine was *provably* in the state."""
        start = self.entry.upper
        end = self.exit.lower if self.exit is not None else horizon
        if end < start:
            return None
        return start, end

    def possible_interval(self, horizon: float) -> tuple[float, float]:
        """The interval during which the machine *may* have been in the state."""
        start = self.entry.lower
        end = self.exit.upper if self.exit is not None else horizon
        return start, max(start, end)


@dataclass
class GlobalTimeline:
    """All experiment events on a single reference-clock timeline."""

    entries: list[GlobalTimelineEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.entries.sort(key=lambda entry: (entry.midpoint, entry.lower))

    # -- global extent ----------------------------------------------------------

    @property
    def start(self) -> float:
        """Lower bound of the earliest event (0 for an empty timeline)."""
        if not self.entries:
            return 0.0
        return min(entry.lower for entry in self.entries)

    @property
    def end(self) -> float:
        """Upper bound of the latest event (0 for an empty timeline)."""
        if not self.entries:
            return 0.0
        return max(entry.upper for entry in self.entries)

    @property
    def horizon(self) -> float:
        """A time safely after every event, used to close open state periods."""
        return self.end

    # -- simple selectors ----------------------------------------------------------

    def machines(self) -> tuple[str, ...]:
        """All machines appearing on the timeline, in first-appearance order."""
        seen: list[str] = []
        for entry in self.entries:
            if entry.machine not in seen:
                seen.append(entry.machine)
        return tuple(seen)

    def entries_for(self, machine: str) -> list[GlobalTimelineEntry]:
        """All entries of one machine in timeline order."""
        return [entry for entry in self.entries if entry.machine == machine]

    def state_changes(self, machine: str) -> list[GlobalTimelineEntry]:
        """State-change entries of one machine in timeline order."""
        return [
            entry
            for entry in self.entries
            if entry.machine == machine and entry.kind is GlobalEventKind.STATE_CHANGE
        ]

    def fault_injections(self, machine: str | None = None) -> list[GlobalTimelineEntry]:
        """Fault-injection entries (of one machine, or of all machines)."""
        return [
            entry
            for entry in self.entries
            if entry.kind is GlobalEventKind.FAULT_INJECTION
            and (machine is None or entry.machine == machine)
        ]

    # -- state occupancy --------------------------------------------------------------

    def state_periods(self, machine: str) -> list[StatePeriod]:
        """The sequence of state occupancies of one machine."""
        periods: list[StatePeriod] = []
        changes = self.state_changes(machine)
        for index, change in enumerate(changes):
            exit_entry = changes[index + 1] if index + 1 < len(changes) else None
            periods.append(
                StatePeriod(
                    machine=machine, state=change.new_state, entry=change, exit=exit_entry
                )
            )
        return periods

    def state_periods_for_state(self, machine: str, state: str) -> list[StatePeriod]:
        """State occupancies of one machine restricted to one state."""
        return [period for period in self.state_periods(machine) if period.state == state]

    def event_occurrences(self, machine: str, state: str | None, event: str) -> list[GlobalTimelineEntry]:
        """Occurrences of ``event`` in ``machine`` while it was in ``state``.

        A state-change record ``(event, new_state)`` occurred while the
        machine was still in its *previous* state, so matching is done
        against the state the machine was leaving.  ``state=None`` matches
        any state.
        """
        occurrences: list[GlobalTimelineEntry] = []
        previous_state = INITIAL_STATE
        for change in self.state_changes(machine):
            if change.event == event and (state is None or previous_state == state):
                occurrences.append(change)
            previous_state = change.new_state
        return occurrences


def project_record_time(local_time: float, bounds: ClockBounds) -> tuple[float, float]:
    """Project one local-clock time onto reference-clock bounds."""
    return bounds.project_to_reference(local_time)


def build_global_timeline(
    local_timelines: Mapping[str, LocalTimeline] | Iterable[LocalTimeline],
    bounds_by_host: Mapping[str, ClockBounds],
) -> GlobalTimeline:
    """Project all local timelines onto a single global timeline.

    Parameters
    ----------
    local_timelines:
        The per-machine local timelines produced by the runtime phase.
    bounds_by_host:
        Clock bounds (relative to the chosen reference machine) for every
        host that appears in the local timelines.
    """
    if isinstance(local_timelines, Mapping):
        timelines = list(local_timelines.values())
    else:
        timelines = list(local_timelines)
    entries: list[GlobalTimelineEntry] = []
    for timeline in timelines:
        records = timeline.records
        if not records:
            continue
        # Group record positions by host (a node that restarts mid-
        # experiment changes host), then project each host's record times
        # through the polygon corners with one numpy broadcast instead of
        # a per-record Python loop over the corners.
        positions_by_host: dict[str, list[int]] = {}
        for position, record in enumerate(records):
            positions_by_host.setdefault(record.host, []).append(position)
        lowers = np.empty(len(records))
        uppers = np.empty(len(records))
        for host, positions in positions_by_host.items():
            bounds = bounds_by_host.get(host)
            if bounds is None:
                raise AnalysisError(
                    f"no clock bounds for host {host!r} "
                    f"(machine {timeline.machine!r})"
                )
            corners = bounds.projection_corners
            times = np.array([records[position].time for position in positions])
            candidates = (times[:, None] - corners[None, :, 0]) / corners[None, :, 1]
            lowers[positions] = candidates.min(axis=1)
            uppers[positions] = candidates.max(axis=1)
        for position, record in enumerate(records):
            if record.kind is RecordKind.STATE_CHANGE:
                kind = GlobalEventKind.STATE_CHANGE
            else:
                kind = GlobalEventKind.FAULT_INJECTION
            entries.append(
                GlobalTimelineEntry(
                    machine=timeline.machine,
                    kind=kind,
                    lower=float(lowers[position]),
                    upper=float(uppers[position]),
                    host=record.host,
                    local_time=record.time,
                    event=record.event,
                    new_state=record.new_state,
                    fault=record.fault,
                )
            )
    return GlobalTimeline(entries=entries)
