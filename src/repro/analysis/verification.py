"""Conservative verification of fault injections (Section 2.5).

After the global timeline is built, every fault injection is checked to
have occurred in the global state demanded by its fault expression.  The
check is deliberately conservative: using the ``[lower, upper]`` bounds of
each event, the injection is accepted only if its whole uncertainty
interval lies inside a region where the fault expression was *provably*
true.  For a simple conjunction of ``(machine:state)`` atoms this reduces
to the paper's check — the injection must fall after the upper bound of
every state-entry time and before the lower bound of every state-exit
time — and the three-valued evaluation below generalizes it to arbitrary
AND/OR/NOT expressions.

Experiments containing any injection that cannot be proven correct are
discarded and excluded from measure estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.global_timeline import GlobalTimeline, GlobalTimelineEntry
from repro.analysis.intervals import IntervalSet
from repro.core.expression import And, Expression, Not, Or, StateAtom
from repro.core.specs.fault_spec import FaultSpecification
from repro.errors import AnalysisError


@dataclass(frozen=True)
class ExpressionRegions:
    """Where an expression is provably true and where it may be true."""

    certain: IntervalSet
    possible: IntervalSet


def atom_regions(timeline: GlobalTimeline, atom: StateAtom, horizon: float) -> ExpressionRegions:
    """Certainly/possibly-true regions of a single ``(machine:state)`` atom."""
    certain_pairs: list[tuple[float, float]] = []
    possible_pairs: list[tuple[float, float]] = []
    for period in timeline.state_periods_for_state(atom.machine, atom.state):
        certain = period.certain_interval(horizon)
        if certain is not None:
            certain_pairs.append(certain)
        possible_pairs.append(period.possible_interval(horizon))
    return ExpressionRegions(
        certain=IntervalSet.from_pairs(certain_pairs),
        possible=IntervalSet.from_pairs(possible_pairs),
    )


def expression_regions(
    timeline: GlobalTimeline, expression: Expression, horizon: float
) -> ExpressionRegions:
    """Three-valued evaluation of a fault expression over the global timeline."""
    if isinstance(expression, StateAtom):
        return atom_regions(timeline, expression, horizon)
    if isinstance(expression, Not):
        inner = expression_regions(timeline, expression.operand, horizon)
        return ExpressionRegions(
            certain=inner.possible.complement(0.0, horizon),
            possible=inner.certain.complement(0.0, horizon),
        )
    if isinstance(expression, And):
        left = expression_regions(timeline, expression.left, horizon)
        right = expression_regions(timeline, expression.right, horizon)
        return ExpressionRegions(
            certain=left.certain.intersection(right.certain),
            possible=left.possible.intersection(right.possible),
        )
    if isinstance(expression, Or):
        left = expression_regions(timeline, expression.left, horizon)
        right = expression_regions(timeline, expression.right, horizon)
        return ExpressionRegions(
            certain=left.certain.union(right.certain),
            possible=left.possible.union(right.possible),
        )
    raise AnalysisError(f"unsupported expression node {type(expression).__name__}")


def _same_machine_atom_status(
    timeline: GlobalTimeline, atom: StateAtom, injection: GlobalTimelineEntry
) -> bool | None:
    """Exact truth of an atom about the machine the fault was injected into.

    The injection record and the machine's own state-change records were
    stamped by the same hardware clock, so their order is known exactly and
    no global-time uncertainty applies.  Records taken on different hosts
    (a node that restarted elsewhere mid-experiment) cannot be compared this
    way; ``None`` is returned and the caller falls back to the conservative
    interval check.
    """
    # When the injection shares its timestamp with a state change of the
    # same machine, the recorder order guarantees the state change happened
    # first, so the state in force at the injection is the one entered most
    # recently: keep the *last* matching period.
    matched_state: str | None = None
    for period in timeline.state_periods(atom.machine):
        if period.entry.host != injection.host:
            continue
        if period.exit is not None and period.exit.host != injection.host:
            continue
        entered = period.entry.local_time <= injection.local_time
        not_exited = period.exit is None or injection.local_time <= period.exit.local_time
        if entered and not_exited:
            matched_state = period.state
    if matched_state is None:
        return None
    return matched_state == atom.state


def _atom_status(
    timeline: GlobalTimeline,
    atom: StateAtom,
    injection: GlobalTimelineEntry,
    horizon: float,
    region_cache: dict[StateAtom, ExpressionRegions],
) -> bool | None:
    """Three-valued truth of an atom at the injection instant.

    ``True`` means provably true, ``False`` provably false, ``None``
    unknown (the conservative verdict).
    """
    if atom.machine == injection.machine:
        local = _same_machine_atom_status(timeline, atom, injection)
        if local is not None:
            return local
    if atom not in region_cache:
        region_cache[atom] = atom_regions(timeline, atom, horizon)
    regions = region_cache[atom]
    if regions.certain.contains_interval(injection.lower, injection.upper):
        return True
    overlap = regions.possible.intersection(
        IntervalSet.from_pairs([(injection.lower, injection.upper)])
    )
    if overlap.is_empty:
        return False
    return None


def expression_status_at_injection(
    timeline: GlobalTimeline,
    expression: Expression,
    injection: GlobalTimelineEntry,
    horizon: float,
    region_cache: dict[StateAtom, ExpressionRegions] | None = None,
) -> bool | None:
    """Three-valued evaluation of a fault expression at an injection."""
    cache: dict[StateAtom, ExpressionRegions] = region_cache if region_cache is not None else {}
    if isinstance(expression, StateAtom):
        return _atom_status(timeline, expression, injection, horizon, cache)
    if isinstance(expression, Not):
        inner = expression_status_at_injection(timeline, expression.operand, injection, horizon, cache)
        return None if inner is None else not inner
    if isinstance(expression, And):
        left = expression_status_at_injection(timeline, expression.left, injection, horizon, cache)
        right = expression_status_at_injection(timeline, expression.right, injection, horizon, cache)
        if left is False or right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if isinstance(expression, Or):
        left = expression_status_at_injection(timeline, expression.left, injection, horizon, cache)
        right = expression_status_at_injection(timeline, expression.right, injection, horizon, cache)
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return False
    raise AnalysisError(f"unsupported expression node {type(expression).__name__}")


@dataclass(frozen=True)
class InjectionVerdict:
    """The verdict on one fault injection."""

    machine: str
    fault: str
    injection: GlobalTimelineEntry
    correct: bool
    reason: str

    def __bool__(self) -> bool:
        return self.correct


@dataclass
class ExperimentVerification:
    """The verification result for one experiment."""

    verdicts: list[InjectionVerdict] = field(default_factory=list)
    missing_faults: list[tuple[str, str]] = field(default_factory=list)

    @property
    def injections_checked(self) -> int:
        """Number of injections examined."""
        return len(self.verdicts)

    @property
    def correct(self) -> bool:
        """Whether every injection of the experiment was provably correct."""
        return all(verdict.correct for verdict in self.verdicts)

    @property
    def incorrect_verdicts(self) -> list[InjectionVerdict]:
        """The injections that could not be proven correct."""
        return [verdict for verdict in self.verdicts if not verdict.correct]


def verify_experiment(
    timeline: GlobalTimeline,
    fault_specifications: Mapping[str, FaultSpecification],
    require_all_faults: bool = False,
) -> ExperimentVerification:
    """Check every fault injection of an experiment against its fault expression.

    Parameters
    ----------
    timeline:
        The experiment's global timeline.
    fault_specifications:
        The fault specification of every state machine, keyed by nickname.
    require_all_faults:
        When true, faults that were specified but never injected are listed
        in :attr:`ExperimentVerification.missing_faults` (they do not make
        the experiment incorrect — the paper only discards experiments with
        *incorrect* injections — but callers may filter on them).
    """
    verification = ExperimentVerification()
    horizon = timeline.horizon
    atom_cache: dict[StateAtom, ExpressionRegions] = {}

    for injection in timeline.fault_injections():
        specification = fault_specifications.get(injection.machine)
        definition = specification.get(injection.fault) if specification is not None else None
        if definition is None:
            verification.verdicts.append(
                InjectionVerdict(
                    machine=injection.machine,
                    fault=injection.fault,
                    injection=injection,
                    correct=False,
                    reason=f"fault {injection.fault!r} is not in the fault specification "
                    f"of machine {injection.machine!r}",
                )
            )
            continue
        status = expression_status_at_injection(
            timeline, definition.expression, injection, horizon, atom_cache
        )
        if status is True:
            verdict = InjectionVerdict(
                machine=injection.machine,
                fault=injection.fault,
                injection=injection,
                correct=True,
                reason="injection provably occurred in the intended global state",
            )
        else:
            verdict = InjectionVerdict(
                machine=injection.machine,
                fault=injection.fault,
                injection=injection,
                correct=False,
                reason=(
                    "injection provably occurred outside the intended global state"
                    if status is False
                    else "injection cannot be proven to lie inside the intended global state"
                ),
            )
        verification.verdicts.append(verdict)

    if require_all_faults:
        injected = {(entry.machine, entry.fault) for entry in timeline.fault_injections()}
        for machine, specification in fault_specifications.items():
            for definition in specification:
                if (machine, definition.name) not in injected:
                    verification.missing_faults.append((machine, definition.name))
    return verification


def filter_experiments(
    timelines: Mapping[int, GlobalTimeline] | list[GlobalTimeline],
    fault_specifications: Mapping[str, FaultSpecification],
) -> tuple[list[GlobalTimeline], list[GlobalTimeline]]:
    """Split experiments into (accepted, discarded) by injection correctness."""
    if isinstance(timelines, Mapping):
        items = list(timelines.values())
    else:
        items = list(timelines)
    accepted: list[GlobalTimeline] = []
    discarded: list[GlobalTimeline] = []
    for timeline in items:
        if verify_experiment(timeline, fault_specifications).correct:
            accepted.append(timeline)
        else:
            discarded.append(timeline)
    return accepted, discarded
