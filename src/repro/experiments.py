"""Experiment harnesses that regenerate the paper's figures and evaluations.

Each function here reproduces one quantitative artifact of the paper on the
simulated substrate and returns plain data structures; the benchmark suite
(``benchmarks/``) and the example scripts (``examples/``) are thin wrappers
that print them.  The per-experiment index in DESIGN.md maps every artifact
to one of these functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.apps.election import (
    DEFAULT_MACHINES,
    ElectionParameters,
    build_election_study,
    correlated_follower_fault,
    coverage_study_measure,
    leader_fault,
    uncorrelated_follower_fault,
)
from repro.apps.toggle import DRIVER, OBSERVER, build_toggle_study
from repro.core.campaign import StudyConfig, run_single_study
from repro.core.execution import ExecutionConfig
from repro.core.runtime.context import RestartPolicy
from repro.core.runtime.designs import RuntimeDesign
from repro.measures import (
    MeasureStep,
    StateTuple,
    StratifiedWeightedMeasure,
    StudyMeasure,
    TotalDuration,
    UserObservation,
    value_positive,
)
from repro.pipeline import analyze_study, correct_injection_fraction
from repro.scenarios import ScenarioRegistry, default_registry

ELECTION_MACHINES = DEFAULT_MACHINES


# ---------------------------------------------------------------------------
# Cross-scenario campaign comparison (the scenario registry as a workload set)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioComparisonRow:
    """One scenario's row of the cross-scenario campaign comparison."""

    scenario: str
    experiments: int
    accepted: int
    injections: int
    correct_fraction: float | None
    measure_name: str | None
    measure_mean: float | None


def scenario_comparison(
    names: Sequence[str] | None = None,
    experiments: int = 3,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
    registry: ScenarioRegistry | None = None,
) -> list[ScenarioComparisonRow]:
    """Run every (selected) registered scenario and compare the campaigns.

    For each scenario the row reports how many experiments survived the
    analysis phase, the injection count and correct-injection fraction,
    and the mean of the scenario's own study measure over the accepted
    experiments.  ``names=None`` enumerates the whole registry; each
    scenario gets ``seed + position`` so the studies stay decorrelated.
    """
    registry = registry or default_registry()
    rows: list[ScenarioComparisonRow] = []
    for offset, name in enumerate(names if names is not None else registry.names()):
        scenario = registry.get(name)
        study = scenario.build(experiments=experiments, seed=seed + offset)
        analysis = analyze_study(run_single_study(study, execution))
        injections = sum(len(e.verification.verdicts) for e in analysis.experiments)
        measure_name: str | None = None
        measure_mean: float | None = None
        if scenario.measure_factory is not None:
            measure = scenario.measure_factory()
            measure_name = measure.name
            values = [v for v in analysis.measure_values(measure) if v is not None]
            if values:
                measure_mean = sum(values) / len(values)
        rows.append(
            ScenarioComparisonRow(
                scenario=name,
                experiments=len(analysis.experiments),
                accepted=len(analysis.accepted()),
                injections=injections,
                correct_fraction=correct_injection_fraction(analysis.experiments),
                measure_name=measure_name,
                measure_mean=measure_mean,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 3.2 and 3.3: correct-injection probability vs time spent in a state
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InjectionProbabilityPoint:
    """One point of Figure 3.2/3.3."""

    dwell_time: float
    timeslice: float
    injections: int
    correct: int

    @property
    def probability(self) -> float | None:
        """Fraction of injections performed in the intended global state.

        ``None`` when the point's experiments produced no injections at
        all (undefined — same convention as
        :func:`repro.pipeline.correct_injection_fraction`).
        """
        if self.injections == 0:
            return None
        return self.correct / self.injections


def injection_probability_sweep(
    timeslice: float,
    dwell_times: Sequence[float],
    experiments: int = 3,
    cycles: int = 8,
    design: RuntimeDesign | None = None,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[InjectionProbabilityPoint]:
    """Sweep the time spent in the triggering state (Figures 3.2 / 3.3).

    ``execution`` selects the campaign execution backend (serial by
    default); the points are identical for every backend.
    """
    points: list[InjectionProbabilityPoint] = []
    for index, dwell in enumerate(dwell_times):
        study = build_toggle_study(
            name=f"dwell-{dwell * 1000:.1f}ms",
            dwell_time=dwell,
            timeslice=timeslice,
            cycles=cycles,
            experiments=experiments,
            design=design,
            seed=seed + index,
        )
        analysis = analyze_study(run_single_study(study, execution))
        injections = sum(len(e.verification.verdicts) for e in analysis.experiments)
        correct = sum(
            sum(1 for verdict in e.verification.verdicts if verdict.correct)
            for e in analysis.experiments
        )
        points.append(
            InjectionProbabilityPoint(
                dwell_time=dwell, timeslice=timeslice, injections=injections, correct=correct
            )
        )
    return points


# ---------------------------------------------------------------------------
# Section 3.4: design-choice comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DesignComparisonRow:
    """One row of the Section 3.4 design comparison."""

    design: str
    correct_fraction: float | None
    notification_messages: int
    daemon_forwards: int
    connection_setups: int
    mean_experiment_duration: float


def design_comparison(
    dwell_time: float = 0.020,
    timeslice: float = 0.005,
    experiments: int = 2,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[DesignComparisonRow]:
    """Run the same workload under every runtime design of Section 3.4.

    ``correct_fraction`` is ``None`` for a design whose runs produced no
    injections at all (undefined, as opposed to all-wrong).
    """
    rows: list[DesignComparisonRow] = []
    for design in RuntimeDesign.all_designs():
        study = build_toggle_study(
            name=f"design-{design.describe()}",
            dwell_time=dwell_time,
            timeslice=timeslice,
            cycles=6,
            experiments=experiments,
            design=design,
            seed=seed,
        )
        result = run_single_study(study, execution)
        analysis = analyze_study(result)
        stats_total: dict[str, int] = {}
        duration_total = 0.0
        for experiment in result.experiments:
            duration_total += experiment.duration
            for key, value in experiment.stats.items():
                stats_total[key] = stats_total.get(key, 0) + value
        rows.append(
            DesignComparisonRow(
                design=design.describe(),
                correct_fraction=correct_injection_fraction(analysis.experiments),
                notification_messages=stats_total.get("notifications_delivered", 0)
                + stats_total.get("notifications_routed", 0),
                daemon_forwards=stats_total.get("daemon_forwards", 0),
                connection_setups=stats_total.get("connection_setups", 0),
                mean_experiment_duration=duration_total / max(len(result.experiments), 1),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Section 2.5: clock-synchronization bound tightness
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClockSyncQuality:
    """Bound widths achieved for one sync-message budget."""

    messages_per_phase: int
    mean_alpha_width: float
    mean_beta_width: float
    mean_event_uncertainty: float


def clock_sync_quality(
    message_counts: Sequence[int] = (5, 10, 25, 50),
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> list[ClockSyncQuality]:
    """How sync-message volume drives the guaranteed bound widths."""
    from repro.core.runtime.syncphase import SyncPhaseConfig

    results: list[ClockSyncQuality] = []
    for count in message_counts:
        study = build_toggle_study(
            name=f"sync-{count}",
            dwell_time=0.02,
            timeslice=0.005,
            cycles=4,
            experiments=2,
            seed=seed,
        )
        study.sync = SyncPhaseConfig(messages_per_phase=count)
        analysis = analyze_study(run_single_study(study, execution))
        alpha_widths: list[float] = []
        beta_widths: list[float] = []
        uncertainties: list[float] = []
        for experiment in analysis.experiments:
            for host, bounds in experiment.clock_bounds.items():
                if host == experiment.result.reference_host:
                    continue
                alpha_widths.append(bounds.alpha_width)
                beta_widths.append(bounds.beta_width)
            uncertainties.extend(entry.width for entry in experiment.global_timeline.entries)
        results.append(
            ClockSyncQuality(
                messages_per_phase=count,
                mean_alpha_width=sum(alpha_widths) / len(alpha_widths),
                mean_beta_width=sum(beta_widths) / len(beta_widths),
                mean_event_uncertainty=sum(uncertainties) / len(uncertainties),
            )
        )
    return results


# ---------------------------------------------------------------------------
# Chapter 5: coverage and error-correlation evaluations
# ---------------------------------------------------------------------------

def crash_indicator_measure(machine: str, conditioned_on: str | None = None) -> StudyMeasure:
    """Study measures of the Section 5.8 correlation evaluation.

    Without ``conditioned_on`` this is the study-5 measure (did ``machine``
    crash); with it, the study-4 measure (given that ``conditioned_on``
    crashed, did ``machine`` also crash).
    """
    indicator = UserObservation(
        lambda timeline: 1.0 if timeline.true_duration() > 0 else 0.0,
        name="total_duration(T) > 0",
    )
    if conditioned_on is None:
        return StudyMeasure(
            name=f"{machine}-crashed",
            steps=(MeasureStep(StateTuple(machine, "CRASH"), indicator),),
        )
    return StudyMeasure(
        name=f"{machine}-crashed-given-{conditioned_on}-crashed",
        steps=(
            MeasureStep(StateTuple(conditioned_on, "CRASH"), TotalDuration("T")),
            MeasureStep(StateTuple(machine, "CRASH"), indicator, value_positive()),
        ),
    )


def _leader_election_parameters(
    leader: str, crash_probability: float = 1.0, correlated: float | None = None
) -> dict[str, ElectionParameters]:
    return {
        machine: ElectionParameters(
            run_duration=0.5,
            favored=(machine == leader),
            fault_crash_probability=1.0 if machine == leader else crash_probability,
            correlated_crash_probability=None if machine == leader else correlated,
        )
        for machine in ELECTION_MACHINES
    }


@dataclass
class CoverageEvaluation:
    """The Chapter 5 coverage evaluation: per-study coverage and the overall value."""

    per_study_coverage: dict[str, float]
    per_study_accepted: dict[str, tuple[int, int]]
    overall_coverage: float
    recovery_probability: float


def chapter5_coverage_evaluation(
    experiments: int = 8,
    recovery_probability: float = 0.7,
    fault_occurrence_weights: Mapping[str, float] | None = None,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> CoverageEvaluation:
    """Studies 1-3 of Chapter 5 plus the stratified-weighted overall coverage."""
    weights = dict(fault_occurrence_weights or {"black": 3.0, "yellow": 2.0, "green": 1.0})
    study_values: dict[str, list[float | None]] = {}
    per_study_coverage: dict[str, float] = {}
    per_study_accepted: dict[str, tuple[int, int]] = {}
    for index, machine in enumerate(ELECTION_MACHINES):
        study = build_election_study(
            name=f"study{index + 1}",
            faults_by_machine={machine: (leader_fault(machine),)},
            experiments=experiments,
            parameters_by_machine=_leader_election_parameters(leader=machine),
            restart_policy=RestartPolicy(
                enabled=True,
                delay=0.04,
                max_restarts=1,
                restart_host="next",
                success_probability=recovery_probability,
            ),
            experiment_timeout=4.0,
            seed=seed + index,
        )
        analysis = analyze_study(run_single_study(study, execution))
        values = analysis.measure_values(coverage_study_measure(machine))
        kept = [value for value in values if value is not None]
        study_values[study.name] = values
        per_study_coverage[study.name] = sum(kept) / len(kept) if kept else 0.0
        per_study_accepted[study.name] = (len(analysis.accepted()), len(analysis.experiments))
        weights[study.name] = weights.pop(machine, 1.0)
    overall = StratifiedWeightedMeasure("overall-coverage", weights).estimate(study_values)
    return CoverageEvaluation(
        per_study_coverage=per_study_coverage,
        per_study_accepted=per_study_accepted,
        overall_coverage=overall.value,
        recovery_probability=recovery_probability,
    )


@dataclass
class CorrelationEvaluation:
    """The Chapter 5 correlation evaluation (studies 4 and 5)."""

    correlated_error_fraction: float
    uncorrelated_error_fraction: float
    configured_correlated_probability: float
    configured_uncorrelated_probability: float
    accepted: dict[str, tuple[int, int]]


def chapter5_correlation_evaluation(
    experiments: int = 10,
    correlated_probability: float = 0.8,
    uncorrelated_probability: float = 0.25,
    seed: int = 0,
    execution: ExecutionConfig | None = None,
) -> CorrelationEvaluation:
    """Studies 4 and 5: error correlation between leader crash and follower faults."""
    # Study 4: bfault1 crashes the leader, gfault2 is injected into the
    # follower at the moment it learns of the crash.
    study4 = build_election_study(
        name="study4",
        faults_by_machine={
            "black": (leader_fault("black"),),
            "green": (correlated_follower_fault("black", "green"),),
        },
        experiments=experiments,
        parameters_by_machine=_leader_election_parameters(
            leader="black",
            crash_probability=uncorrelated_probability,
            correlated=correlated_probability,
        ),
        restart_policy=RestartPolicy(enabled=False),
        experiment_timeout=4.0,
        seed=seed,
    )
    analysis4 = analyze_study(run_single_study(study4, execution))
    values4 = [
        value
        for value in analysis4.measure_values(crash_indicator_measure("green", "black"))
        if value is not None
    ]

    # Study 5: only gfault3 is injected (no leader crash involved).
    study5 = build_election_study(
        name="study5",
        faults_by_machine={"green": (uncorrelated_follower_fault("green"),)},
        experiments=experiments,
        parameters_by_machine=_leader_election_parameters(
            leader="black", crash_probability=uncorrelated_probability
        ),
        restart_policy=RestartPolicy(enabled=False),
        experiment_timeout=4.0,
        seed=seed + 1,
    )
    analysis5 = analyze_study(run_single_study(study5, execution))
    values5 = [
        value
        for value in analysis5.measure_values(crash_indicator_measure("green"))
        if value is not None
    ]

    return CorrelationEvaluation(
        correlated_error_fraction=sum(values4) / len(values4) if values4 else 0.0,
        uncorrelated_error_fraction=sum(values5) / len(values5) if values5 else 0.0,
        configured_correlated_probability=correlated_probability,
        configured_uncorrelated_probability=uncorrelated_probability,
        accepted={
            "study4": (len(analysis4.accepted()), len(analysis4.experiments)),
            "study5": (len(analysis5.accepted()), len(analysis5.experiments)),
        },
    )
