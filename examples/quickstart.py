#!/usr/bin/env python3
"""Quickstart: inject a global-state-driven fault and verify it offline.

This script runs the smallest useful Loki evaluation end to end:

1. a two-node application (a *driver* toggling between IDLE and ACTIVE and
   an *observer*) is wrapped into Loki nodes;
2. the fault ``fstate ((driver:ACTIVE) & (observer:READY)) always`` is
   injected whenever the observer's partial view says the global state is
   right;
3. the analysis phase synchronizes the clocks offline, builds the global
   timeline, and checks every injection;
4. a study measure counts how long the driver spent ACTIVE per experiment.
"""

import argparse

from repro.apps.toggle import DRIVER, build_toggle_study
from repro.core.campaign import run_single_study
from repro.core.execution import ExecutionConfig, available_backends
from repro.measures import MeasureStep, StateTuple, StudyMeasure, TotalDuration, summarize_sample
from repro.pipeline import analyze_study, correct_injection_fraction


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=available_backends(), default="serial",
                        help="campaign execution backend (results are identical)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the process-pool backend")
    options = parser.parse_args()
    execution = ExecutionConfig(backend=options.backend, workers=options.workers)

    study = build_toggle_study(
        name="quickstart",
        dwell_time=0.020,       # the driver holds ACTIVE for 20 ms
        timeslice=0.010,        # hosts run a 10 ms OS timeslice
        cycles=5,
        experiments=4,
    )
    print(f"Running study {study.name!r}: {study.experiments} experiments, "
          f"design {study.design.describe()}, backend {execution.backend}")
    result = run_single_study(study, execution)
    analysis = analyze_study(result)

    accepted = analysis.accepted()
    print(f"Experiments accepted by the analysis phase: {len(accepted)}/{len(analysis.experiments)}")
    fraction = correct_injection_fraction(analysis.experiments)
    print("Correct-injection fraction: "
          + (f"{fraction:.2f}" if fraction is not None else "n/a (no injections observed)"))

    active_time = StudyMeasure(
        name="driver-active-time",
        steps=(MeasureStep(StateTuple(DRIVER, "ACTIVE"), TotalDuration("T")),),
    )
    values = [value for value in analysis.measure_values(active_time) if value is not None]
    if values:
        summary = summarize_sample(values)
        print(f"Driver time in ACTIVE per experiment: mean={summary.mean * 1000:.1f} ms, "
              f"std={summary.standard_deviation * 1000:.2f} ms "
              f"(n={summary.count})")

    example = accepted[0] if accepted else analysis.experiments[0]
    print("\nClock bounds of the first experiment (relative to "
          f"{example.result.reference_host}):")
    for host, bounds in example.clock_bounds.items():
        print(f"  {host:8s} alpha width {bounds.alpha_width * 1e6:7.1f} us   "
              f"beta width {bounds.beta_width:.2e}")


if __name__ == "__main__":
    main()
