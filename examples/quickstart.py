#!/usr/bin/env python3
"""Quickstart: inject a global-state-driven fault and verify it offline.

This script runs the smallest useful Loki evaluation end to end:

1. a scenario is looked up in the scenario registry (by default ``toggle``:
   a *driver* toggling between IDLE and ACTIVE and an *observer* carrying
   the fault ``fstate ((driver:ACTIVE) & (observer:READY)) always``);
2. the study built by the registry runs on the chosen execution backend,
   injecting faults whenever a partial view says the global state is right;
3. the analysis phase synchronizes the clocks offline, builds the global
   timeline, and checks every injection;
4. the scenario's own study measure summarizes the accepted experiments.

Use ``--scenario`` to run any other registered workload (see
``examples/scenario_tour.py`` for the full list).  With ``--store DIR``
the campaign is recorded into a persistent campaign store: run the same
command twice and the second invocation resumes from the records instead
of re-simulating (see the README's "Persistence & resume" section).
"""

import argparse

from repro.core.campaign import CampaignConfig, run_single_study
from repro.core.execution import ExecutionConfig, available_backends
from repro.measures import summarize_sample
from repro.pipeline import analyze_study, correct_injection_fraction, run_and_analyze
from repro.scenarios import default_registry
from repro.store import CampaignStore


def main() -> None:
    registry = default_registry()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", choices=registry.names(), default="toggle",
                        help="registered scenario to run")
    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be at least 1")
        return value

    parser.add_argument("--experiments", type=positive_int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", choices=available_backends(), default="serial",
                        help="campaign execution backend (results are identical)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the process-pool backend")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="record into (and resume from) a campaign store directory")
    options = parser.parse_args()
    execution = ExecutionConfig(backend=options.backend, workers=options.workers)

    scenario = registry.get(options.scenario)
    study = scenario.build(experiments=options.experiments, seed=options.seed)
    print(f"Running scenario {scenario.name!r}: {study.experiments} experiments, "
          f"design {study.design.describe()}, backend {execution.backend}")
    for line in scenario.fault_lines():
        print(f"  fault: {line}")
    if options.store is not None:
        store = CampaignStore(options.store)
        campaign = CampaignConfig(name=f"quickstart-{scenario.name}", studies=[study])
        if store.exists():
            print(f"Resuming from {store.path}: recorded experiments will be reused")
        # Count what actually runs (vs is reused) via the progress stream.
        simulated = 0

        def progress(name: str, done: int, total: int) -> None:
            nonlocal simulated
            simulated += 1

        execution = ExecutionConfig(
            backend=options.backend, workers=options.workers, progress=progress
        )
        analysis = run_and_analyze(campaign, execution, store=store).study(study.name)
        print(f"Campaign records stored under {store.path} "
              f"({simulated} simulated, {study.experiments - simulated} reused)")
    else:
        analysis = analyze_study(run_single_study(study, execution))

    accepted = analysis.accepted()
    print(f"Experiments accepted by the analysis phase: {len(accepted)}/{len(analysis.experiments)}")
    fraction = correct_injection_fraction(analysis.experiments)
    print("Correct-injection fraction: "
          + (f"{fraction:.2f}" if fraction is not None else "n/a (no injections observed)"))

    if scenario.measure_factory is not None:
        measure = scenario.measure_factory()
        values = [value for value in analysis.measure_values(measure) if value is not None]
        if values:
            summary = summarize_sample(values)
            print(f"Study measure {measure.name!r}: mean={summary.mean:.4f}, "
                  f"std={summary.standard_deviation:.4f} (n={summary.count})")
        else:
            print(f"Study measure {measure.name!r}: no surviving values")

    example = accepted[0] if accepted else analysis.experiments[0]
    print("\nClock bounds of the first experiment (relative to "
          f"{example.result.reference_host}):")
    for host, bounds in example.clock_bounds.items():
        print(f"  {host:8s} alpha width {bounds.alpha_width * 1e6:7.1f} us   "
              f"beta width {bounds.beta_width:.2e}")


if __name__ == "__main__":
    main()
