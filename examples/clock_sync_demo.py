#!/usr/bin/env python3
"""Offline clock synchronization demo (Section 2.5).

Builds two hosts with known clock offset and drift, exchanges
synchronization messages through the simulated LAN, estimates the
guaranteed [alpha-, alpha+] x [beta-, beta+] bounds, and shows that the
true clock parameters — and the true global time of an event — always lie
inside the estimated bounds.
"""

from repro.analysis.clock_sync import estimate_clock_bounds
from repro.core.runtime.syncphase import SyncPhaseConfig, run_sync_phase
from repro.sim.clock import ClockParameters
from repro.sim.environment import Environment


def main() -> None:
    environment = Environment(seed=11)
    reference_clock = ClockParameters(offset=0.004, rate=1.00006)
    other_clock = ClockParameters(offset=-0.002, rate=0.99993)
    environment.add_host("ref", clock=reference_clock)
    environment.add_host("other", clock=other_clock)

    config = SyncPhaseConfig(messages_per_phase=25)
    messages = run_sync_phase(environment, "ref", ("ref", "other"), config)
    # Let the "experiment" run for a second, then run the closing mini-phase.
    environment.run(until=environment.kernel.now + 1.0)
    messages += run_sync_phase(environment, "ref", ("ref", "other"), config)

    bounds = estimate_clock_bounds(messages, "other", "ref")
    true_alpha, true_beta = environment.host("other").clock.relative_to(
        environment.host("ref").clock
    )

    print(f"synchronization messages used: {len(messages)}")
    print(f"alpha bounds: [{bounds.alpha_lower:+.6f}, {bounds.alpha_upper:+.6f}]  "
          f"(width {bounds.alpha_width * 1e6:.1f} us)   true alpha {true_alpha:+.6f}")
    print(f"beta  bounds: [{bounds.beta_lower:.8f}, {bounds.beta_upper:.8f}]  "
          f"(width {bounds.beta_width:.2e})   true beta  {true_beta:.8f}")
    print(f"bounds contain the true clock parameters: {bounds.contains(true_alpha, true_beta)}")

    physical_event_time = 0.6
    local = environment.host("other").clock.read(physical_event_time)
    lower, upper = bounds.project_to_reference(local)
    truth = environment.host("ref").clock.read(physical_event_time)
    print(f"\nevent at physical t={physical_event_time}s, local clock {local:.6f}s")
    print(f"projected reference-time bounds: [{lower:.6f}, {upper:.6f}] "
          f"(width {(upper - lower) * 1e6:.1f} us)")
    print(f"true reference time {truth:.6f} inside bounds: {lower <= truth <= upper}")


if __name__ == "__main__":
    main()
