#!/usr/bin/env python3
"""Runtime design ablation (Section 3.4).

Runs the same two-node fault-injection workload under every combination of
daemon placement (centralized / partially distributed / fully distributed)
and communication mode (via daemons / direct), and reports the correct
injection fraction, message counts, and connection-setup costs — the
quantities behind the paper's qualitative design comparison.
"""

import argparse

from repro.core.execution import ExecutionConfig, available_backends
from repro.experiments import design_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=available_backends(), default="serial")
    parser.add_argument("--workers", type=int, default=None)
    options = parser.parse_args()
    execution = ExecutionConfig(backend=options.backend, workers=options.workers)

    rows = design_comparison(dwell_time=0.020, timeslice=0.005, experiments=2,
                             execution=execution)
    header = (f"{'design':45s} {'correct':>8s} {'notif msgs':>11s} "
              f"{'daemon fwds':>12s} {'conn setups':>12s}")
    print(header)
    print("-" * len(header))
    for row in rows:
        correct = f"{row.correct_fraction:8.2f}" if row.correct_fraction is not None else f"{'n/a':>8s}"
        print(f"{row.design:45s} {correct} {row.notification_messages:11d} "
              f"{row.daemon_forwards:12d} {row.connection_setups:12d}")
    print("\nThe enhanced runtime of the paper is 'partially_distributed/via_daemon'.")


if __name__ == "__main__":
    main()
