#!/usr/bin/env python3
"""Runtime design ablation (Section 3.4).

Runs the same two-node fault-injection workload under every combination of
daemon placement (centralized / partially distributed / fully distributed)
and communication mode (via daemons / direct), and reports the correct
injection fraction, message counts, and connection-setup costs — the
quantities behind the paper's qualitative design comparison.
"""

from repro.experiments import design_comparison


def main() -> None:
    rows = design_comparison(dwell_time=0.020, timeslice=0.005, experiments=2)
    header = (f"{'design':45s} {'correct':>8s} {'notif msgs':>11s} "
              f"{'daemon fwds':>12s} {'conn setups':>12s}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row.design:45s} {row.correct_fraction:8.2f} {row.notification_messages:11d} "
              f"{row.daemon_forwards:12d} {row.connection_setups:12d}")
    print("\nThe enhanced runtime of the paper is 'partially_distributed/via_daemon'.")


if __name__ == "__main__":
    main()
