#!/usr/bin/env python3
"""Scenario tour: enumerate the scenario registry and compare the campaigns.

Every workload the library ships — the three paper applications plus the
two-phase-commit and token-ring scenarios in correlated and uncorrelated
fault variants — is registered in ``repro.scenarios.DEFAULT_REGISTRY``.
This script lists the registry (the same metadata behind the README
scenario table) and then runs a small campaign per scenario, printing the
injection statistics and each scenario's own study measure side by side.
"""

import argparse

from repro.core.execution import ExecutionConfig, available_backends
from repro.experiments import scenario_comparison
from repro.scenarios import default_registry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=available_backends(), default="serial")
    parser.add_argument("--workers", type=int, default=None)
    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be at least 1")
        return value

    parser.add_argument("--experiments", type=positive_int, default=3,
                        help="experiments per scenario")
    parser.add_argument("--seed", type=int, default=0)
    options = parser.parse_args()
    execution = ExecutionConfig(backend=options.backend, workers=options.workers)

    registry = default_registry()
    print(f"=== {len(registry)} registered scenarios ===")
    for scenario in registry:
        print(f"  {scenario.name:32s} {scenario.description}")
        for line in scenario.fault_lines():
            print(f"    fault: {line}")

    print(f"\n=== Cross-scenario comparison "
          f"({options.experiments} experiments each, backend {execution.backend}) ===")
    header = (f"{'scenario':32s} {'accepted':>9s} {'inject':>7s} "
              f"{'correct':>8s} {'measure':>24s} {'mean':>9s}")
    print(header)
    print("-" * len(header))
    for row in scenario_comparison(experiments=options.experiments, seed=options.seed,
                                   execution=execution):
        correct = f"{row.correct_fraction:8.2f}" if row.correct_fraction is not None else f"{'n/a':>8s}"
        mean = f"{row.measure_mean:9.4f}" if row.measure_mean is not None else f"{'n/a':>9s}"
        print(f"{row.scenario:32s} {row.accepted:>4d}/{row.experiments:<4d} "
              f"{row.injections:7d} {correct} {row.measure_name or 'n/a':>24s} {mean}")


if __name__ == "__main__":
    main()
