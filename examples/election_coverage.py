#!/usr/bin/env python3
"""Chapter 5 worked example: leader election, coverage, and error correlation.

Reproduces the two evaluations of Section 5.4 / 5.8:

* **Coverage** — studies 1-3 inject ``bfault1``/``yfault1``/``gfault1`` into
  the leader; the study measure checks whether the crashed leader was
  restarted, and the stratified-weighted campaign measure combines the
  per-study coverages with the assumed fault occurrence rates.  The restart
  policy's success probability is the ground truth the estimate should
  recover.
* **Correlation** — study 4 injects ``gfault2`` into a follower at the
  moment the leader crashes, study 5 injects ``gfault3`` with no leader
  crash; comparing the fractions of faults that became errors exposes the
  configured correlation.
"""

import argparse

from repro.core.execution import ExecutionConfig, available_backends
from repro.experiments import chapter5_correlation_evaluation, chapter5_coverage_evaluation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=available_backends(), default="serial")
    parser.add_argument("--workers", type=int, default=None)
    options = parser.parse_args()
    execution = ExecutionConfig(backend=options.backend, workers=options.workers)

    print("=== Evaluation 1: coverage of an error in the leader ===")
    coverage = chapter5_coverage_evaluation(experiments=6, recovery_probability=0.7, seed=2,
                                            execution=execution)
    for study, value in coverage.per_study_coverage.items():
        accepted, total = coverage.per_study_accepted[study]
        print(f"  {study}: coverage={value:.2f}  (accepted {accepted}/{total} experiments)")
    print(f"  stratified-weighted overall coverage: {coverage.overall_coverage:.2f}")
    print(f"  ground truth (restart success probability): {coverage.recovery_probability:.2f}")

    print("\n=== Evaluation 2: correlation of leader crash with follower errors ===")
    correlation = chapter5_correlation_evaluation(
        experiments=8, correlated_probability=0.8, uncorrelated_probability=0.25, seed=3,
        execution=execution,
    )
    print(f"  fraction of follower faults that became errors, leader crashed:   "
          f"{correlation.correlated_error_fraction:.2f} "
          f"(configured {correlation.configured_correlated_probability:.2f})")
    print(f"  fraction of follower faults that became errors, no leader crash:  "
          f"{correlation.uncorrelated_error_fraction:.2f} "
          f"(configured {correlation.configured_uncorrelated_probability:.2f})")
    for study, (accepted, total) in correlation.accepted.items():
        print(f"  {study}: accepted {accepted}/{total} experiments")


if __name__ == "__main__":
    main()
