"""Tests for global-timeline construction and injection verification."""

import pytest

from repro.analysis.clock_sync import ClockBounds
from repro.analysis.global_timeline import (
    GlobalEventKind,
    GlobalTimeline,
    GlobalTimelineEntry,
    build_global_timeline,
)
from repro.analysis.verification import (
    expression_regions,
    filter_experiments,
    verify_experiment,
)
from repro.core.expression import And, Not, Or, StateAtom
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.timeline import LocalTimeline
from repro.errors import AnalysisError


def bounds_with_uncertainty(width_seconds):
    half = width_seconds / 2.0
    return ClockBounds(alpha_lower=-half, alpha_upper=half, beta_lower=1.0, beta_upper=1.0)


def driver_timeline(active_at, idle_at, host="hosta"):
    timeline = LocalTimeline(
        machine="driver",
        state_machines=("driver", "observer"),
        global_states=("BEGIN", "IDLE", "ACTIVE", "EXIT"),
        events=("GO_ACTIVE", "GO_IDLE", "default"),
    )
    timeline.add_state_change("default", "IDLE", time=0.01, host=host)
    timeline.add_state_change("GO_ACTIVE", "ACTIVE", time=active_at, host=host)
    timeline.add_state_change("GO_IDLE", "IDLE", time=idle_at, host=host)
    return timeline


def observer_timeline(injection_at, host="hostb"):
    faults = FaultSpecification.from_definitions(
        [
            FaultDefinition(
                "fstate",
                And(StateAtom("driver", "ACTIVE"), StateAtom("observer", "READY")),
                FaultTrigger.ALWAYS,
            )
        ]
    )
    timeline = LocalTimeline(
        machine="observer",
        state_machines=("driver", "observer"),
        global_states=("BEGIN", "READY", "EXIT"),
        events=("DONE", "default"),
        faults=faults,
    )
    timeline.add_state_change("default", "READY", time=0.005, host=host)
    timeline.add_fault_injection("fstate", time=injection_at, host=host)
    return timeline


def fault_specs():
    return {
        "driver": FaultSpecification(),
        "observer": observer_timeline(0.0).faults,
    }


class TestGlobalTimelineConstruction:
    def test_projection_applies_clock_bounds(self):
        bounds = {
            "hosta": ClockBounds(alpha_lower=0.0009, alpha_upper=0.0011,
                                 beta_lower=1.0, beta_upper=1.0),
        }
        timeline = LocalTimeline(machine="m", state_machines=("m",),
                                 global_states=("A",), events=("e",))
        timeline.add_state_change("e", "A", time=0.5, host="hosta")
        built = build_global_timeline({"m": timeline}, bounds)
        entry = built.entries[0]
        assert entry.lower == pytest.approx(0.5 - 0.0011)
        assert entry.upper == pytest.approx(0.5 - 0.0009)
        assert entry.kind is GlobalEventKind.STATE_CHANGE

    def test_missing_host_bounds_rejected(self):
        timeline = LocalTimeline(machine="m", global_states=("A",), events=("e",))
        timeline.add_state_change("e", "A", time=0.5, host="mystery")
        with pytest.raises(AnalysisError):
            build_global_timeline({"m": timeline}, {})

    def test_entries_sorted_and_machines_listed(self):
        bounds = {"hosta": ClockBounds.identity(), "hostb": ClockBounds.identity()}
        built = build_global_timeline(
            {"driver": driver_timeline(0.1, 0.2), "observer": observer_timeline(0.15)}, bounds
        )
        midpoints = [entry.midpoint for entry in built.entries]
        assert midpoints == sorted(midpoints)
        assert set(built.machines()) == {"driver", "observer"}

    def test_state_periods(self):
        bounds = {"hosta": ClockBounds.identity()}
        built = build_global_timeline({"driver": driver_timeline(0.1, 0.2)}, bounds)
        periods = built.state_periods("driver")
        assert [period.state for period in periods] == ["IDLE", "ACTIVE", "IDLE"]
        active = built.state_periods_for_state("driver", "ACTIVE")[0]
        assert active.entry.midpoint == pytest.approx(0.1)
        assert active.exit.midpoint == pytest.approx(0.2)
        # The final IDLE period is open-ended.
        assert periods[-1].exit is None

    def test_event_occurrences_match_previous_state(self):
        bounds = {"hosta": ClockBounds.identity()}
        built = build_global_timeline({"driver": driver_timeline(0.1, 0.2)}, bounds)
        occurrences = built.event_occurrences("driver", "IDLE", "GO_ACTIVE")
        assert len(occurrences) == 1
        assert built.event_occurrences("driver", "ACTIVE", "GO_ACTIVE") == []

    def test_fault_injection_selector(self):
        bounds = {"hosta": ClockBounds.identity(), "hostb": ClockBounds.identity()}
        built = build_global_timeline(
            {"driver": driver_timeline(0.1, 0.2), "observer": observer_timeline(0.15)}, bounds
        )
        assert len(built.fault_injections()) == 1
        assert len(built.fault_injections("observer")) == 1
        assert built.fault_injections("driver") == []

    def test_invalid_entry_bounds_rejected(self):
        with pytest.raises(AnalysisError):
            GlobalTimelineEntry(
                machine="m", kind=GlobalEventKind.STATE_CHANGE,
                lower=2.0, upper=1.0, host="h", local_time=1.5,
            )

    def test_empty_timeline_properties(self):
        timeline = GlobalTimeline()
        assert timeline.start == 0.0
        assert timeline.end == 0.0
        assert timeline.machines() == ()


class TestVerification:
    def run_case(self, injection_at, uncertainty=0.0002, active=(0.1, 0.2)):
        bounds = {
            "hosta": bounds_with_uncertainty(uncertainty),
            "hostb": bounds_with_uncertainty(uncertainty),
        }
        built = build_global_timeline(
            {
                "driver": driver_timeline(active[0], active[1]),
                "observer": observer_timeline(injection_at),
            },
            bounds,
        )
        return verify_experiment(built, fault_specs())

    def test_injection_well_inside_state_is_correct(self):
        verification = self.run_case(injection_at=0.15)
        assert verification.correct
        assert verification.injections_checked == 1
        assert verification.verdicts[0].correct

    def test_injection_after_state_exit_is_incorrect(self):
        verification = self.run_case(injection_at=0.25)
        assert not verification.correct
        assert verification.incorrect_verdicts[0].fault == "fstate"

    def test_injection_before_state_entry_is_incorrect(self):
        verification = self.run_case(injection_at=0.05)
        assert not verification.correct

    def test_injection_near_boundary_is_conservatively_rejected(self):
        # The injection is 50 microseconds before the state exit but the
        # clock uncertainty is 400 microseconds, so correctness cannot be
        # proven and the paper's conservative rule rejects it.
        verification = self.run_case(injection_at=0.19995, uncertainty=0.0004)
        assert not verification.correct

    def test_unknown_fault_is_incorrect(self):
        bounds = {"hosta": ClockBounds.identity(), "hostb": ClockBounds.identity()}
        built = build_global_timeline(
            {"driver": driver_timeline(0.1, 0.2), "observer": observer_timeline(0.15)}, bounds
        )
        verification = verify_experiment(built, {"observer": FaultSpecification()})
        assert not verification.correct
        assert "not in the fault specification" in verification.verdicts[0].reason

    def test_missing_faults_reported_when_requested(self):
        bounds = {"hosta": ClockBounds.identity()}
        built = build_global_timeline({"driver": driver_timeline(0.1, 0.2)}, bounds)
        verification = verify_experiment(built, fault_specs(), require_all_faults=True)
        assert ("observer", "fstate") in verification.missing_faults
        assert verification.correct  # no *incorrect* injections

    def test_same_machine_fault_uses_local_order(self):
        # A fault triggered by the injected machine's own state entry shares
        # its timestamp with the state change; local ordering proves it.
        faults = FaultSpecification.from_definitions(
            [FaultDefinition("own", StateAtom("driver", "ACTIVE"), FaultTrigger.ALWAYS)]
        )
        timeline = driver_timeline(0.1, 0.2)
        timeline.faults = faults
        timeline.add_fault_injection("own", time=0.1, host="hosta")
        built = build_global_timeline(
            {"driver": timeline}, {"hosta": bounds_with_uncertainty(0.0004)}
        )
        verification = verify_experiment(built, {"driver": faults})
        assert verification.correct

    def test_filter_experiments_splits_accepted_and_discarded(self):
        bounds = {"hosta": ClockBounds.identity(), "hostb": ClockBounds.identity()}
        good = build_global_timeline(
            {"driver": driver_timeline(0.1, 0.2), "observer": observer_timeline(0.15)}, bounds
        )
        bad = build_global_timeline(
            {"driver": driver_timeline(0.1, 0.2), "observer": observer_timeline(0.35)}, bounds
        )
        accepted, discarded = filter_experiments([good, bad], fault_specs())
        assert accepted == [good]
        assert discarded == [bad]


class TestExpressionRegions:
    def build(self):
        bounds = {"hosta": ClockBounds.identity(), "hostb": ClockBounds.identity()}
        return build_global_timeline(
            {"driver": driver_timeline(0.1, 0.2), "observer": observer_timeline(0.15)}, bounds
        )

    def test_atom_regions(self):
        timeline = self.build()
        regions = expression_regions(timeline, StateAtom("driver", "ACTIVE"), timeline.horizon)
        assert regions.certain.contains(0.15)
        assert not regions.certain.contains(0.25)

    def test_and_or_not_regions(self):
        timeline = self.build()
        horizon = timeline.horizon
        conjunction = And(StateAtom("driver", "ACTIVE"), StateAtom("observer", "READY"))
        regions = expression_regions(timeline, conjunction, horizon)
        assert regions.certain.contains(0.15)
        negation = Not(StateAtom("driver", "ACTIVE"))
        neg_regions = expression_regions(timeline, negation, horizon)
        assert neg_regions.certain.contains(0.05)
        assert not neg_regions.certain.contains(0.15)
        disjunction = Or(StateAtom("driver", "ACTIVE"), StateAtom("driver", "IDLE"))
        dis_regions = expression_regions(timeline, disjunction, horizon)
        assert dis_regions.certain.contains(0.05)
        assert dis_regions.certain.contains(0.15)
