"""Tests of the persistent campaign store: format, manifest, resume.

The resume tests enforce the store's headline contract: a campaign
interrupted after N of M experiments and resumed from its store produces
campaign measures **bit-identical** to an uninterrupted run, with only the
missing experiments re-simulated — and post-hoc re-analysis from the store
invokes the simulator exactly zero times.

The record-format properties run twice, mirroring the statistics property
tests: against a deterministic seeded table (always), and against
hypothesis-generated payloads when hypothesis is installed.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.analysis.clock_sync import SyncMessageRecord
from repro.apps.toggle import build_toggle_study
from repro.core.campaign import CampaignConfig, CampaignRunner, ExperimentResult
from repro.core.execution import (
    PROCESS_POOL,
    ExecutionConfig,
    available_backends,
)
from repro.core.expression import parse_expression
from repro.core.specs.fault_spec import (
    FaultDefinition,
    FaultSpecification,
    FaultTrigger,
)
from repro.core.timeline import LocalTimeline
from repro.errors import StoreError, StoreIntegrityError
from repro.measures import (
    MeasureStep,
    SimpleSamplingMeasure,
    StateTuple,
    StudyMeasure,
    TotalDuration,
    estimate_campaign_measure,
)
from repro.pipeline import run_and_analyze
from repro.sim.clock import ClockParameters
from repro.store import (
    CampaignStore,
    StoredStudyConfig,
    decode_record,
    encode_record,
    record_roundtrips,
    result_to_dict,
    study_fingerprint,
)
from repro.store.manifest import Manifest, expected_seeds

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ModuleNotFoundError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

needs_pool = pytest.mark.skipif(
    PROCESS_POOL not in available_backends(),
    reason="process-pool backend needs the fork start method",
)


# ---------------------------------------------------------------------------
# Synthetic payloads
# ---------------------------------------------------------------------------


def synthetic_result(seed: int, extra_times: list[float] | None = None) -> ExperimentResult:
    """A randomized ExperimentResult exercising every serialized field."""
    rng = random.Random(seed)
    machines = [f"m{i}" for i in range(rng.randint(1, 3))]
    hosts = tuple(f"h{i}" for i in range(rng.randint(1, 3)))
    timelines: dict[str, LocalTimeline] = {}
    for machine in machines:
        faults = FaultSpecification.from_definitions(
            [
                FaultDefinition(
                    name=f"f{machine}",
                    expression=parse_expression(f"({machine}:UP) & ({machine}:READY)"),
                    trigger=rng.choice(list(FaultTrigger)),
                )
            ]
            if rng.random() < 0.8
            else []
        )
        timeline = LocalTimeline(
            machine=machine,
            state_machines=tuple(machines),
            global_states=("UP", "READY", "CRASH"),
            events=("go", "stop"),
            faults=faults,
        )
        times = [rng.uniform(0.0, 5.0) for _ in range(rng.randint(0, 6))]
        times += list(extra_times or [])
        for time in times:
            host = rng.choice(hosts)
            if rng.random() < 0.25 and len(faults):
                timeline.add_fault_injection(f"f{machine}", time, host)
            else:
                timeline.add_state_change("go", rng.choice(("UP", "READY")), time, host)
        if rng.random() < 0.3:
            timeline.add_note("a free-form user note")
        timelines[machine] = timeline
    return ExperimentResult(
        study="synthetic",
        index=rng.randint(0, 99),
        seed=rng.getrandbits(64),
        local_timelines=timelines,
        sync_messages=[
            SyncMessageRecord(
                rng.choice(hosts), rng.choice(hosts),
                rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
            )
            for _ in range(rng.randint(0, 5))
        ],
        hosts=hosts,
        reference_host=hosts[0],
        host_clock_parameters={
            host: ClockParameters(
                offset=rng.uniform(-0.01, 0.01),
                rate=1.0 + rng.uniform(-100, 100) * 1e-6,
                granularity=rng.choice((0.0, 1e-6)),
            )
            for host in hosts
        },
        completed=rng.random() < 0.8,
        aborted=rng.random() < 0.1,
        abort_reason=rng.choice((None, "event cap reached (5 events)")),
        duration=rng.uniform(0.0, 10.0),
        stats={"events": rng.randint(0, 10_000)},
    )


def check_roundtrip(result: ExperimentResult) -> None:
    assert record_roundtrips(result)
    decoded = decode_record(encode_record(result))
    # Canonical-dictionary equality is bit-exact float equality.
    assert result_to_dict(decoded) == result_to_dict(result)
    # And the dataclasses themselves compare equal (frozen records, faults).
    assert decoded.seed == result.seed
    for machine, timeline in result.local_timelines.items():
        other = decoded.local_timelines[machine]
        assert other.records == timeline.records
        assert other.faults == timeline.faults
        assert other.notes == timeline.notes
    assert decoded.sync_messages == result.sync_messages
    assert decoded.host_clock_parameters == result.host_clock_parameters


# ---------------------------------------------------------------------------
# Record format round trips
# ---------------------------------------------------------------------------


class TestRecordFormat:
    def test_seeded_roundtrips(self):
        for seed in range(40):
            check_roundtrip(synthetic_result(seed))

    def test_extreme_floats_roundtrip(self):
        # Shortest-roundtrip repr must preserve these bit patterns exactly.
        extremes = [1e-308, 1e308, 2.0**-52, 0.1 + 0.2, 3.141592653589793]
        check_roundtrip(synthetic_result(1, extra_times=extremes))

    def test_real_experiment_roundtrips(self):
        study = build_toggle_study(
            "rt", dwell_time=0.02, timeslice=0.002, cycles=3, experiments=1, seed=9
        )
        check_roundtrip(CampaignRunner.run_experiment_of(study, 0))

    def test_checksum_tamper_detected(self):
        line = encode_record(synthetic_result(3))
        envelope = json.loads(line)
        envelope["payload"]["duration"] = envelope["payload"]["duration"] + 1.0
        with pytest.raises(StoreIntegrityError, match="checksum"):
            decode_record(json.dumps(envelope))

    def test_truncated_line_detected(self):
        line = encode_record(synthetic_result(4))
        with pytest.raises(StoreIntegrityError):
            decode_record(line[: len(line) // 2])

    def test_unknown_format_version_detected(self):
        line = encode_record(synthetic_result(5))
        envelope = json.loads(line)
        envelope["format"] = 999
        with pytest.raises(StoreIntegrityError, match="format"):
            decode_record(json.dumps(envelope))

    if HAVE_HYPOTHESIS:

        @given(
            seed=st.integers(min_value=0, max_value=2**32 - 1),
            extra_times=st.lists(
                st.floats(
                    min_value=0.0,
                    max_value=1e9,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                max_size=6,
            ),
        )
        @settings(max_examples=60, deadline=None)
        def test_hypothesis_roundtrips(self, seed, extra_times):
            check_roundtrip(synthetic_result(seed, extra_times=extra_times))


# ---------------------------------------------------------------------------
# Campaign fixtures
# ---------------------------------------------------------------------------


def build_campaign(experiments: int = 3, *, seed_a: int = 11, seed_b: int = 22) -> CampaignConfig:
    study_a = build_toggle_study(
        "alpha", dwell_time=0.02, timeslice=0.002, cycles=3,
        experiments=experiments, seed=seed_a,
    )
    study_b = build_toggle_study(
        "beta", dwell_time=0.03, timeslice=0.002, cycles=3,
        experiments=experiments, seed=seed_b,
    )
    return CampaignConfig(name="store-test", studies=[study_a, study_b])


DRIVER_MEASURE = StudyMeasure(
    name="driver-active",
    steps=(MeasureStep(StateTuple("driver", "ACTIVE"), TotalDuration("T")),),
)


def campaign_measures_of(analysis) -> dict:
    """Every downstream quantity, in exactly comparable (bit-exact) form."""
    study_measures = {name: DRIVER_MEASURE for name in analysis.studies}
    estimate = estimate_campaign_measure(
        SimpleSamplingMeasure("driver-active"), analysis, study_measures
    )
    return {
        "values": analysis.measure_values(study_measures),
        "acceptance": analysis.acceptance_summary(),
        "seeds": {
            name: [e.result.seed for e in study.experiments]
            for name, study in analysis.studies.items()
        },
        "estimate": estimate.to_dict(),
    }


# ---------------------------------------------------------------------------
# Manifest and fingerprints
# ---------------------------------------------------------------------------


class TestManifest:
    def test_fingerprint_is_stable_and_seed_sensitive(self):
        campaign = build_campaign()
        again = build_campaign()
        assert study_fingerprint(campaign.studies[0]) == study_fingerprint(again.studies[0])
        reseeded = build_campaign(seed_a=99)
        assert study_fingerprint(campaign.studies[0]) != study_fingerprint(reseeded.studies[0])

    def test_fingerprint_ignores_experiment_count(self):
        # Growing a campaign must be able to reuse its archived records.
        small = build_campaign(experiments=2)
        large = build_campaign(experiments=5)
        assert study_fingerprint(small.studies[0]) == study_fingerprint(large.studies[0])

    def test_fingerprint_ignores_measure_phase_weight(self):
        # Re-weighting a stratified estimate is re-analysis, not a new
        # configuration: archived records must stay reusable.
        from dataclasses import replace

        study = build_campaign().studies[0]
        assert study_fingerprint(study) == study_fingerprint(replace(study, weight=2.5))

    def test_fingerprint_sees_declarative_changes(self):
        from dataclasses import replace

        study = build_campaign().studies[0]
        assert study_fingerprint(study) != study_fingerprint(
            replace(study, experiment_timeout=study.experiment_timeout * 2)
        )

    def test_attach_rejects_other_campaign_name(self, tmp_path):
        store = CampaignStore(tmp_path / "c")
        store.attach(build_campaign())
        other = build_campaign()
        other.name = "different-campaign"
        with pytest.raises(StoreIntegrityError, match="different-campaign"):
            store.attach(other)

    def test_attach_rejects_changed_study_configuration(self, tmp_path):
        store = CampaignStore(tmp_path / "c")
        store.attach(build_campaign())
        with pytest.raises(StoreIntegrityError, match="fingerprint"):
            store.attach(build_campaign(seed_a=99))

    def test_attach_extends_manifest_with_new_studies(self, tmp_path):
        store = CampaignStore(tmp_path / "c")
        store.attach(build_campaign())
        extended = build_campaign()
        extended.studies.append(
            build_toggle_study(
                "gamma", dwell_time=0.02, timeslice=0.002, cycles=3,
                experiments=1, seed=33,
            )
        )
        manifest = store.attach(extended)
        assert set(manifest.studies) == {"alpha", "beta", "gamma"}
        # Re-attaching the original (fewer studies) keeps gamma's entry.
        manifest = store.attach(build_campaign())
        assert "gamma" in manifest.studies

    def test_manifest_records_git_sha_and_seeds(self, tmp_path):
        store = CampaignStore(tmp_path / "c")
        campaign = build_campaign()
        manifest = store.attach(campaign)
        assert manifest.campaign == "store-test"
        assert manifest.git_sha  # "unknown" outside a checkout, never empty
        assert manifest.studies["alpha"].seed == 11
        reread = store.read_manifest()
        assert reread.to_dict() == manifest.to_dict()

    def test_expected_seeds_follow_derivation_contract(self):
        study = build_campaign().studies[0]
        seeds = expected_seeds(study)
        assert seeds[0] == CampaignRunner._experiment_seed(study, 0)
        assert len(seeds) == study.experiments

    def test_manifest_version_guard(self):
        with pytest.raises(StoreIntegrityError, match="manifest format"):
            Manifest.from_dict({"format_version": 999, "campaign": "x", "studies": {}})


# ---------------------------------------------------------------------------
# Store-backed execution and re-analysis
# ---------------------------------------------------------------------------


class TestStoreBackedRuns:
    def test_store_backed_run_matches_plain_run(self, tmp_path):
        campaign = build_campaign()
        plain = run_and_analyze(campaign)
        stored = run_and_analyze(campaign, store=CampaignStore(tmp_path / "c"))
        assert campaign_measures_of(stored) == campaign_measures_of(plain)

    def test_store_receives_raw_payloads_but_analysis_is_slimmed(self, tmp_path):
        campaign = build_campaign(experiments=1)
        store = CampaignStore(tmp_path / "c")
        analysis = run_and_analyze(campaign, store=store)
        experiment = analysis.study("alpha").experiments[0]
        assert experiment.result.local_timelines == {}
        assert experiment.result.sync_messages == []
        loaded = store.load_study_records("alpha")
        assert set(loaded[0].local_timelines) == {"driver", "observer"}
        assert loaded[0].sync_messages

    def test_keep_raw_results_with_store(self, tmp_path):
        campaign = build_campaign(experiments=1)
        analysis = run_and_analyze(
            campaign,
            ExecutionConfig(keep_raw_results=True),
            store=CampaignStore(tmp_path / "c"),
        )
        assert analysis.study("alpha").experiments[0].result.local_timelines

    def test_store_accepts_path_argument(self, tmp_path):
        campaign = build_campaign(experiments=1)
        run_and_analyze(campaign, store=tmp_path / "by-path")
        assert CampaignStore(tmp_path / "by-path").exists()

    def test_append_rejects_slimmed_payloads(self, tmp_path):
        from dataclasses import replace

        store = CampaignStore(tmp_path / "c")
        result = synthetic_result(7)
        with pytest.raises(StoreError, match="raw payload"):
            store.append(replace(result, local_timelines={}, sync_messages=[]))

    @needs_pool
    def test_pool_backend_streams_and_matches_serial(self, tmp_path):
        campaign = build_campaign()
        serial = run_and_analyze(campaign, store=CampaignStore(tmp_path / "s"))
        pooled = run_and_analyze(
            campaign,
            ExecutionConfig.process_pool(workers=2),
            store=CampaignStore(tmp_path / "p"),
        )
        assert campaign_measures_of(serial) == campaign_measures_of(pooled)
        # Both stores hold every record.
        for directory in ("s", "p"):
            store = CampaignStore(tmp_path / directory)
            reports = store.verify()
            assert all(report.valid == 3 for report in reports.values())

    def test_load_results_orders_by_index(self, tmp_path):
        campaign = build_campaign()
        store = CampaignStore(tmp_path / "c")
        run_and_analyze(campaign, store=store)
        result = store.load_results(campaign)
        for study in campaign.studies:
            indices = [e.index for e in result.studies[study.name].experiments]
            assert indices == sorted(indices) == list(range(study.experiments))


class TestZeroSimulationReanalysis:
    def test_load_analysis_never_invokes_the_simulator(self, tmp_path, monkeypatch):
        campaign = build_campaign()
        store = CampaignStore(tmp_path / "c")
        baseline = campaign_measures_of(run_and_analyze(campaign, store=store))

        def forbidden(self, study, index):  # pragma: no cover - must not run
            raise AssertionError("simulator invoked during store re-analysis")

        monkeypatch.setattr(CampaignRunner, "run_experiment", forbidden)
        # With the original configuration...
        assert campaign_measures_of(store.load_analysis(campaign)) == baseline
        # ...and purely from disk, via reconstructed stub configurations.
        from_disk = campaign_measures_of(store.load_analysis())
        assert from_disk == baseline

    def test_fully_recorded_campaign_resumes_without_simulation(
        self, tmp_path, monkeypatch
    ):
        campaign = build_campaign()
        store = CampaignStore(tmp_path / "c")
        baseline = campaign_measures_of(run_and_analyze(campaign, store=store))

        def forbidden(self, study, index):  # pragma: no cover - must not run
            raise AssertionError("simulator invoked on a fully recorded campaign")

        monkeypatch.setattr(CampaignRunner, "run_experiment", forbidden)
        resumed = run_and_analyze(campaign, store=store)
        assert campaign_measures_of(resumed) == baseline

    def test_loaded_stub_configs_cannot_run_the_runtime_phase(self, tmp_path):
        campaign = build_campaign(experiments=1)
        store = CampaignStore(tmp_path / "c")
        run_and_analyze(campaign, store=store)
        loaded = store.load_results()
        stub = loaded.studies["alpha"].config
        assert isinstance(stub, StoredStudyConfig)
        assert not hasattr(stub, "nodes")  # nothing for the runtime phase
        assert set(stub.fault_specifications()) == {"driver", "observer"}


# ---------------------------------------------------------------------------
# The headline contract: interrupt, resume, bit-identical measures
# ---------------------------------------------------------------------------


class KilledMidway(RuntimeError):
    """Stands in for SIGKILL: aborts the campaign loop mid-flight."""


class TestResumeRoundTrip:
    def interrupt_after(self, store: CampaignStore, campaign: CampaignConfig, count: int):
        """Run the campaign but die after ``count`` completed experiments."""
        completed = 0

        def progress(name: str, done: int, total: int) -> None:
            nonlocal completed
            completed += 1
            if completed >= count:
                raise KilledMidway

        with pytest.raises(KilledMidway):
            run_and_analyze(campaign, ExecutionConfig(progress=progress), store=store)

    def test_interrupted_campaign_resumes_bit_identical(self, tmp_path, monkeypatch):
        campaign = build_campaign(experiments=3)  # 6 experiments total
        baseline = campaign_measures_of(run_and_analyze(campaign))

        store = CampaignStore(tmp_path / "c")
        self.interrupt_after(store, campaign, count=3)
        reports = store.verify()
        assert sum(report.valid for report in reports.values()) == 3

        simulated: list[tuple[str, int]] = []
        original = CampaignRunner.run_experiment

        def counting(self, study, index):
            simulated.append((study.name, index))
            return original(self, study, index)

        monkeypatch.setattr(CampaignRunner, "run_experiment", counting)
        resumed = run_and_analyze(campaign, store=store)
        # Only the three missing experiments were simulated...
        assert len(simulated) == 3
        # ...and every downstream number is bit-identical to the
        # uninterrupted run: measure values, acceptance, seeds, and the
        # campaign estimate with its full moment summary.
        assert campaign_measures_of(resumed) == baseline

    def test_resume_tolerates_torn_trailing_record(self, tmp_path, monkeypatch):
        campaign = build_campaign(experiments=3)
        baseline = campaign_measures_of(run_and_analyze(campaign))

        store = CampaignStore(tmp_path / "c")
        run_and_analyze(campaign, store=store)
        # Tear the last record of alpha's file in half, as a kill -9
        # between write and flush would.
        path = store.records_path("alpha")
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines), encoding="utf-8")
        assert store.verify()["alpha"].corrupt == 1

        simulated: list[tuple[str, int]] = []
        original = CampaignRunner.run_experiment

        def counting(self, study, index):
            simulated.append((study.name, index))
            return original(self, study, index)

        monkeypatch.setattr(CampaignRunner, "run_experiment", counting)
        resumed = run_and_analyze(campaign, store=store)
        assert simulated == [("alpha", 2)]
        assert campaign_measures_of(resumed) == baseline
        # The repaired record superseded nothing (the torn line is dead).
        assert store.verify()["alpha"].valid == 3

    def test_records_with_wrong_seeds_are_not_resumed(self, tmp_path):
        from dataclasses import replace

        campaign = build_campaign(experiments=2)
        store = CampaignStore(tmp_path / "c")
        run_and_analyze(campaign, store=store)
        study = campaign.studies[0]
        records = store.load_study_records("alpha")
        # Forge a record whose seed does not match the derivation contract.
        store.append(replace(records[0], seed=12345))
        resumable = store.resumable_records(study)
        assert resumable[0].seed == expected_seeds(study)[0]

    def test_growing_a_campaign_reuses_existing_records(self, tmp_path, monkeypatch):
        small = build_campaign(experiments=2)
        store = CampaignStore(tmp_path / "c")
        run_and_analyze(small, store=store)

        simulated: list[tuple[str, int]] = []
        original = CampaignRunner.run_experiment

        def counting(self, study, index):
            simulated.append((study.name, index))
            return original(self, study, index)

        monkeypatch.setattr(CampaignRunner, "run_experiment", counting)
        large = build_campaign(experiments=4)
        grown = run_and_analyze(large, store=store)
        assert sorted(simulated) == [("alpha", 2), ("alpha", 3), ("beta", 2), ("beta", 3)]
        assert campaign_measures_of(grown) == campaign_measures_of(run_and_analyze(large))

    @needs_pool
    def test_resume_crosses_backends_bit_identically(self, tmp_path):
        campaign = build_campaign(experiments=3)
        baseline = campaign_measures_of(run_and_analyze(campaign))
        store = CampaignStore(tmp_path / "c")
        self.interrupt_after(store, campaign, count=2)
        # Resume on the *pool* backend from records written serially.
        resumed = run_and_analyze(
            campaign, ExecutionConfig.process_pool(workers=2), store=store
        )
        assert campaign_measures_of(resumed) == baseline

    def test_progress_counts_resumed_experiments_as_done(self, tmp_path):
        campaign = build_campaign(experiments=3)
        store = CampaignStore(tmp_path / "c")
        self.interrupt_after(store, campaign, count=3)
        events: list[tuple[str, int, int]] = []
        run_and_analyze(
            campaign,
            ExecutionConfig(progress=lambda *event: events.append(event)),
            store=store,
        )
        # Alpha's three experiments were loaded from the store (no fresh
        # events), beta's three ran — and because loaded records pre-count
        # as done, the counts still climb to (total, total).
        assert events == [("beta", 1, 3), ("beta", 2, 3), ("beta", 3, 3)]
