"""Tests for local timelines and the on-disk timeline format."""

import pytest
from hypothesis import given, strategies as st

from repro.core.expression import StateAtom
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.timeline import (
    LocalTimeline,
    RecordKind,
    format_local_timeline,
    parse_local_timeline,
)
from repro.errors import TimelineFormatError


def sample_timeline():
    faults = FaultSpecification.from_definitions(
        [
            FaultDefinition("bfault1", StateAtom("black", "LEAD"), FaultTrigger.ALWAYS),
            FaultDefinition("gfault3", StateAtom("green", "FOLLOW"), FaultTrigger.ONCE),
        ]
    )
    timeline = LocalTimeline(
        machine="black",
        state_machines=("black", "yellow", "green"),
        global_states=("BEGIN", "INIT", "ELECT", "LEAD", "FOLLOW", "CRASH", "EXIT"),
        events=("START", "INIT_DONE", "LEADER", "FOLLOWER", "CRASH", "default"),
        faults=faults,
    )
    timeline.add_state_change("default", "INIT", time=0.001, host="hosta")
    timeline.add_state_change("INIT_DONE", "ELECT", time=0.010002, host="hosta")
    timeline.add_state_change("LEADER", "LEAD", time=0.0203, host="hosta")
    timeline.add_fault_injection("bfault1", time=0.0203, host="hosta")
    timeline.add_state_change("CRASH", "CRASH", time=0.0251, host="hosta")
    timeline.add_state_change("default", "INIT", time=0.100, host="hostb")
    timeline.add_note("restarted on hostb")
    return timeline


class TestLocalTimeline:
    def test_selectors(self):
        timeline = sample_timeline()
        assert len(timeline.state_changes()) == 5
        assert len(timeline.fault_injections()) == 1
        assert timeline.final_state() == "INIT"
        assert timeline.hosts() == ("hosta", "hostb")
        assert not timeline.is_empty()

    def test_empty_timeline(self):
        timeline = LocalTimeline(machine="x")
        assert timeline.is_empty()
        assert timeline.final_state() is None
        assert timeline.hosts() == ()

    def test_record_kind_flags(self):
        timeline = sample_timeline()
        assert timeline.records[0].is_state_change()
        assert not timeline.records[0].is_fault_injection()
        assert timeline.fault_injections()[0].is_fault_injection()


class TestTimelineFormat:
    def test_roundtrip(self):
        original = sample_timeline()
        text = format_local_timeline(original)
        parsed = parse_local_timeline(text)
        assert parsed.machine == original.machine
        assert parsed.state_machines == original.state_machines
        assert parsed.global_states == original.global_states
        assert parsed.events == original.events
        assert parsed.faults.names() == original.faults.names()
        assert len(parsed.records) == len(original.records)
        for ours, theirs in zip(original.records, parsed.records):
            assert ours.kind == theirs.kind
            assert ours.host == theirs.host
            assert ours.event == theirs.event
            assert ours.new_state == theirs.new_state
            assert ours.fault == theirs.fault
            assert theirs.time == pytest.approx(ours.time, abs=2e-9)
        assert parsed.notes == original.notes

    def test_format_uses_numeric_record_types(self):
        text = format_local_timeline(sample_timeline())
        timeline_section = text.split("local_timeline\n")[1]
        data_lines = [
            line
            for line in timeline_section.splitlines()
            if line and not line.startswith(("HOST", "NOTE", "end_"))
        ]
        assert all(line.split()[0] in ("0", "1") for line in data_lines)
        assert int(RecordKind.STATE_CHANGE) == 0
        assert int(RecordKind.FAULT_INJECTION) == 1

    def test_format_splits_64_bit_times(self):
        timeline = LocalTimeline(
            machine="m", global_states=("A",), events=("e",), state_machines=("m",)
        )
        # 5 seconds = 5e9 ns needs more than 32 bits.
        timeline.add_state_change("e", "A", time=5.0, host="h")
        text = format_local_timeline(timeline)
        timeline_section = text.split("local_timeline\n")[1]
        record_line = [
            line for line in timeline_section.splitlines() if line.startswith("0 ")
        ][0]
        high, low = int(record_line.split()[3]), int(record_line.split()[4])
        assert (high << 32) | low == 5_000_000_000
        assert high > 0

    def test_unknown_event_rejected_when_formatting(self):
        timeline = LocalTimeline(machine="m", global_states=("A",), events=("e",))
        timeline.add_state_change("mystery", "A", time=0.0, host="h")
        with pytest.raises(TimelineFormatError):
            format_local_timeline(timeline)

    def test_unknown_fault_rejected_when_formatting(self):
        timeline = LocalTimeline(machine="m", global_states=("A",), events=("e",))
        timeline.add_fault_injection("ghost", time=0.0, host="h")
        with pytest.raises(TimelineFormatError):
            format_local_timeline(timeline)

    def test_negative_time_rejected(self):
        timeline = LocalTimeline(machine="m", global_states=("A",), events=("e",))
        timeline.add_state_change("e", "A", time=-1.0, host="h")
        with pytest.raises(TimelineFormatError):
            format_local_timeline(timeline)

    def test_parse_rejects_empty_file(self):
        with pytest.raises(TimelineFormatError):
            parse_local_timeline("")

    def test_parse_rejects_missing_sections(self):
        with pytest.raises(TimelineFormatError):
            parse_local_timeline("black\nstate_machine_list\n0 black\n")

    def test_parse_rejects_bad_indices(self):
        text = (
            "black\nstate_machine_list\n5 black\nend_state_machine_list\n"
            "global_state_list\nend_global_state_list\n"
            "event_list\nend_event_list\nfault_list\nend_fault_list\n"
            "local_timeline\nend_local_timeline\n"
        )
        with pytest.raises(TimelineFormatError):
            parse_local_timeline(text)

    def test_parse_rejects_unknown_record_type(self):
        timeline = sample_timeline()
        text = format_local_timeline(timeline).replace("\n1 0 ", "\n7 0 ")
        with pytest.raises(TimelineFormatError):
            parse_local_timeline(text)


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=30,
    )
)
def test_timestamp_roundtrip_precision(times):
    """The hi/lo 64-bit encoding is lossless to nanosecond precision."""
    timeline = LocalTimeline(
        machine="m", state_machines=("m",), global_states=("A",), events=("e",)
    )
    for time in times:
        timeline.add_state_change("e", "A", time=time, host="h")
    parsed = parse_local_timeline(format_local_timeline(timeline))
    for original, recovered in zip(times, parsed.records):
        assert abs(recovered.time - original) <= 1e-9
