"""Tests for predicate value timelines, predicates, and the Figure 4.2 example."""

import pytest

from repro.analysis.intervals import IntervalSet
from repro.errors import MeasureError
from repro.measures.predicate import EventTuple, PAnd, PNot, POr, StateTuple, TimeWindow
from repro.measures.pvt import PredicateTimeline
from repro.measures.timeline_view import TimelineView
from repro.paper_data import (
    FIGURE_4_2_PAPER_VALUES,
    figure_4_2_observation_functions,
    figure_4_2_predicates,
    figure_4_2_view,
)


def timeline(steps=(), impulses=(), start=0.0, end=100.0):
    return PredicateTimeline(
        steps=IntervalSet.from_pairs(steps), impulses=impulses, start=start, end=end
    )


class TestPredicateTimeline:
    def test_value_at(self):
        pvt = timeline(steps=[(10, 20)], impulses=[5.0])
        assert pvt.value_at(15)
        assert pvt.value_at(5.0)
        assert not pvt.value_at(25)

    def test_steps_clipped_to_extent(self):
        pvt = timeline(steps=[(50, 200)], end=100.0)
        assert pvt.steps.pairs() == ((50, 100),)

    def test_impulses_outside_extent_dropped(self):
        pvt = timeline(impulses=[-5, 20, 150])
        assert pvt.impulses == (20,)

    def test_effective_impulses_exclude_covered_ones(self):
        pvt = timeline(steps=[(10, 20)], impulses=[15, 30])
        assert pvt.effective_impulses() == (30,)

    def test_or_unions_steps_and_impulses(self):
        combined = timeline(steps=[(0, 10)]) | timeline(steps=[(5, 15)], impulses=[50])
        assert combined.steps.pairs() == ((0, 15),)
        assert combined.impulses == (50,)

    def test_and_intersects_steps(self):
        combined = timeline(steps=[(0, 10)]) & timeline(steps=[(5, 15)])
        assert combined.steps.pairs() == ((5, 10),)

    def test_and_keeps_impulses_covered_by_other_side(self):
        left = timeline(impulses=[5, 50])
        right = timeline(steps=[(0, 10)])
        combined = left & right
        assert combined.impulses == (5,)

    def test_not_complements_steps(self):
        negated = ~timeline(steps=[(10, 20)])
        assert negated.steps.pairs() == ((0, 10), (20, 100))

    def test_incompatible_extents_rejected(self):
        with pytest.raises(MeasureError):
            timeline(end=50.0) | timeline(end=100.0)

    def test_transitions_order_and_kinds(self):
        pvt = timeline(steps=[(10, 20)], impulses=[5, 15])
        transitions = pvt.transitions()
        assert [(t.time, t.edge, t.kind) for t in transitions] == [
            (5, "U", "I"), (5, "D", "I"), (10, "U", "S"), (20, "D", "S"),
        ]

    def test_true_duration(self):
        pvt = timeline(steps=[(10, 20), (30, 35)])
        assert pvt.true_duration() == pytest.approx(15)
        assert pvt.true_duration(15, 32) == pytest.approx(7)


class TestPredicates:
    def view(self):
        rows = [
            ("m1", "A", "go", 10.0),
            ("m1", "B", "stop", 20.0),
            ("m2", "X", "tick", 15.0),
        ]
        return TimelineView.from_rows(rows, start=0.0, end=30.0)

    def test_state_tuple_without_window(self):
        pvt = StateTuple("m1", "A").evaluate(self.view())
        assert pvt.steps.pairs() == ((0.0, 10.0),)

    def test_state_tuple_with_window(self):
        pvt = StateTuple("m1", "B", TimeWindow(12, 18)).evaluate(self.view())
        assert pvt.steps.pairs() == ((12.0, 18.0),)

    def test_state_tuple_unknown_state_is_empty(self):
        pvt = StateTuple("m1", "MISSING").evaluate(self.view())
        assert pvt.steps.is_empty

    def test_event_tuple_produces_impulses(self):
        pvt = EventTuple("m2", "X", "tick").evaluate(self.view())
        assert pvt.impulses == (15.0,)
        assert pvt.steps.is_empty

    def test_event_tuple_requires_matching_state(self):
        pvt = EventTuple("m2", "WRONG", "tick").evaluate(self.view())
        assert pvt.impulses == ()

    def test_event_tuple_window_must_be_interval(self):
        with pytest.raises(MeasureError):
            EventTuple("m2", "X", "tick", TimeWindow.instant(15.0))

    def test_operators_build_composites(self):
        predicate = (StateTuple("m1", "A") | StateTuple("m1", "B")) & ~StateTuple("m2", "X")
        assert isinstance(predicate, PAnd)
        pvt = predicate.evaluate(self.view())
        # m2 is in X during [0, 15]; NOT gives [15, 30]; m1 in A or B covers [0, 20].
        assert pvt.steps.pairs() == ((15.0, 20.0),)

    def test_time_window_validation(self):
        with pytest.raises(MeasureError):
            TimeWindow(5, 1)
        assert TimeWindow.instant(3.0).is_instant


class TestFigure42WorkedExample:
    """The worked example of Section 4.3: predicates, timelines, observations."""

    def test_predicate_1_timeline(self):
        view = figure_4_2_view()
        predicate_1, _, _ = figure_4_2_predicates()
        pvt = predicate_1.evaluate(view)
        assert pvt.steps.pairs() == (
            (pytest.approx(12.4), pytest.approx(18.9)),
            (pytest.approx(30.9), pytest.approx(32.3)),
            (pytest.approx(35.6), pytest.approx(38.9)),
        )
        assert pvt.impulses == ()

    def test_predicate_2_timeline(self):
        view = figure_4_2_view()
        _, predicate_2, _ = figure_4_2_predicates()
        pvt = predicate_2.evaluate(view)
        assert pvt.steps.is_empty
        assert pvt.impulses == (pytest.approx(22.3), pytest.approx(26.3))

    def test_predicate_3_timeline(self):
        view = figure_4_2_view()
        _, _, predicate_3 = figure_4_2_predicates()
        pvt = predicate_3.evaluate(view)
        assert pvt.steps.pairs() == (
            (pytest.approx(13.1), pytest.approx(20.0)),
            (pytest.approx(32.3), pytest.approx(37.9)),
        )
        assert pvt.impulses == (11.2, 21.4, 31.2, 40.6)

    @pytest.mark.parametrize("observation_index, label", [
        (0, "count(U, B, 10, 35)"),
        (1, "duration(T, 2, 10, 40)"),
        (2, "instant(U, I, 2, 0, 50)"),
    ])
    def test_observation_values_match_paper(self, observation_index, label):
        view = figure_4_2_view()
        observations = figure_4_2_observation_functions()
        expected = FIGURE_4_2_PAPER_VALUES[label]
        for predicate, paper_value in zip(figure_4_2_predicates(), expected):
            value = observations[observation_index](predicate.evaluate(view))
            assert value == pytest.approx(paper_value, abs=0.11), (label, paper_value)
