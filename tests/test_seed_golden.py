"""Golden-sequence regression tests for the public seed-derivation contract.

``RandomStreams.derive`` is the library's compatibility contract: the
process-pool backend re-derives every experiment's seed inside the worker,
and downstream users may persist derived seeds alongside results.  These
tests pin the derivation output for a fixed table of (master seed, name)
pairs — including the stream-name shapes the runtime actually uses — so
the mapping can never silently drift between library versions.
"""

from repro.sim.rng import RandomStreams

#: Frozen (master seed, stream name) -> derived 64-bit seed table.
#: Regenerating these values is a BREAKING CHANGE to the public contract;
#: any edit here must be called out explicitly in the release notes.
GOLDEN_DERIVATIONS = {
    (0, "experiment:toggle:0"): 13078646609861432629,
    (0, "experiment:toggle:1"): 6009498735873911444,
    (0, "host-clocks"): 5217644838025651939,
    (1, "experiment:toggle:0"): 16802013298981875441,
    (7, "experiment:study:0"): 6224796762065466819,
    (42, "experiment:leader-election:0"): 9829382035832787435,
    (42, "experiment:leader-election:1"): 7008836501575143090,
    (42, "app:black:start"): 1459552668709825592,
    (123, "spawned"): 11532541253024513582,
    (9223372036854775808, "experiment:big:0"): 14925299052451614287,
    (-5, "experiment:negative:3"): 9842574681961790213,
}


class TestGoldenDerivations:
    def test_derive_matches_golden_table(self):
        for (seed, name), expected in GOLDEN_DERIVATIONS.items():
            derived = RandomStreams(seed).derive(name)
            assert derived == expected, (
                f"RandomStreams({seed}).derive({name!r}) drifted: "
                f"got {derived}, pinned {expected}"
            )

    def test_derive_is_stateless(self):
        # Deriving must not depend on which streams were created before.
        streams = RandomStreams(0)
        streams.stream("host-clocks")
        streams.stream("app:black:start")
        assert streams.derive("experiment:toggle:0") == GOLDEN_DERIVATIONS[
            (0, "experiment:toggle:0")
        ]

    def test_spawn_child_seed_is_derived(self):
        # spawn() is defined in terms of derive(), so it inherits the pin.
        parent = RandomStreams(123)
        assert parent.spawn("spawned").seed == GOLDEN_DERIVATIONS[(123, "spawned")]

    def test_stream_is_seeded_from_derive(self):
        # stream(name) must behave exactly like random.Random(derive(name)).
        import random

        streams = RandomStreams(0)
        reference = random.Random(GOLDEN_DERIVATIONS[(0, "host-clocks")])
        assert [streams.stream("host-clocks").random() for _ in range(4)] == [
            reference.random() for _ in range(4)
        ]

    def test_derived_seed_fits_64_bits(self):
        for (seed, name), value in GOLDEN_DERIVATIONS.items():
            assert 0 <= value < 2**64
