"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import RuntimePhaseError
from repro.sim.kernel import SimKernel


def test_kernel_starts_at_zero():
    kernel = SimKernel()
    assert kernel.now == 0.0
    assert kernel.pending == 0
    assert kernel.events_processed == 0


def test_kernel_custom_start_time():
    kernel = SimKernel(start_time=5.0)
    assert kernel.now == 5.0


def test_schedule_and_run_single_event():
    kernel = SimKernel()
    fired = []
    kernel.schedule(1.5, fired.append, "a")
    kernel.run()
    assert fired == ["a"]
    assert kernel.now == pytest.approx(1.5)


def test_events_run_in_time_order():
    kernel = SimKernel()
    order = []
    kernel.schedule(3.0, order.append, "late")
    kernel.schedule(1.0, order.append, "early")
    kernel.schedule(2.0, order.append, "middle")
    kernel.run()
    assert order == ["early", "middle", "late"]


def test_same_time_events_run_in_schedule_order():
    kernel = SimKernel()
    order = []
    for label in ("first", "second", "third"):
        kernel.schedule(1.0, order.append, label)
    kernel.run()
    assert order == ["first", "second", "third"]


def test_schedule_at_absolute_time():
    kernel = SimKernel()
    seen = []
    kernel.schedule_at(2.5, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [pytest.approx(2.5)]


def test_negative_delay_rejected():
    kernel = SimKernel()
    with pytest.raises(RuntimePhaseError):
        kernel.schedule(-0.1, lambda: None)


def test_schedule_in_the_past_rejected():
    kernel = SimKernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(RuntimePhaseError):
        kernel.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    kernel = SimKernel()
    fired = []
    handle = kernel.schedule(1.0, fired.append, "x")
    handle.cancel()
    kernel.run()
    assert fired == []
    assert kernel.events_processed == 0


def test_run_until_stops_before_later_events():
    kernel = SimKernel()
    fired = []
    kernel.schedule(1.0, fired.append, "a")
    kernel.schedule(5.0, fired.append, "b")
    kernel.run(until=2.0)
    assert fired == ["a"]
    assert kernel.now == pytest.approx(2.0)
    kernel.run()
    assert fired == ["a", "b"]


def test_run_max_events_limit():
    kernel = SimKernel()
    fired = []
    for i in range(10):
        kernel.schedule(float(i + 1), fired.append, i)
    kernel.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_are_processed():
    kernel = SimKernel()
    fired = []

    def chain(step):
        fired.append(step)
        if step < 3:
            kernel.schedule(1.0, chain, step + 1)

    kernel.schedule(1.0, chain, 0)
    kernel.run()
    assert fired == [0, 1, 2, 3]
    assert kernel.now == pytest.approx(4.0)


def test_step_returns_false_when_empty():
    kernel = SimKernel()
    assert kernel.step() is False


def test_pending_counts_only_live_events():
    kernel = SimKernel()
    handle = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    assert kernel.pending == 2
    handle.cancel()
    assert kernel.pending == 1


def test_advance_to_moves_time_forward_only():
    kernel = SimKernel()
    kernel.advance_to(4.0)
    assert kernel.now == 4.0
    with pytest.raises(RuntimePhaseError):
        kernel.advance_to(1.0)


def test_events_processed_counter():
    kernel = SimKernel()
    for i in range(5):
        kernel.schedule(float(i), lambda: None)
    kernel.run()
    assert kernel.events_processed == 5


def test_cancelling_twice_keeps_pending_consistent():
    kernel = SimKernel()
    handle = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert kernel.pending == 1


def test_cancel_after_execution_keeps_pending_consistent():
    kernel = SimKernel()
    handle = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    kernel.step()
    handle.cancel()  # already ran: must not corrupt the live counter
    assert kernel.pending == 1
    kernel.run()
    assert kernel.pending == 0


def test_heap_compaction_drops_dominating_cancelled_entries():
    kernel = SimKernel()
    doomed = [kernel.schedule(1e6 + i, lambda: None) for i in range(200)]
    kernel.schedule(1.0, lambda: None)
    for handle in doomed:
        handle.cancel()
    # The cancelled entries dominated the heap, so it was compacted
    # instead of lingering until their (far-future) times surface.  Only
    # sub-threshold residues may remain.
    assert kernel.compactions >= 1
    assert len(kernel._queue) < SimKernel.COMPACTION_MIN_QUEUE
    assert kernel.pending == 1


def test_small_queues_are_not_compacted():
    kernel = SimKernel()
    handles = [kernel.schedule(10.0 + i, lambda: None) for i in range(10)]
    for handle in handles:
        handle.cancel()
    assert kernel.compactions == 0
    assert kernel.pending == 0


def test_compaction_preserves_execution_order():
    kernel = SimKernel()
    order = []
    live = []
    doomed = []
    # Interleave live and to-be-cancelled events at identical times to
    # stress the (time, seq) ordering across a compaction.
    for i in range(100):
        live.append(kernel.schedule(float(i % 7), order.append, i))
        doomed.append(kernel.schedule(float(i % 7), order.append, -i - 1))
    doomed.extend(kernel.schedule(50.0, order.append, -1000 - i) for i in range(20))
    expected = sorted(range(100), key=lambda i: (i % 7, i))
    for handle in doomed:
        handle.cancel()
    assert kernel.compactions >= 1
    kernel.run()
    assert order == expected
    assert kernel.events_processed == 100


def test_post_at_orders_against_scheduled_events_at_equal_times():
    # Insertion order breaks equal-time ties across the monotone posted
    # lane and the heap, exactly as it does within either lane alone.
    kernel = SimKernel()
    order = []
    kernel.post_at(1.0, order.append, "posted-first")
    kernel.schedule_at(1.0, lambda: order.append("heap-second"))
    kernel.run()
    assert order == ["posted-first", "heap-second"]

    kernel = SimKernel()
    order = []
    kernel.schedule_at(1.0, lambda: order.append("heap-first"))
    kernel.post_at(1.0, order.append, "posted-second")
    kernel.run()
    assert order == ["heap-first", "posted-second"]


def test_post_at_accepts_any_arity_and_out_of_order_times():
    # The monotone lane only holds single-argument, nondecreasing posts;
    # everything else must transparently fall back to the heap and still
    # execute in global (time, insertion) order.
    kernel = SimKernel()
    order = []
    kernel.post_at(1.0, lambda: order.append("zero-arg"))
    kernel.post_at(1.0, order.append, "unary")
    kernel.post_at(1.0, lambda a, b: order.append((a, b)), 1, 2)
    kernel.post_at(0.5, order.append, "out-of-order")
    assert kernel.pending == 4
    kernel.run()
    assert order == ["out-of-order", "zero-arg", "unary", (1, 2)]
    assert kernel.pending == 0
    assert kernel.events_processed == 4


def test_run_until_and_step_drain_posted_lane():
    kernel = SimKernel()
    order = []
    kernel.post_at(1.0, order.append, "p1")
    kernel.schedule_at(2.0, lambda: order.append("h2"))
    kernel.post_at(3.0, order.append, "p3")
    kernel.run(until=2.5)
    assert order == ["p1", "h2"]
    assert kernel.now == 2.5
    assert kernel.step()
    assert order == ["p1", "h2", "p3"]
    assert not kernel.step()
