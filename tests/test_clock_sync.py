"""Tests for offline clock synchronization (bounds always contain the truth)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.clock_sync import (
    ClockBounds,
    SyncMessageRecord,
    estimate_all_bounds,
    estimate_clock_bounds,
    select_reference_host,
)
from repro.errors import ClockSynchronizationError
from repro.sim.clock import ClockParameters, HardwareClock


def make_sync_messages(
    reference_clock,
    machine_clock,
    phases=((0.0, 20), (1.0, 20)),
    delay=200e-6,
    jitter=50e-6,
    seed=1,
):
    """Simulate getstamps exchanges between two hosts with known clocks."""
    import random

    rng = random.Random(seed)
    messages = []
    for phase_start, count in phases:
        for index in range(count):
            send_physical = phase_start + index * 0.001
            recv_physical = send_physical + delay + rng.random() * jitter
            messages.append(
                SyncMessageRecord(
                    sender="ref",
                    receiver="other",
                    send_time=reference_clock.read(send_physical),
                    receive_time=machine_clock.read(recv_physical),
                )
            )
            send_physical = phase_start + index * 0.001 + 0.0005
            recv_physical = send_physical + delay + rng.random() * jitter
            messages.append(
                SyncMessageRecord(
                    sender="other",
                    receiver="ref",
                    send_time=machine_clock.read(send_physical),
                    receive_time=reference_clock.read(recv_physical),
                )
            )
    return messages


class TestClockBounds:
    def test_identity(self):
        bounds = ClockBounds.identity()
        assert bounds.alpha_width == 0.0
        assert bounds.beta_width == 0.0
        assert bounds.contains(0.0, 1.0)
        assert bounds.project_to_reference(5.0) == (pytest.approx(5.0), pytest.approx(5.0))

    def test_projection_with_rectangle_corners(self):
        bounds = ClockBounds(alpha_lower=-0.001, alpha_upper=0.001,
                             beta_lower=0.9999, beta_upper=1.0001)
        lower, upper = bounds.project_to_reference(10.0)
        assert lower < 10.0 < upper
        assert upper - lower == pytest.approx(
            (10.0 + 0.001) / 0.9999 - (10.0 - 0.001) / 1.0001
        )

    def test_projection_uses_polygon_vertices_when_present(self):
        rectangle = ClockBounds(-0.001, 0.001, 0.999, 1.001)
        polygon = ClockBounds(-0.001, 0.001, 0.999, 1.001,
                              vertices=((0.0005, 1.0), (-0.0005, 1.0)))
        loose = rectangle.project_to_reference(100.0)
        tight = polygon.project_to_reference(100.0)
        assert (tight[1] - tight[0]) < (loose[1] - loose[0])

    def test_midpoints(self):
        bounds = ClockBounds(0.0, 2.0, 0.5, 1.5)
        assert bounds.alpha_midpoint == pytest.approx(1.0)
        assert bounds.beta_midpoint == pytest.approx(1.0)


class TestReferenceSelection:
    def test_fastest_clock_selected(self):
        rates = {"hosta": 1.00001, "hostb": 1.00005, "hostc": 0.99998}
        assert select_reference_host(rates) == "hostb"

    def test_empty_rejected(self):
        with pytest.raises(ClockSynchronizationError):
            select_reference_host({})

    def test_deterministic_tie_break(self):
        rates = {"b": 1.0, "a": 1.0}
        assert select_reference_host(rates) == select_reference_host(dict(reversed(rates.items())))


class TestEstimation:
    def test_reference_machine_gets_identity(self):
        bounds = estimate_clock_bounds([], "ref", "ref")
        assert bounds == ClockBounds.identity()

    def test_bounds_contain_true_alpha_beta(self):
        reference = HardwareClock(ClockParameters(offset=0.002, rate=1.00004))
        other = HardwareClock(ClockParameters(offset=-0.003, rate=0.99996))
        messages = make_sync_messages(reference, other)
        bounds = estimate_clock_bounds(messages, "other", "ref")
        alpha, beta = other.relative_to(reference)
        assert bounds.contains(alpha, beta)

    def test_bounds_are_tight_on_a_lan(self):
        reference = HardwareClock(ClockParameters(offset=0.001, rate=1.00002))
        other = HardwareClock(ClockParameters(offset=-0.004, rate=0.99997))
        messages = make_sync_messages(reference, other, delay=150e-6, jitter=30e-6)
        bounds = estimate_clock_bounds(messages, "other", "ref")
        assert bounds.alpha_width < 0.002
        assert bounds.beta_width < 0.01

    def test_projection_contains_true_reference_time(self):
        reference = HardwareClock(ClockParameters(offset=0.002, rate=1.00004))
        other = HardwareClock(ClockParameters(offset=-0.003, rate=0.99996))
        messages = make_sync_messages(reference, other)
        bounds = estimate_clock_bounds(messages, "other", "ref")
        for physical in (0.1, 0.5, 0.9):
            local = other.read(physical)
            true_reference = reference.read(physical)
            lower, upper = bounds.project_to_reference(local)
            assert lower - 1e-9 <= true_reference <= upper + 1e-9

    def test_more_messages_do_not_widen_bounds(self):
        reference = HardwareClock(ClockParameters(offset=0.0, rate=1.00001))
        other = HardwareClock(ClockParameters(offset=0.001, rate=0.99999))
        few = make_sync_messages(reference, other, phases=((0.0, 5), (1.0, 5)))
        many = make_sync_messages(reference, other, phases=((0.0, 40), (1.0, 40)))
        bounds_few = estimate_clock_bounds(few, "other", "ref")
        bounds_many = estimate_clock_bounds(many, "other", "ref")
        assert bounds_many.alpha_width <= bounds_few.alpha_width + 1e-12
        assert bounds_many.beta_width <= bounds_few.beta_width + 1e-12

    def test_unidirectional_messages_rejected_as_unbounded(self):
        reference = HardwareClock()
        other = HardwareClock(ClockParameters(offset=0.001))
        messages = [
            message
            for message in make_sync_messages(reference, other)
            if message.sender == "ref"
        ]
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds(messages, "other", "ref")

    def test_no_messages_rejected(self):
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds([], "other", "ref")

    def test_estimate_all_bounds(self):
        reference = HardwareClock()
        other = HardwareClock(ClockParameters(offset=0.001, rate=1.00001))
        messages = make_sync_messages(reference, other)
        bounds = estimate_all_bounds(messages, ["ref", "other"], "ref")
        assert bounds["ref"] == ClockBounds.identity()
        assert bounds["other"].alpha_width > 0


@settings(max_examples=25, deadline=None)
@given(
    offset=st.floats(min_value=-0.01, max_value=0.01),
    drift_ppm=st.floats(min_value=-200, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_bounds_always_contain_truth(offset, drift_ppm, seed):
    """Whatever the true offset/drift, the estimated bounds must contain it."""
    reference = HardwareClock(ClockParameters(offset=0.0, rate=1.0))
    other = HardwareClock(ClockParameters(offset=offset, rate=1.0 + drift_ppm * 1e-6))
    messages = make_sync_messages(reference, other, seed=seed)
    bounds = estimate_clock_bounds(messages, "other", "ref")
    alpha, beta = other.relative_to(reference)
    assert bounds.contains(alpha, beta)
    # The projection of any event time must also contain the true value.
    local = other.read(0.5)
    lower, upper = bounds.project_to_reference(local)
    assert lower - 1e-9 <= reference.read(0.5) <= upper + 1e-9
