"""Chaos tests: fault injection into the distributed orchestrator itself.

The paper's methodology — inject faults, observe whether the system's
behaviour stays within its specification — applied to the backend that
runs the paper's campaigns.  Each test injects a real fault into a live
coordinator/worker fleet (SIGKILL mid-shard, dropped heartbeats, a hung
worker, duplicated completions, a killed coordinator) and then asserts
the *strongest* possible specification: the recovered campaign's measures
and its store fingerprint are **bit-identical** to an undisturbed serial
run.  The seed-derivation contract is what makes that assertion possible
— every experiment's seed is a pure function of (study, index), so no
matter which worker re-ran what, the merged records must match exactly.

This module is self-contained (the ``tests/chaos/`` directory is its own
rootdir for imports) so CI's ``chaos-smoke`` job can run it in isolation.
"""

from __future__ import annotations

import os
import signal
from dataclasses import replace

import pytest

from repro.apps.toggle import build_toggle_study
from repro.core.campaign import CampaignConfig
from repro.core.execution import DISTRIBUTED, ExecutionConfig, available_backends
from repro.dist import CampaignCoordinator, DistributedExecutor, WorkerOptions
from repro.measures import (
    MeasureStep,
    SimpleSamplingMeasure,
    StateTuple,
    StudyMeasure,
    TotalDuration,
    estimate_campaign_measure,
)
from repro.pipeline import run_and_analyze
from repro.store import CampaignStore

needs_fork = pytest.mark.skipif(
    DISTRIBUTED not in available_backends(),
    reason="distributed backend needs the fork start method",
)

#: Supervision tuned for chaos: fast heartbeats, fast death verdicts,
#: near-instant retries — so injected faults are detected in tens of
#: milliseconds and each test finishes in well under a second.
CHAOS_KNOBS = dict(
    heartbeat_interval_s=0.05,
    heartbeat_timeout_s=0.25,
    retry_backoff_base_s=0.01,
)


def build_campaign(experiments: int = 8) -> CampaignConfig:
    study_a = build_toggle_study(
        "alpha", dwell_time=0.02, timeslice=0.002, cycles=3,
        experiments=experiments, seed=11,
    )
    study_b = build_toggle_study(
        "beta", dwell_time=0.03, timeslice=0.002, cycles=3,
        experiments=experiments, seed=22,
    )
    return CampaignConfig(name="chaos-test", studies=[study_a, study_b])


DRIVER_MEASURE = StudyMeasure(
    name="driver-active",
    steps=(MeasureStep(StateTuple("driver", "ACTIVE"), TotalDuration("T")),),
)


def campaign_measures_of(analysis) -> dict:
    """Every downstream quantity, in exactly comparable (bit-exact) form."""
    study_measures = {name: DRIVER_MEASURE for name in analysis.studies}
    estimate = estimate_campaign_measure(
        SimpleSamplingMeasure("driver-active"), analysis, study_measures
    )
    return {
        "values": analysis.measure_values(study_measures),
        "acceptance": analysis.acceptance_summary(),
        "seeds": {
            name: [e.result.seed for e in study.experiments]
            for name, study in analysis.studies.items()
        },
        "estimate": estimate.to_dict(),
    }


def serial_baseline(campaign, tmp_path):
    """The undisturbed run every chaos run must match bit for bit."""
    store = CampaignStore(tmp_path / "serial")
    analysis = run_and_analyze(campaign, ExecutionConfig.serial(), store=store)
    return campaign_measures_of(analysis), store.content_fingerprint()


def run_with_chaos(executor_class, campaign, config, tmp_path):
    """One chaos run, returning (measures, fingerprint, coordinator stats)."""
    executor = executor_class(config)
    store = CampaignStore(tmp_path / "chaos")
    analysis = executor.run_and_analyze(campaign, store=store)
    coordinator = executor_class.coordinator_class.instances[-1]
    return (
        campaign_measures_of(analysis),
        store.content_fingerprint(),
        coordinator.stats,
    )


class Recording(CampaignCoordinator):
    """Base chaos coordinator: keeps every instance for stats inspection."""

    instances: list["Recording"]

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.instances = []

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        type(self).instances.append(self)


@needs_fork
class TestWorkerSigkill:
    def test_sigkill_mid_shard_recovers_bit_identical(self, tmp_path):
        # SIGKILL the worker that delivers the first completion.  Its
        # shard (6 experiments) is mid-flight, so the lease is torn and
        # must be re-run elsewhere; the already-delivered experiment comes
        # back a second time and must be dropped, not double-counted.
        class Killer(Recording):
            def __init__(self, *args, **kwargs) -> None:
                super().__init__(*args, **kwargs)
                self.killed: list[int] = []

            def chaos_on_completion(self, worker_id, study_index, experiment_index):
                if not self.killed:
                    self.killed.append(worker_id)
                    os.kill(self.workers[worker_id].process.pid, signal.SIGKILL)

        class ChaosExecutor(DistributedExecutor):
            coordinator_class = Killer

        campaign = build_campaign(experiments=8)
        baseline, base_print = serial_baseline(campaign, tmp_path)
        config = ExecutionConfig.distributed(workers=3, chunk_size=6, **CHAOS_KNOBS)
        measures, fingerprint, stats = run_with_chaos(
            ChaosExecutor, campaign, config, tmp_path
        )
        assert Killer.instances[-1].killed, "chaos never fired"
        assert stats["workers_lost"] >= 1
        assert stats["reassignments"] >= 1
        assert measures == baseline
        assert fingerprint == base_print

    def test_sigkill_two_workers_still_converges(self, tmp_path):
        # Lose two of three workers, one per early completion; the fleet
        # of one must still finish the campaign bit-identically (retry
        # budget raised: the same shard may be torn twice).
        class DoubleKiller(Recording):
            def __init__(self, *args, **kwargs) -> None:
                super().__init__(*args, **kwargs)
                self.killed: list[int] = []

            def chaos_on_completion(self, worker_id, study_index, experiment_index):
                if len(self.killed) < 2 and worker_id not in self.killed:
                    self.killed.append(worker_id)
                    os.kill(self.workers[worker_id].process.pid, signal.SIGKILL)

        class ChaosExecutor(DistributedExecutor):
            coordinator_class = DoubleKiller

        campaign = build_campaign(experiments=8)
        baseline, base_print = serial_baseline(campaign, tmp_path)
        config = ExecutionConfig.distributed(
            workers=3, chunk_size=6, max_retries=4, **CHAOS_KNOBS
        )
        measures, fingerprint, stats = run_with_chaos(
            ChaosExecutor, campaign, config, tmp_path
        )
        assert len(DoubleKiller.instances[-1].killed) == 2
        assert stats["workers_lost"] >= 2
        assert measures == baseline
        assert fingerprint == base_print


@needs_fork
class TestDroppedHeartbeats:
    def test_silent_hung_worker_is_declared_dead_and_reassigned(self, tmp_path):
        # Worker 0 connects, takes a lease, then hangs with its heartbeat
        # beacon disabled — the fault the heartbeat monitor exists for.
        # Its silence must cross the timeout, the lease must move to the
        # healthy worker, and the result must not change by a bit.
        class Muzzled(Recording):
            def worker_options(self, worker_id: int) -> WorkerOptions:
                options = super().worker_options(worker_id)
                if worker_id == 0:
                    return replace(
                        options,
                        heartbeat_interval_s=None,
                        stall_before_work_s=5.0,
                    )
                return options

        class ChaosExecutor(DistributedExecutor):
            coordinator_class = Muzzled

        campaign = build_campaign(experiments=4)
        baseline, base_print = serial_baseline(campaign, tmp_path)
        config = ExecutionConfig.distributed(workers=2, chunk_size=4, **CHAOS_KNOBS)
        measures, fingerprint, stats = run_with_chaos(
            ChaosExecutor, campaign, config, tmp_path
        )
        assert stats["workers_lost"] >= 1
        assert stats["reassignments"] >= 1
        assert measures == baseline
        assert fingerprint == base_print


@needs_fork
class TestDuplicatedCompletions:
    def test_every_record_sent_twice_is_merged_once(self, tmp_path):
        # Every worker sends every completion twice (an at-least-once
        # delivery fault).  Idempotent first-wins dedup must keep exactly
        # one record per experiment — the store fingerprint proves no
        # duplicate ever reached disk.
        class Stutterer(Recording):
            def worker_options(self, worker_id: int) -> WorkerOptions:
                return replace(
                    super().worker_options(worker_id), duplicate_completions=True
                )

        class ChaosExecutor(DistributedExecutor):
            coordinator_class = Stutterer

        campaign = build_campaign(experiments=4)
        baseline, base_print = serial_baseline(campaign, tmp_path)
        config = ExecutionConfig.distributed(workers=2, chunk_size=2, **CHAOS_KNOBS)
        measures, fingerprint, stats = run_with_chaos(
            ChaosExecutor, campaign, config, tmp_path
        )
        assert stats["duplicates_dropped"] >= stats["completions"]
        assert measures == baseline
        assert fingerprint == base_print


@needs_fork
class TestCoordinatorDeath:
    def test_killed_coordinator_heals_from_store_under_chaos(self, tmp_path):
        # Compound fault: a worker is SIGKILLed mid-shard AND the
        # coordinating process dies partway through (simulated by raising
        # out of the progress callback, which tears down the pump exactly
        # like a crash would).  A rerun against the same store must heal
        # to the serial baseline, resimulating only what is missing.
        class Killer(Recording):
            def __init__(self, *args, **kwargs) -> None:
                super().__init__(*args, **kwargs)
                self.killed: list[int] = []

            def chaos_on_completion(self, worker_id, study_index, experiment_index):
                if not self.killed:
                    self.killed.append(worker_id)
                    os.kill(self.workers[worker_id].process.pid, signal.SIGKILL)

        class ChaosExecutor(DistributedExecutor):
            coordinator_class = Killer

        class CoordinatorKilled(RuntimeError):
            pass

        campaign = build_campaign(experiments=6)
        baseline, base_print = serial_baseline(campaign, tmp_path)
        store_path = tmp_path / "chaos"

        completions = 0

        def die_after_five(name: str, done: int, total: int) -> None:
            nonlocal completions
            completions += 1
            if completions >= 5:
                raise CoordinatorKilled()

        first = ExecutionConfig.distributed(
            workers=2, chunk_size=3, progress=die_after_five, **CHAOS_KNOBS
        )
        with pytest.raises(CoordinatorKilled):
            ChaosExecutor(first).run_and_analyze(
                campaign, store=CampaignStore(store_path)
            )
        persisted = sum(
            report.valid for report in CampaignStore(store_path).verify().values()
        )
        assert persisted >= 5

        # The restarted campaign: no chaos this time, same store.
        rerun = ExecutionConfig.distributed(workers=2, chunk_size=3, **CHAOS_KNOBS)
        analysis = DistributedExecutor(rerun).run_and_analyze(
            campaign, store=CampaignStore(store_path)
        )
        assert campaign_measures_of(analysis) == baseline
        assert CampaignStore(store_path).content_fingerprint() == base_print
