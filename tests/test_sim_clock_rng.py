"""Unit tests for hardware clocks and deterministic random streams."""

import pytest

from repro.errors import RuntimeConfigurationError
from repro.sim.clock import ClockParameters, HardwareClock
from repro.sim.rng import RandomStreams


class TestClockParameters:
    def test_defaults_are_perfect_clock(self):
        parameters = ClockParameters()
        assert parameters.offset == 0.0
        assert parameters.rate == 1.0
        assert parameters.granularity == 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(RuntimeConfigurationError):
            ClockParameters(rate=0.0)
        with pytest.raises(RuntimeConfigurationError):
            ClockParameters(rate=-1.0)

    def test_rejects_negative_granularity(self):
        with pytest.raises(RuntimeConfigurationError):
            ClockParameters(granularity=-1e-6)


class TestHardwareClock:
    def test_perfect_clock_reads_physical_time(self):
        clock = HardwareClock()
        assert clock.read(12.5) == pytest.approx(12.5)

    def test_offset_and_rate_applied(self):
        clock = HardwareClock(ClockParameters(offset=2.0, rate=1.001))
        assert clock.read(10.0) == pytest.approx(2.0 + 1.001 * 10.0)

    def test_granularity_quantizes_reads(self):
        clock = HardwareClock(ClockParameters(granularity=0.010))
        assert clock.read(0.0154) == pytest.approx(0.010)
        assert clock.read(0.0299) == pytest.approx(0.020)

    def test_to_physical_inverts_read(self):
        clock = HardwareClock(ClockParameters(offset=-1.5, rate=0.9997))
        physical = 42.0
        assert clock.to_physical(clock.read(physical)) == pytest.approx(physical)

    def test_reads_are_monotonic(self):
        clock = HardwareClock(ClockParameters(offset=3.0, rate=1.0002, granularity=1e-6))
        times = [clock.read(t * 0.01) for t in range(100)]
        assert times == sorted(times)

    def test_relative_to_reference(self):
        reference = HardwareClock(ClockParameters(offset=1.0, rate=1.0001))
        other = HardwareClock(ClockParameters(offset=-0.5, rate=0.9998))
        alpha, beta = other.relative_to(reference)
        # C_other(t) should equal alpha + beta * C_ref(t) for any t.
        for t in (0.0, 3.7, 100.0):
            assert other.read(t) == pytest.approx(alpha + beta * reference.read(t))

    def test_relative_to_self_is_identity(self):
        clock = HardwareClock(ClockParameters(offset=0.25, rate=1.00005))
        alpha, beta = clock.relative_to(clock)
        assert alpha == pytest.approx(0.0)
        assert beta == pytest.approx(1.0)


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).stream("network")
        b = RandomStreams(42).stream("network")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        first = [streams.stream("a").random() for _ in range(5)]
        second = [streams.stream("b").random() for _ in range(5)]
        assert first != second

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_produces_independent_child(self):
        parent = RandomStreams(7)
        child = parent.spawn("child")
        assert child.seed != parent.seed
        assert child.stream("x").random() != parent.stream("x").random()

    def test_seed_property(self):
        assert RandomStreams(123).seed == 123
