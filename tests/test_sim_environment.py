"""Integration tests of the environment facade: hosts, processes, messaging."""

import pytest

from repro.errors import RuntimeConfigurationError
from repro.sim.clock import ClockParameters
from repro.sim.environment import Environment
from repro.sim.network import LinkProfile
from repro.sim.process import SimProcess


class Echo(SimProcess):
    """Replies to every message with its payload incremented by one."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def receive(self, message):
        self.received.append(message.payload)
        if isinstance(message.payload, int):
            sender = message.source.split("/", 1)[1]
            self.send(sender, message.payload + 1)


class Starter(SimProcess):
    def __init__(self, name, target):
        super().__init__(name)
        self.target = target
        self.received = []

    def start(self):
        self.send(self.target, 1)

    def receive(self, message):
        self.received.append(message.payload)


def make_env(**kwargs):
    env = Environment(seed=3, **kwargs)
    env.add_host("hosta")
    env.add_host("hostb")
    return env


def test_duplicate_host_rejected():
    env = make_env()
    with pytest.raises(RuntimeConfigurationError):
        env.add_host("hosta")


def test_unknown_host_lookup_rejected():
    env = make_env()
    with pytest.raises(RuntimeConfigurationError):
        env.host("nope")


def test_request_reply_between_hosts():
    env = make_env()
    echo = Echo("echo")
    starter = Starter("starter", "echo")
    env.spawn(echo, "hostb")
    env.spawn(starter, "hosta")
    env.run()
    assert echo.received == [1]
    assert starter.received == [2]


def test_processes_on_same_host_use_ipc_profile():
    env = Environment(
        seed=1,
        ipc_profile=LinkProfile(base_delay=1e-6, jitter_mean=0.0),
        lan_profile=LinkProfile(base_delay=10.0, jitter_mean=0.0),
    )
    env.add_host("hosta")
    echo = Echo("echo")
    starter = Starter("starter", "echo")
    env.spawn(echo, "hosta")
    env.spawn(starter, "hosta")
    env.run(until=1.0)
    # With a 10-second LAN delay, only the IPC path can deliver within 1s.
    assert echo.received == [1]


def test_message_to_dead_process_recorded_as_undeliverable():
    env = make_env()
    starter = Starter("starter", "ghost")
    env.spawn(starter, "hosta")
    env.run()
    assert ("starter", "ghost") in env.undeliverable


def test_process_crash_notifies_listeners():
    env = make_env()
    observed = []
    env.add_termination_listener(lambda process, crashed: observed.append((process.name, crashed)))
    victim = Echo("victim")
    env.spawn(victim, "hosta")
    env.run()
    victim.crash(reason="test")
    assert observed == [("victim", True)]
    assert victim.crashed and not victim.exited


def test_process_exit_notifies_listeners():
    env = make_env()
    observed = []
    env.add_termination_listener(lambda process, crashed: observed.append((process.name, crashed)))
    worker = Echo("worker")
    env.spawn(worker, "hostb")
    env.run()
    worker.exit()
    assert observed == [("worker", False)]
    assert worker.exited and not worker.crashed


def test_timers_cancelled_on_crash():
    env = make_env()
    fired = []

    class Timed(SimProcess):
        def start(self):
            self.set_timer(0.5, lambda: fired.append("late"))
            self.set_timer(0.1, lambda: self.crash(reason="early"))

    env.spawn(Timed("timed"), "hosta")
    env.run()
    assert fired == []


def test_host_crash_kills_all_processes():
    env = make_env()
    a = Echo("a")
    b = Echo("b")
    env.spawn(a, "hosta")
    env.spawn(b, "hosta")
    env.run()
    env.host("hosta").crash()
    assert a.crashed and b.crashed
    assert env.host("hosta").crashed
    env.host("hosta").reboot()
    assert not env.host("hosta").crashed


def test_duplicate_live_process_name_rejected():
    env = make_env()
    env.spawn(Echo("proc"), "hosta")
    with pytest.raises(RuntimeConfigurationError):
        env.spawn(Echo("proc"), "hostb")


def test_dead_process_name_can_be_reused():
    env = make_env()
    first = Echo("proc")
    env.spawn(first, "hosta")
    env.run()
    first.crash()
    replacement = Echo("proc")
    env.spawn(replacement, "hostb")
    env.run()
    assert env.process("proc") is replacement


def test_host_clock_parameters_respected():
    env = Environment(seed=0)
    env.add_host("hosta", clock=ClockParameters(offset=1.0, rate=2.0))
    env.kernel.advance_to(3.0)
    assert env.read_clock("hosta") == pytest.approx(1.0 + 2.0 * 3.0)


def test_run_until_condition():
    env = make_env()
    counter = []

    class Ticker(SimProcess):
        def start(self):
            self.tick()

        def tick(self):
            counter.append(self.now())
            self.set_timer(0.1, self.tick)

    env.spawn(Ticker("tick"), "hosta")
    met = env.run_until(lambda: len(counter) >= 5, timeout=10.0)
    assert met
    assert len(counter) >= 5


def test_endpoint_format():
    env = make_env()
    process = Echo("proc")
    env.spawn(process, "hostb")
    assert env.endpoint("proc") == "hostb/proc"
