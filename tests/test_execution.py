"""Tests of the campaign execution engine and the seed-derivation contract."""

import pytest

from repro.apps.toggle import build_toggle_study
from repro.core.campaign import (
    CampaignConfig,
    CampaignRunner,
    run_campaign,
    run_single_study,
)
from repro.scenarios import DEFAULT_REGISTRY
from repro.core.execution import (
    PROCESS_POOL,
    SERIAL,
    ExecutionConfig,
    ProcessPoolExecutor,
    SerialExecutor,
    available_backends,
    build_executor,
    run_and_analyze_experiment,
)
from repro.errors import RuntimeConfigurationError
from repro.measures import MeasureStep, StateTuple, StudyMeasure, TotalDuration
from repro.pipeline import run_and_analyze
from repro.sim.rng import RandomStreams

needs_pool = pytest.mark.skipif(
    PROCESS_POOL not in available_backends(),
    reason="process-pool backend needs the fork start method",
)


def build_campaign(experiments: int = 3) -> CampaignConfig:
    study_a = build_toggle_study(
        "alpha", dwell_time=0.02, timeslice=0.002, cycles=3,
        experiments=experiments, seed=11,
    )
    study_b = build_toggle_study(
        "beta", dwell_time=0.03, timeslice=0.002, cycles=3,
        experiments=experiments, seed=22,
    )
    return CampaignConfig(name="engine-test", studies=[study_a, study_b])


# ---------------------------------------------------------------------------
# Seed derivation: the public API and its pinned sequence
# ---------------------------------------------------------------------------


class TestSeedDerivation:
    #: Frozen values of RandomStreams(0).derive("experiment:toggle:i").
    #: These pin the seed-derivation contract: the process-pool backend
    #: re-derives each experiment's seed in the worker, so the sequence
    #: must never change between library versions (or between backends).
    PINNED_SEQUENCE = (
        13078646609861432629,
        6009498735873911444,
        14558700756124061471,
        2401916815302495391,
    )

    def test_pinned_seed_sequence(self):
        streams = RandomStreams(0)
        derived = tuple(streams.derive(f"experiment:toggle:{i}") for i in range(4))
        assert derived == self.PINNED_SEQUENCE

    def test_private_alias_preserved(self):
        streams = RandomStreams(123)
        assert streams._derive("anything") == streams.derive("anything")

    def test_runner_uses_public_derivation(self):
        study = build_toggle_study("study", dwell_time=0.02, experiments=1, seed=7)
        seed = CampaignRunner._experiment_seed(study, 0)
        assert seed == RandomStreams(7).derive("experiment:study:0")
        assert seed == 6224796762065466819

    def test_experiment_results_carry_derived_seeds(self):
        campaign = build_campaign(experiments=2)
        result = run_campaign(campaign)
        for study in campaign.studies:
            expected = [
                RandomStreams(study.seed).derive(f"experiment:{study.name}:{i}")
                for i in range(study.experiments)
            ]
            actual = [e.seed for e in result.studies[study.name].experiments]
            assert actual == expected


# ---------------------------------------------------------------------------
# ExecutionConfig validation
# ---------------------------------------------------------------------------


class TestExecutionConfig:
    def test_defaults_to_serial(self):
        config = ExecutionConfig()
        assert config.backend == SERIAL
        assert isinstance(build_executor(None), SerialExecutor)
        assert isinstance(build_executor(config), SerialExecutor)

    def test_process_pool_constructor(self):
        config = ExecutionConfig.process_pool(workers=3, chunk_size=2)
        assert config.backend == PROCESS_POOL
        assert config.resolved_workers() == 3
        assert isinstance(build_executor(config), ProcessPoolExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(RuntimeConfigurationError):
            ExecutionConfig(backend="gpu")

    def test_invalid_workers_rejected(self):
        with pytest.raises(RuntimeConfigurationError):
            ExecutionConfig(workers=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(RuntimeConfigurationError):
            ExecutionConfig(chunk_size=0)

    def test_serial_backend_is_always_available(self):
        assert SERIAL in available_backends()

    def test_default_chunk_size_uses_heuristic(self):
        config = ExecutionConfig()
        assert config.chunk_size is None
        # max(1, tasks // (4 * workers)): four waves of chunks per worker.
        assert config.resolved_chunk_size(1000, 4) == 62
        assert config.resolved_chunk_size(200, 4) == 12
        assert config.resolved_chunk_size(16, 4) == 1

    def test_small_campaigns_keep_chunk_size_one(self):
        config = ExecutionConfig()
        assert config.resolved_chunk_size(1, 8) == 1
        assert config.resolved_chunk_size(0, 8) == 1

    def test_explicit_chunk_size_honored(self):
        config = ExecutionConfig(chunk_size=7)
        assert config.resolved_chunk_size(1000, 4) == 7
        assert config.resolved_chunk_size(2, 4) == 7


# ---------------------------------------------------------------------------
# Serial / process-pool equivalence
# ---------------------------------------------------------------------------


def seeds_of(analysis):
    return {
        name: [e.result.seed for e in study.experiments]
        for name, study in analysis.studies.items()
    }


def measure_values_of(analysis):
    measure = StudyMeasure(
        name="driver-active",
        steps=(MeasureStep(StateTuple("driver", "ACTIVE"), TotalDuration("T")),),
    )
    return {name: study.measure_values(measure) for name, study in analysis.studies.items()}


@needs_pool
class TestBackendEquivalence:
    def test_campaign_results_identical(self):
        campaign = build_campaign()
        serial = run_campaign(campaign, ExecutionConfig.serial())
        pooled = run_campaign(campaign, ExecutionConfig.process_pool(workers=2))
        for study in campaign.studies:
            serial_experiments = serial.studies[study.name].experiments
            pooled_experiments = pooled.studies[study.name].experiments
            assert [e.seed for e in serial_experiments] == [e.seed for e in pooled_experiments]
            assert [e.completed for e in serial_experiments] == [
                e.completed for e in pooled_experiments
            ]
            for left, right in zip(serial_experiments, pooled_experiments):
                left_records = [
                    (r.kind, r.time) for r in left.local_timelines["observer"].records
                ]
                right_records = [
                    (r.kind, r.time) for r in right.local_timelines["observer"].records
                ]
                assert left_records == right_records

    def test_fused_analysis_identical(self):
        campaign = build_campaign()
        serial = run_and_analyze(campaign, ExecutionConfig.serial())
        pooled = run_and_analyze(campaign, ExecutionConfig.process_pool(workers=2))
        assert seeds_of(serial) == seeds_of(pooled)
        assert serial.acceptance_summary() == pooled.acceptance_summary()
        assert measure_values_of(serial) == measure_values_of(pooled)

    def test_chunked_execution_identical(self):
        campaign = build_campaign()
        serial = run_and_analyze(campaign, ExecutionConfig.serial())
        pooled = run_and_analyze(
            campaign, ExecutionConfig.process_pool(workers=2, chunk_size=3)
        )
        assert seeds_of(serial) == seeds_of(pooled)
        assert serial.acceptance_summary() == pooled.acceptance_summary()

    def test_pool_slims_raw_payloads_by_default(self):
        campaign = build_campaign(experiments=1)
        pooled = run_and_analyze(campaign, ExecutionConfig.process_pool(workers=2))
        experiment = pooled.study("alpha").experiments[0]
        assert experiment.result.local_timelines == {}
        assert experiment.result.sync_messages == []
        # The analyzed artifacts survive the slimming.
        assert experiment.global_timeline.entries
        assert experiment.clock_bounds

    def test_keep_raw_results_preserves_payloads(self):
        campaign = build_campaign(experiments=1)
        pooled = run_and_analyze(
            campaign, ExecutionConfig.process_pool(workers=2, keep_raw_results=True)
        )
        experiment = pooled.study("alpha").experiments[0]
        assert set(experiment.result.local_timelines) == {"driver", "observer"}
        assert experiment.result.sync_messages


# ---------------------------------------------------------------------------
# Registry-driven smoke test: every scenario, every backend
# ---------------------------------------------------------------------------


def analyzed_fingerprint(analysis, scenario):
    """Everything the analysis phase derives for one study, comparably."""
    study = next(iter(analysis.studies.values()))
    fingerprint = {
        "seeds": [e.result.seed for e in study.experiments],
        "completed": [e.result.completed for e in study.experiments],
        "accepted": [e.accepted for e in study.experiments],
        "verdicts": [
            [(v.fault, v.machine, v.correct) for v in e.verification.verdicts]
            for e in study.experiments
        ],
        "timeline_sizes": [len(e.global_timeline.entries) for e in study.experiments],
    }
    if scenario.measure_factory is not None:
        fingerprint["measure"] = study.measure_values(scenario.measure_factory())
    return fingerprint


@pytest.mark.parametrize("scenario_name", DEFAULT_REGISTRY.names())
class TestScenarioRegistrySmoke:
    """Every registered scenario builds, runs, and analyzes on every backend."""

    EXPERIMENTS = 2
    SEED = 17

    def campaign_for(self, scenario_name):
        study = DEFAULT_REGISTRY.build(
            scenario_name, experiments=self.EXPERIMENTS, seed=self.SEED
        )
        return CampaignConfig(name=f"smoke-{scenario_name}", studies=[study])

    def test_scenario_runs_end_to_end_serial(self, scenario_name):
        scenario = DEFAULT_REGISTRY.get(scenario_name)
        analysis = run_and_analyze(self.campaign_for(scenario_name), ExecutionConfig.serial())
        study = next(iter(analysis.studies.values()))
        assert len(study.experiments) == self.EXPERIMENTS
        assert all(e.global_timeline.entries for e in study.experiments)
        assert all(e.clock_bounds for e in study.experiments)
        if scenario.measure_factory is not None:
            assert len(study.measure_values(scenario.measure_factory())) == len(
                study.accepted()
            )

    @needs_pool
    def test_scenario_serial_and_pool_results_identical(self, scenario_name):
        scenario = DEFAULT_REGISTRY.get(scenario_name)
        campaign = self.campaign_for(scenario_name)
        serial = run_and_analyze(campaign, ExecutionConfig.serial())
        pooled = run_and_analyze(campaign, ExecutionConfig.process_pool(workers=2))
        assert analyzed_fingerprint(serial, scenario) == analyzed_fingerprint(
            pooled, scenario
        )


# ---------------------------------------------------------------------------
# Engine plumbing
# ---------------------------------------------------------------------------


class TestEnginePlumbing:
    def test_run_and_analyze_experiment_matches_campaign_path(self):
        campaign = build_campaign(experiments=1)
        study = campaign.studies[0]
        direct = run_and_analyze_experiment(study, 0)
        via_engine = run_and_analyze(campaign, ExecutionConfig.serial())
        engine_experiment = via_engine.study(study.name).experiments[0]
        assert direct.result.seed == engine_experiment.result.seed
        assert direct.accepted == engine_experiment.accepted

    def test_progress_callback_streams_per_study(self):
        campaign = build_campaign(experiments=2)
        events = []
        config = ExecutionConfig(progress=lambda name, done, total: events.append((name, done, total)))
        run_campaign(campaign, config)
        assert events.count(("alpha", 2, 2)) == 1
        assert events.count(("beta", 2, 2)) == 1
        assert len(events) == 4

    def test_study_execution_override_used_by_run_single_study(self):
        study = build_toggle_study(
            "override", dwell_time=0.02, cycles=3, experiments=1, seed=3,
        )
        study.execution = ExecutionConfig.serial()
        result = run_single_study(study)
        assert len(result.experiments) == 1

    def test_run_experiment_of_is_standalone(self):
        study = build_toggle_study("solo", dwell_time=0.02, cycles=3, experiments=1, seed=5)
        experiment = CampaignRunner.run_experiment_of(study, 0)
        assert experiment.seed == RandomStreams(5).derive("experiment:solo:0")
        assert experiment.index == 0

    def test_subclass_run_experiment_override_is_dispatched(self):
        calls = []

        class InstrumentedRunner(CampaignRunner):
            def run_experiment(self, study, index):
                calls.append((study.name, index))
                return super().run_experiment(study, index)

        campaign = build_campaign(experiments=1)
        result = InstrumentedRunner(campaign).run()
        assert sorted(calls) == [("alpha", 0), ("beta", 0)]
        assert set(result.studies) == {"alpha", "beta"}


# ---------------------------------------------------------------------------
# Event-cap backstop
# ---------------------------------------------------------------------------


class TestEventCap:
    def test_event_cap_marks_experiment_aborted(self):
        study = build_toggle_study("capped", dwell_time=0.02, cycles=3,
                                   experiments=1, seed=1)
        study.max_events = 50
        result = run_single_study(study)
        experiment = result.experiments[0]
        assert experiment.aborted
        assert experiment.abort_reason == "event cap reached (50 events)"
        assert not experiment.completed

    def test_default_cap_does_not_trigger(self):
        study = build_toggle_study("uncapped", dwell_time=0.02, cycles=3,
                                   experiments=1, seed=1)
        result = run_single_study(study)
        experiment = result.experiments[0]
        assert experiment.completed
        assert experiment.abort_reason is None

    def test_nonpositive_cap_rejected(self):
        from dataclasses import replace

        study = build_toggle_study("bad", dwell_time=0.02, experiments=1)
        with pytest.raises(RuntimeConfigurationError):
            replace(study, max_events=0)


# ---------------------------------------------------------------------------
# Pool worker crashes: survive, report, resume
# ---------------------------------------------------------------------------


class SuicidalRunner(CampaignRunner):
    """SIGKILLs its own worker process at alpha:1 — once, gated by a
    sentinel file, so the retried attempt succeeds.  Results are otherwise
    identical to the plain runner (only scheduling is disturbed)."""

    sentinel = ""  # set by each test before running

    @classmethod
    def run_experiment_of(cls, study, index):
        import os as _os
        import signal as _signal
        from pathlib import Path as _Path

        if study.name == "alpha" and index == 1 and not _os.path.exists(cls.sentinel):
            _Path(cls.sentinel).write_text("died once")
            _os.kill(_os.getpid(), _signal.SIGKILL)
        return super().run_experiment_of(study, index)


class AlwaysCrashingRunner(CampaignRunner):
    """SIGKILLs its worker at alpha:1 on every attempt (an unretriable
    fault, e.g. a deterministic OOM kill)."""

    @classmethod
    def run_experiment_of(cls, study, index):
        import os as _os
        import signal as _signal

        if study.name == "alpha" and index == 1:
            _os.kill(_os.getpid(), _signal.SIGKILL)
        return super().run_experiment_of(study, index)


@needs_pool
class TestPoolCrashRecovery:
    def test_worker_crash_is_retried_and_campaign_completes(self, tmp_path):
        campaign = build_campaign()
        serial = run_and_analyze(campaign, ExecutionConfig.serial())
        SuicidalRunner.sentinel = str(tmp_path / "died")
        config = ExecutionConfig.process_pool(
            workers=2, max_retries=2, retry_backoff_base_s=0.01
        )
        with pytest.warns(UserWarning, match="rebuilding the pool"):
            pooled = build_executor(config).run_and_analyze(
                campaign, runner_class=SuicidalRunner
            )
        assert (tmp_path / "died").exists(), "chaos never fired"
        assert seeds_of(pooled) == seeds_of(serial)
        assert measure_values_of(pooled) == measure_values_of(serial)
        assert pooled.acceptance_summary() == serial.acceptance_summary()

    def test_exhausted_retries_report_the_dead_experiments(self):
        from repro.errors import ExecutionInterrupted

        campaign = build_campaign()
        config = ExecutionConfig.process_pool(
            workers=2, max_retries=0, retry_backoff_base_s=0.01
        )
        with pytest.raises(ExecutionInterrupted, match="process-pool worker died") as info:
            build_executor(config).run_and_analyze(
                campaign, runner_class=AlwaysCrashingRunner
            )
        # The report names what was lost, not just that something was.
        assert info.value.pending
        assert ("alpha", 1) in info.value.pending
        assert "alpha:1" in str(info.value)

    def test_crash_with_store_hints_at_resume_and_heals(self, tmp_path):
        from repro.errors import ExecutionInterrupted
        from repro.store import CampaignStore

        campaign = build_campaign()
        serial = run_and_analyze(
            campaign, ExecutionConfig.serial(), store=CampaignStore(tmp_path / "s")
        )
        SuicidalRunner.sentinel = str(tmp_path / "died-with-store")
        config = ExecutionConfig.process_pool(
            workers=2, max_retries=0, retry_backoff_base_s=0.01, chunk_size=1
        )
        with pytest.raises(ExecutionInterrupted) as info:
            build_executor(config).run_and_analyze(
                campaign, runner_class=SuicidalRunner, store=CampaignStore(tmp_path / "d")
            )
        assert any("campaign store" in note for note in info.value.__notes__)
        # Following the hint heals: the sentinel now exists, so the rerun
        # (same store) resumes past the persisted records and completes.
        resumed = build_executor(config).run_and_analyze(
            campaign, runner_class=SuicidalRunner, store=CampaignStore(tmp_path / "d")
        )
        assert seeds_of(resumed) == seeds_of(serial)
        assert measure_values_of(resumed) == measure_values_of(serial)
        assert (
            CampaignStore(tmp_path / "d").content_fingerprint()
            == CampaignStore(tmp_path / "s").content_fingerprint()
        )
