"""Tests of the scenario registry and the two new fault-injection apps."""

from pathlib import Path

import pytest

from repro.apps.tokenring import (
    TokenRingParameters,
    build_tokenring_study,
    correlated_holder_crash_fault,
    holder_crash_fault,
    ring_state_machine_spec,
    token_loss_fault,
)
from repro.apps.twophase import (
    TwoPhaseParameters,
    build_twophase_study,
    coordinator_in_doubt_fault,
    coordinator_prepare_fault,
    coordinator_state_machine_spec,
    participant_state_machine_spec,
    participant_voted_fault,
)
from repro.core.campaign import StudyConfig, run_single_study
from repro.errors import ReproError, SpecificationError, UnknownScenarioError
from repro.experiments import scenario_comparison
from repro.pipeline import analyze_study
from repro.scenarios import (
    DEFAULT_REGISTRY,
    Scenario,
    ScenarioRegistry,
    build_default_registry,
    default_registry,
)

README = Path(__file__).resolve().parent.parent / "README.md"


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------


class TestScenarioRegistry:
    def test_default_registry_has_at_least_five_scenarios(self):
        assert len(DEFAULT_REGISTRY) >= 5
        assert len(DEFAULT_REGISTRY.names()) == len(DEFAULT_REGISTRY)

    def test_default_registry_contains_old_and_new_applications(self):
        names = DEFAULT_REGISTRY.names()
        for expected in (
            "toggle",
            "leader-election",
            "primary-backup",
            "two-phase-commit",
            "token-ring",
        ):
            assert expected in names

    def test_get_unknown_name_raises_listing_known_scenarios(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            DEFAULT_REGISTRY.get("no-such-scenario")
        message = str(excinfo.value)
        assert "no-such-scenario" in message
        for name in DEFAULT_REGISTRY.names():
            assert name in message
        # The whole repro error family, never a bare KeyError.
        assert isinstance(excinfo.value, ReproError)
        assert not isinstance(excinfo.value, KeyError)

    def test_get_unknown_name_on_empty_registry(self):
        with pytest.raises(UnknownScenarioError, match="<none>"):
            ScenarioRegistry().get("anything")

    def test_contains_len_iter(self):
        registry = default_registry()
        assert "toggle" in registry
        assert "nope" not in registry
        assert [scenario.name for scenario in registry] == list(registry.names())

    def test_duplicate_registration_rejected(self):
        registry = build_default_registry()
        with pytest.raises(SpecificationError):
            registry.register(registry.get("toggle"))

    def test_build_overrides_experiments_seed_and_name(self):
        study = DEFAULT_REGISTRY.build(
            "token-ring", experiments=3, seed=99, study_name="renamed"
        )
        assert isinstance(study, StudyConfig)
        assert study.experiments == 3
        assert study.seed == 99
        assert study.name == "renamed"

    def test_build_campaign_over_subset(self):
        campaign = DEFAULT_REGISTRY.build_campaign(
            names=("toggle", "two-phase-commit"), experiments=2, seed=5
        )
        assert [study.name for study in campaign.studies] == [
            "toggle",
            "two-phase-commit",
        ]
        # Position-offset seeds keep the studies decorrelated.
        assert [study.seed for study in campaign.studies] == [5, 6]
        assert all(study.experiments == 2 for study in campaign.studies)

    def test_build_campaign_defaults_to_whole_registry(self):
        campaign = DEFAULT_REGISTRY.build_campaign(experiments=1)
        assert len(campaign.studies) == len(DEFAULT_REGISTRY)

    def test_scenario_metadata_derives_from_built_studies(self):
        scenario = DEFAULT_REGISTRY.get("two-phase-commit")
        assert scenario.fault_lines() == (
            "cfault2 ((coordinator:PREPARE) & (part1:VOTED)) once",
        )
        assert scenario.measure_names() == ("committed-transactions",)

    def test_markdown_table_lists_every_scenario(self):
        table = DEFAULT_REGISTRY.markdown_table()
        for name in DEFAULT_REGISTRY.names():
            assert f"`{name}`" in table

    def test_markdown_table_escapes_or_expression_pipes(self):
        from repro.apps.election import correlated_follower_fault, build_election_study

        def builder(name="piped", experiments=1, seed=0):
            return build_election_study(
                name=name,
                faults_by_machine={
                    "green": (correlated_follower_fault("black", "green"),)
                },
                experiments=experiments,
                seed=seed,
            )

        registry = ScenarioRegistry(
            [Scenario(name="piped", description="has an Or expression", builder=builder)]
        )
        # The Or renders with '|'; in the table it must appear escaped so
        # the markdown columns survive.
        assert "|" in correlated_follower_fault("black", "green").to_text()
        table = registry.markdown_table()
        assert "\\|" in table
        row = next(line for line in table.splitlines() if "piped" in line)
        unescaped_pipes = row.replace("\\|", "").count("|")
        assert unescaped_pipes == 4  # the three column separators only

    def test_readme_table_matches_registry_metadata(self):
        """The README scenario table is generated; it must never drift."""
        text = README.read_text(encoding="utf-8")
        begin = "<!-- scenario-table:begin -->"
        end = "<!-- scenario-table:end -->"
        assert begin in text and end in text
        embedded = text.split(begin)[1].split(end)[0].strip()
        assert embedded == DEFAULT_REGISTRY.markdown_table(), (
            "README scenario table is stale; regenerate it with "
            "DEFAULT_REGISTRY.markdown_table()"
        )


# ---------------------------------------------------------------------------
# Cross-scenario comparison harness
# ---------------------------------------------------------------------------


class TestScenarioComparison:
    def test_rows_cover_selected_scenarios(self):
        rows = scenario_comparison(
            names=("toggle", "token-ring-uncorrelated"), experiments=2, seed=3
        )
        assert [row.scenario for row in rows] == ["toggle", "token-ring-uncorrelated"]
        for row in rows:
            assert row.experiments == 2
            assert 0 <= row.accepted <= row.experiments
            assert row.injections >= 0
            assert row.measure_name is not None

    def test_unknown_scenario_name_propagates_registry_error(self):
        with pytest.raises(UnknownScenarioError):
            scenario_comparison(names=("missing",), experiments=1)


# ---------------------------------------------------------------------------
# The two-phase-commit application
# ---------------------------------------------------------------------------


class TestTwoPhaseCommit:
    def test_specifications_are_consistent(self):
        machines = ("coordinator", "part1", "part2")
        coordinator = coordinator_state_machine_spec("coordinator", machines)
        participant = participant_state_machine_spec("part1", machines)
        assert coordinator.transition("IDLE", "BEGIN_TX") == "PREPARE"
        assert coordinator.transition("PREPARE", "TIMEOUT") == "ABORT"
        assert coordinator.notify_list("PREPARE") == ("part1", "part2")
        assert participant.transition("VOTED", "TIMEOUT") == "ABORTED"
        assert participant.notify_list("VOTED") == ("coordinator", "part2")

    def test_coordinator_must_be_one_of_the_machines(self):
        from repro.errors import RuntimeConfigurationError

        with pytest.raises(RuntimeConfigurationError, match="coordinator"):
            build_twophase_study(
                "2pc-bad",
                machines=("c1", "p1", "p2"),
                parameters=TwoPhaseParameters(),  # coordinator defaults to 'coordinator'
            )

    def test_fault_helpers_render_expected_expressions(self):
        assert coordinator_prepare_fault("c").to_text() == "cfault1 (c:PREPARE) once"
        assert (
            coordinator_in_doubt_fault("c", "p").to_text()
            == "cfault2 ((c:PREPARE) & (p:VOTED)) once"
        )
        assert participant_voted_fault("part1").to_text() == "pvfault (part1:VOTED) once"

    def test_transactions_commit_without_faults(self):
        study = build_twophase_study(
            "2pc-clean",
            faults_by_machine={},
            experiments=2,
            parameters=TwoPhaseParameters(vote_yes_probability=1.0, run_duration=0.3),
            seed=4,
        )
        analysis = analyze_study(run_single_study(study))
        assert all(e.result.completed for e in analysis.experiments)
        # With unanimous yes votes and no faults the service commits
        # steadily (a first-round abort can still happen while the
        # daemon-spawned participants stagger up) and nobody crashes.
        for experiment in analysis.experiments:
            coordinator = experiment.result.local_timelines["coordinator"]
            states = [r.new_state for r in coordinator.records if r.is_state_change()]
            assert states.count("COMMIT") >= 3
            assert states.count("COMMIT") > states.count("ABORT")
            assert "CRASH" not in states

    def test_in_doubt_fault_crashes_coordinator_and_aborts_participant(self):
        study = build_twophase_study("2pc-indoubt", experiments=4, seed=11)
        analysis = analyze_study(run_single_study(study))
        injected = [
            e
            for e in analysis.experiments
            if any(r.is_fault_injection() for r in e.result.local_timelines["coordinator"].records)
        ]
        assert injected, "the in-doubt fault never fired"
        for experiment in injected:
            coordinator_states = [
                r.new_state
                for r in experiment.result.local_timelines["coordinator"].records
                if r.is_state_change()
            ]
            assert coordinator_states[-1] == "CRASH"
            # The in-doubt participant unblocks via its decision timeout.
            part1_states = [
                r.new_state
                for r in experiment.result.local_timelines["part1"].records
                if r.is_state_change()
            ]
            assert "ABORTED" in part1_states


# ---------------------------------------------------------------------------
# The token-ring application
# ---------------------------------------------------------------------------


class TestTokenRing:
    def test_specification_is_consistent(self):
        spec = ring_state_machine_spec("node1", ("node1", "node2", "node3"))
        assert spec.transition("WAITING", "ACQUIRE") == "HOLDING"
        assert spec.transition("HOLDING", "RELEASE") == "WAITING"
        assert spec.notify_list("HOLDING") == ("node2", "node3")
        assert spec.notify_list("CRASH") == ("node2", "node3")

    def test_token_loss_dispatch_is_prefix_or_explicit_list(self):
        from repro.apps.tokenring import TokenRingApplication

        application = TokenRingApplication()
        # A crash fault whose name merely CONTAINS 'tloss' must not be
        # treated as a token loss.
        class Ctx:
            class random:
                @staticmethod
                def random():
                    return 1.0  # never crash, so only the drop flag matters

        application.on_fault(Ctx(), "atlossy_crash")
        assert not application._drop_next_token
        application.on_fault(Ctx(), "tloss_node1")
        assert application._drop_next_token

        listed = TokenRingApplication(
            TokenRingParameters(token_loss_fault_names=("custom-drop",))
        )
        listed.on_fault(Ctx(), "custom-drop")
        assert listed._drop_next_token

    def test_fault_helpers_render_expected_expressions(self):
        assert holder_crash_fault("node1").to_text() == "node1_hcrash (node1:HOLDING) once"
        assert (
            correlated_holder_crash_fault("node1", "node2").to_text()
            == "node2_hcrash2 ((node1:CRASH) & (node2:HOLDING)) once"
        )
        assert token_loss_fault("node1").to_text() == "tloss_node1 (node1:HOLDING) once"

    def holding_entries(self, experiment, machine):
        return [
            r
            for r in experiment.result.local_timelines[machine].records
            if r.is_state_change() and r.new_state == "HOLDING"
        ]

    def test_token_circulates_without_faults(self):
        study = build_tokenring_study(
            "ring-clean",
            faults_by_machine={},
            experiments=2,
            parameters=TokenRingParameters(run_duration=0.3),
            seed=6,
        )
        analysis = analyze_study(run_single_study(study))
        for experiment in analysis.experiments:
            assert experiment.result.completed
            for machine in ("node1", "node2", "node3"):
                assert self.holding_entries(experiment, machine), (
                    f"{machine} never held the token"
                )

    def test_holder_crash_loses_token_and_ring_recovers(self):
        study = build_tokenring_study("ring-crash", experiments=4, seed=13)
        analysis = analyze_study(run_single_study(study))
        crashed = [
            e
            for e in analysis.experiments
            if any(
                r.is_state_change() and r.new_state == "CRASH"
                for r in e.result.local_timelines["node1"].records
            )
        ]
        assert crashed, "the holder-crash fault never fired"
        for experiment in crashed:
            crash_time = max(
                r.time
                for r in experiment.result.local_timelines["node1"].records
                if r.is_state_change() and r.new_state == "CRASH"
            )
            survivors_holding_after = [
                machine
                for machine in ("node2", "node3")
                if any(r.time > crash_time for r in self.holding_entries(experiment, machine))
            ]
            assert survivors_holding_after, (
                "token was never regenerated after the holder crashed"
            )

    def test_token_loss_fault_drops_token_without_crashing(self):
        study = build_tokenring_study(
            "ring-loss",
            faults_by_machine={"node1": (token_loss_fault("node1"),)},
            experiments=2,
            seed=8,
        )
        analysis = analyze_study(run_single_study(study))
        for experiment in analysis.experiments:
            injections = [
                r
                for r in experiment.result.local_timelines["node1"].records
                if r.is_fault_injection()
            ]
            assert injections, "the token-loss fault never fired"
            # Token loss must not crash anyone...
            for machine in ("node1", "node2", "node3"):
                states = [
                    r.new_state
                    for r in experiment.result.local_timelines[machine].records
                    if r.is_state_change()
                ]
                assert "CRASH" not in states
            # ...and the regeneration rule must keep the ring serving.
            loss_time = injections[0].time
            later_holdings = [
                r
                for machine in ("node1", "node2", "node3")
                for r in self.holding_entries(experiment, machine)
                if r.time > loss_time + 0.05
            ]
            assert later_holdings, "token was never regenerated after the loss"
