"""Unit tests for the network model, hosts, and the OS scheduling model."""

import pytest

from repro.errors import RuntimeConfigurationError
from repro.sim.host import Host, SchedulerConfig
from repro.sim.kernel import SimKernel
from repro.sim.network import IPC_PROFILE, LAN_TCP_PROFILE, LinkProfile, Network
from repro.sim.rng import RandomStreams


def make_network(default=LAN_TCP_PROFILE):
    kernel = SimKernel()
    return kernel, Network(kernel, RandomStreams(1), default_profile=default)


class TestLinkProfile:
    def test_defaults(self):
        profile = LinkProfile()
        assert profile.base_delay == pytest.approx(150e-6)
        assert profile.loss_probability == 0.0

    def test_rejects_negative_delays(self):
        with pytest.raises(RuntimeConfigurationError):
            LinkProfile(base_delay=-1.0)
        with pytest.raises(RuntimeConfigurationError):
            LinkProfile(jitter_mean=-1.0)

    def test_rejects_bad_loss_probability(self):
        with pytest.raises(RuntimeConfigurationError):
            LinkProfile(loss_probability=1.5)

    def test_sample_delay_at_least_base(self):
        profile = LinkProfile(base_delay=100e-6, jitter_mean=20e-6)
        rng = RandomStreams(3).stream("x")
        for _ in range(200):
            assert profile.sample_delay(rng) >= 100e-6

    def test_zero_jitter_is_deterministic(self):
        profile = LinkProfile(base_delay=50e-6, jitter_mean=0.0)
        rng = RandomStreams(3).stream("x")
        assert profile.sample_delay(rng) == pytest.approx(50e-6)

    def test_ipc_faster_than_tcp(self):
        assert IPC_PROFILE.base_delay < LAN_TCP_PROFILE.base_delay


class TestNetwork:
    def test_delivery_after_delay(self):
        kernel, network = make_network(LinkProfile(base_delay=1e-3, jitter_mean=0.0))
        received = []
        network.send("a", "b", "hello", deliver=lambda m: received.append((kernel.now, m.payload)))
        kernel.run()
        assert received == [(pytest.approx(1e-3), "hello")]
        assert network.messages_sent == 1
        assert network.messages_delivered == 1

    def test_per_link_profile_override(self):
        kernel, network = make_network(LinkProfile(base_delay=1.0, jitter_mean=0.0))
        network.set_link_profile("a", "b", LinkProfile(base_delay=1e-6, jitter_mean=0.0))
        received = []
        network.send("a", "b", 1, deliver=lambda m: received.append(kernel.now))
        kernel.run()
        assert received[0] == pytest.approx(1e-6)

    def test_partition_drops_messages(self):
        kernel, network = make_network()
        network.partition({"a"}, {"b"})
        received = []
        network.send("a", "b", 1, deliver=lambda m: received.append(m))
        kernel.run()
        assert received == []
        assert network.messages_dropped == 1

    def test_heal_partitions(self):
        kernel, network = make_network(LinkProfile(base_delay=1e-6, jitter_mean=0.0))
        network.partition({"a"}, {"b"})
        network.heal_partitions()
        received = []
        network.send("a", "b", 1, deliver=lambda m: received.append(m))
        kernel.run()
        assert len(received) == 1

    def test_lossy_link_drops_some_messages(self):
        kernel, network = make_network(LinkProfile(base_delay=1e-6, loss_probability=0.5))
        received = []
        for _ in range(200):
            network.send("a", "b", 1, deliver=lambda m: received.append(m))
        kernel.run()
        assert 0 < len(received) < 200
        assert network.messages_dropped == 200 - len(received)

    def test_message_metadata(self):
        kernel, network = make_network(LinkProfile(base_delay=1e-6, jitter_mean=0.0))
        captured = []
        network.send("h1/p1", "h2/p2", {"k": 1}, deliver=captured.append, size_bytes=64)
        kernel.run()
        message = captured[0]
        assert message.source == "h1/p1"
        assert message.destination == "h2/p2"
        assert message.size_bytes == 64
        assert message.sent_at == 0.0


class TestSchedulerConfig:
    def test_defaults(self):
        config = SchedulerConfig()
        assert config.timeslice == pytest.approx(0.010)

    def test_validation(self):
        with pytest.raises(RuntimeConfigurationError):
            SchedulerConfig(timeslice=0.0)
        with pytest.raises(RuntimeConfigurationError):
            SchedulerConfig(context_switch_cost=-1.0)
        with pytest.raises(RuntimeConfigurationError):
            SchedulerConfig(immediate_probability=2.0)
        with pytest.raises(RuntimeConfigurationError):
            SchedulerConfig(runnable_competitors=-1.0)


class TestHost:
    def make_host(self, **scheduler_kwargs):
        kernel = SimKernel()
        scheduler = SchedulerConfig(**scheduler_kwargs) if scheduler_kwargs else None
        return Host("hosta", kernel, RandomStreams(5), scheduler=scheduler)

    def test_read_clock_uses_kernel_time(self):
        kernel = SimKernel()
        host = Host("h", kernel, RandomStreams(0))
        kernel.advance_to(2.0)
        assert host.read_clock() == pytest.approx(2.0)

    def test_scheduling_delay_bounded_by_timeslices(self):
        host = self.make_host(timeslice=0.010, context_switch_cost=50e-6,
                              runnable_competitors=1.0, immediate_probability=0.0)
        for _ in range(300):
            delay = host.scheduling_delay()
            assert 50e-6 <= delay <= 50e-6 + 0.010

    def test_immediate_probability_one_gives_only_context_switch(self):
        host = self.make_host(timeslice=0.010, context_switch_cost=50e-6,
                              immediate_probability=1.0)
        for _ in range(50):
            assert host.scheduling_delay() == pytest.approx(50e-6)

    def test_smaller_timeslice_reduces_mean_delay(self):
        slow = self.make_host(timeslice=0.010, immediate_probability=0.0)
        fast = self.make_host(timeslice=0.001, immediate_probability=0.0)
        slow_mean = sum(slow.scheduling_delay() for _ in range(500)) / 500
        fast_mean = sum(fast.scheduling_delay() for _ in range(500)) / 500
        assert fast_mean < slow_mean

    def test_duplicate_process_name_rejected(self):
        from repro.sim.process import SimProcess

        host = self.make_host()
        host.attach_process(SimProcess("p"))
        with pytest.raises(RuntimeConfigurationError):
            host.attach_process(SimProcess("p"))
