"""Unit and property-based tests for the closed-interval set algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.intervals import Interval, IntervalSet
from repro.errors import AnalysisError


class TestInterval:
    def test_length_and_contains(self):
        interval = Interval(1.0, 3.0)
        assert interval.length == pytest.approx(2.0)
        assert interval.contains(1.0)
        assert interval.contains(3.0)
        assert not interval.contains(3.0001)

    def test_point_interval(self):
        point = Interval(2.0, 2.0)
        assert point.length == 0.0
        assert point.contains(2.0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(AnalysisError):
            Interval(3.0, 1.0)

    def test_overlap_and_intersection(self):
        assert Interval(0, 2).overlaps(Interval(2, 4))
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 3))
        assert not Interval(0, 10).contains_interval(Interval(5, 11))

    def test_clip(self):
        assert Interval(0, 10).clip(2, 4) == Interval(2, 4)
        assert Interval(0, 1).clip(5, 6) is None


class TestIntervalSet:
    def test_normalization_merges_overlaps_and_touching(self):
        merged = IntervalSet.from_pairs([(0, 2), (1, 3), (3, 4), (6, 7)])
        assert merged.pairs() == ((0, 4), (6, 7))

    def test_empty(self):
        assert IntervalSet.empty().is_empty
        assert IntervalSet.empty().total_length() == 0.0

    def test_union(self):
        a = IntervalSet.from_pairs([(0, 1), (5, 6)])
        b = IntervalSet.from_pairs([(0.5, 2)])
        assert a.union(b).pairs() == ((0, 2), (5, 6))

    def test_intersection(self):
        a = IntervalSet.from_pairs([(0, 4), (6, 10)])
        b = IntervalSet.from_pairs([(3, 7)])
        assert a.intersection(b).pairs() == ((3, 4), (6, 7))

    def test_complement(self):
        a = IntervalSet.from_pairs([(2, 3), (5, 6)])
        assert a.complement(0, 10).pairs() == ((0, 2), (3, 5), (6, 10))

    def test_complement_of_empty_is_window(self):
        assert IntervalSet.empty().complement(1, 4).pairs() == ((1, 4),)

    def test_complement_invalid_window(self):
        with pytest.raises(AnalysisError):
            IntervalSet.empty().complement(5, 1)

    def test_difference(self):
        a = IntervalSet.from_pairs([(0, 10)])
        b = IntervalSet.from_pairs([(2, 3), (8, 12)])
        assert a.difference(b).pairs() == ((0, 2), (3, 8))

    def test_contains_point_and_interval(self):
        a = IntervalSet.from_pairs([(0, 1), (4, 9)])
        assert a.contains(0.5)
        assert a.contains(4.0)
        assert not a.contains(2.0)
        assert a.contains_interval(5, 8)
        assert not a.contains_interval(0.5, 5)

    def test_clip(self):
        a = IntervalSet.from_pairs([(0, 10)])
        assert a.clip(3, 4).pairs() == ((3, 4),)

    def test_total_length(self):
        a = IntervalSet.from_pairs([(0, 1), (2, 4)])
        assert a.total_length() == pytest.approx(3.0)

    def test_equality_and_hash(self):
        a = IntervalSet.from_pairs([(0, 1), (1, 2)])
        b = IntervalSet.from_pairs([(0, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_point_constructor(self):
        point = IntervalSet.point(3.0)
        assert point.contains(3.0)
        assert point.total_length() == 0.0


# -- property-based tests ------------------------------------------------------------

_pairs = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    ).map(lambda pair: (min(pair), max(pair))),
    max_size=8,
)
_points = st.floats(min_value=-10, max_value=110, allow_nan=False)


@given(a=_pairs, b=_pairs, t=_points)
def test_union_membership_matches_or(a, b, t):
    sa, sb = IntervalSet.from_pairs(a), IntervalSet.from_pairs(b)
    assert sa.union(sb).contains(t) == (sa.contains(t) or sb.contains(t))


@given(a=_pairs, b=_pairs, t=_points)
def test_intersection_membership_matches_and(a, b, t):
    sa, sb = IntervalSet.from_pairs(a), IntervalSet.from_pairs(b)
    assert sa.intersection(sb).contains(t) == (sa.contains(t) and sb.contains(t))


@given(a=_pairs, t=st.floats(min_value=0, max_value=100, allow_nan=False))
def test_complement_membership_is_negation_interior(a, t):
    sa = IntervalSet.from_pairs(a)
    complement = sa.complement(0.0, 100.0)
    # Boundary points may belong to both closed sets; interior points may not.
    if not sa.contains(t):
        assert complement.contains(t)


@given(a=_pairs)
def test_intervals_are_disjoint_and_sorted(a):
    sa = IntervalSet.from_pairs(a)
    intervals = sa.intervals
    for left, right in zip(intervals, intervals[1:]):
        assert left.end < right.start


@given(a=_pairs, b=_pairs)
def test_union_length_bounds(a, b):
    sa, sb = IntervalSet.from_pairs(a), IntervalSet.from_pairs(b)
    union_length = sa.union(sb).total_length()
    assert union_length <= sa.total_length() + sb.total_length() + 1e-9
    assert union_length >= max(sa.total_length(), sb.total_length()) - 1e-9


@given(a=_pairs, b=_pairs)
def test_linear_merges_match_quadratic_reference(a, b):
    """The linear-merge union/intersection equal the all-pairs reference."""
    sa, sb = IntervalSet.from_pairs(a), IntervalSet.from_pairs(b)
    assert sa.union(sb) == IntervalSet(sa.intervals + sb.intervals)
    reference = [
        overlap
        for left in sa.intervals
        for right in sb.intervals
        if (overlap := left.intersect(right)) is not None
    ]
    assert sa.intersection(sb) == IntervalSet(reference)


@given(a=_pairs, b=_pairs)
def test_operation_results_stay_normalized(a, b):
    """Union/intersection/complement outputs keep the sorted-disjoint invariant."""
    sa, sb = IntervalSet.from_pairs(a), IntervalSet.from_pairs(b)
    for result in (sa.union(sb), sa.intersection(sb), sa.complement(0.0, 100.0)):
        intervals = result.intervals
        for left, right in zip(intervals, intervals[1:]):
            assert left.end < right.start


def test_complement_around_point_interval_merges_gaps():
    """The gaps flanking a point interval coalesce into one interval."""
    points = IntervalSet.from_pairs([(5, 5)])
    assert points.complement(0, 10).pairs() == ((0, 10),)
